//! Smoke tests for the `ccsim` command-line front end.

use std::process::Command;

fn ccsim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ccsim"))
        .args(args)
        .output()
        .expect("run ccsim binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn config_prints_derived_latencies() {
    let (ok, stdout, _) = ccsim(&["config"]);
    assert!(ok);
    assert!(stdout.contains("local 100 / home 220 / remote 420"));
}

#[test]
fn run_quick_mp3d_ls() {
    let (ok, stdout, _) = ccsim(&["run", "--workload", "mp3d", "--protocol", "ls"]);
    assert!(ok);
    assert!(stdout.contains("protocol        LS"));
    assert!(stdout.contains("silent stores"));
}

#[test]
fn run_json_output_parses() {
    let (ok, stdout, _) = ccsim(&[
        "run",
        "--workload",
        "mp3d",
        "--protocol",
        "baseline",
        "--json",
    ]);
    assert!(ok);
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.contains("\"protocol\": \"Baseline\""));
}

#[test]
fn compare_renders_triptych() {
    let (ok, stdout, _) = ccsim(&["compare", "--workload", "mp3d"]);
    assert!(ok);
    assert!(stdout.contains("Normalized execution time"));
    assert!(stdout.contains("Baseline"));
    assert!(stdout.contains("LS"));
}

#[test]
fn custom_geometry_flags() {
    let (ok, stdout, _) = ccsim(&[
        "run",
        "--workload",
        "mp3d",
        "--protocol",
        "ad",
        "--block",
        "32",
        "--l2-kb",
        "128",
        "--quantum",
        "16",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("protocol        AD"));
}

#[test]
fn relaxed_consistency_zeroes_write_stall() {
    let (ok, stdout, _) = ccsim(&[
        "run",
        "--workload",
        "mp3d",
        "--protocol",
        "baseline",
        "--relaxed",
    ]);
    assert!(ok);
    let ws: u64 = stdout
        .lines()
        .find(|l| l.starts_with("write stall"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("write stall line");
    assert_eq!(ws, 0, "relaxed model hides all write stall");
}

#[test]
fn model_subcommand_explores_all_protocols_cleanly() {
    let (ok, stdout, _) = ccsim(&["model", "--protocol", "all"]);
    assert!(ok, "stdout: {stdout}");
    for label in ["Baseline", "AD", "LS"] {
        assert!(stdout.contains(label));
    }
    assert!(stdout.contains("clean"));
    assert!(!stdout.contains("VIOLATION"));
}

#[test]
fn model_json_emits_summaries() {
    let (ok, stdout, _) = ccsim(&["model", "--protocol", "ls", "--json"]);
    assert!(ok);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.contains("\"state_fingerprint\""));
    assert!(stdout.contains("\"violation\": \"\""));
}

#[test]
fn model_expect_violation_fails_on_a_clean_protocol() {
    let (ok, _, _) = ccsim(&["model", "--protocol", "baseline", "--expect-violation"]);
    assert!(!ok, "a clean exploration must fail --expect-violation");
}

// No negative test for `--mutation` without the `testing` feature: in a
// workspace-wide test run, cargo's feature unification enables the model
// crate's testing hooks through its own dev-dependency, so the binary
// under test accepts mutations regardless of this package's features.
#[cfg(feature = "testing")]
#[test]
fn model_mutation_is_caught_with_a_replayed_counterexample() {
    let (ok, stdout, _) = ccsim(&[
        "model",
        "--protocol",
        "ls",
        "--mutation",
        "skip-ls-detag",
        "--expect-violation",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("counterexample"));
    assert!(stdout.contains("engine replay"));
}

#[test]
fn verify_subcommand_proves_all_protocols_parametrically() {
    let (ok, stdout, _) = ccsim(&["verify", "--protocol", "all"]);
    assert!(ok, "stdout: {stdout}");
    for label in ["Baseline", "AD", "LS"] {
        assert!(stdout.contains(label));
    }
    assert_eq!(stdout.matches("proved for every node count").count(), 3);
    assert!(!stdout.contains("VIOLATION"));
}

#[test]
fn verify_json_emits_summaries() {
    let (ok, stdout, _) = ccsim(&["verify", "--protocol", "ls", "--json"]);
    assert!(ok);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.contains("\"abstract_states\""));
    assert!(stdout.contains("\"parametric\": true"));
    assert!(stdout.contains("\"violation\": \"\""));
}

#[test]
fn verify_expect_violation_fails_on_a_clean_protocol() {
    let (ok, _, _) = ccsim(&["verify", "--protocol", "ad", "--expect-violation"]);
    assert!(!ok, "a parametric proof must fail --expect-violation");
}

#[test]
fn verify_rejects_unknown_formats() {
    let (ok, _, stderr) = ccsim(&["verify", "--format", "sarif"]);
    assert!(!ok);
    assert!(stderr.contains("unknown verify format"));
}

// See the note above `model_mutation_is_caught_with_a_replayed_counterexample`
// for why this needs the feature gate.
#[cfg(feature = "testing")]
#[test]
fn verify_convicts_a_mutation_with_github_annotations() {
    let (ok, stdout, _) = ccsim(&[
        "verify",
        "--protocol",
        "baseline",
        "--mutation",
        "drop-invalidations",
        "--expect-violation",
        "--format",
        "github",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("abstract counterexample"));
    assert!(stdout.contains("concretized at n="));
    assert!(stdout.contains("engine replay"));
    // The annotation points at the enforcement site of the violated rule.
    assert!(
        stdout.contains("::error file=crates/core/src/rules.rs,line="),
        "stdout: {stdout}"
    );
}

#[cfg(feature = "testing")]
#[test]
fn model_emits_github_annotations_for_counterexamples() {
    let (ok, stdout, _) = ccsim(&[
        "model",
        "--protocol",
        "ls",
        "--mutation",
        "skip-ls-detag",
        "--expect-violation",
        "--format",
        "github",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(
        stdout.contains("::error file=crates/core/src/rules.rs,line="),
        "stdout: {stdout}"
    );
}

#[test]
fn model_rejects_unknown_mutations_and_dsi() {
    let (ok, _, stderr) = ccsim(&["model", "--mutation", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown mutation"));
    let (ok, _, stderr) = ccsim(&["model", "--protocol", "dsi"]);
    assert!(!ok);
    assert!(stderr.contains("unknown protocol"));
}

#[test]
fn lint_deny_passes_on_this_workspace() {
    // The repo must stay clean under its own linter — the same gate CI runs.
    let (ok, stdout, _) = ccsim(&["lint", "--deny", "--root", env!("CARGO_MANIFEST_DIR")]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("0 diagnostic(s)"));
}

#[test]
fn lint_json_emits_an_array() {
    let (ok, stdout, _) = ccsim(&["lint", "--json", "--root", env!("CARGO_MANIFEST_DIR")]);
    assert!(ok);
    assert!(stdout.trim_start().starts_with('['));
}

#[test]
fn lint_explain_describes_each_rule() {
    for rule in [
        "randomstate",
        "wall-clock",
        "unwrap",
        "testing-gate",
        "lock-order",
        "guard-across-fanout",
        "lock-order-global",
        "determinism-taint",
        "panic-path",
        "unbounded-retry",
        "bad-allow",
    ] {
        let (ok, stdout, _) = ccsim(&["lint", "--explain", rule]);
        assert!(ok, "rule {rule}");
        assert!(stdout.contains(&format!("[{rule}]")), "rule {rule}");
    }
    let (ok, _, stderr) = ccsim(&["lint", "--explain", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown rule"));
}

#[test]
fn lint_github_format_emits_no_annotations_on_a_clean_tree() {
    let (ok, stdout, _) = ccsim(&[
        "lint",
        "--format",
        "github",
        "--root",
        env!("CARGO_MANIFEST_DIR"),
    ]);
    assert!(ok, "stdout: {stdout}");
    // A clean tree produces zero `::error` workflow commands.
    assert!(!stdout.contains("::error"), "stdout: {stdout}");
}

#[test]
fn lint_sarif_format_emits_a_valid_log() {
    let (ok, stdout, _) = ccsim(&[
        "lint",
        "--format",
        "sarif",
        "--root",
        env!("CARGO_MANIFEST_DIR"),
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(
        stdout.contains("\"version\": \"2.1.0\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("ccsim-lint"), "stdout: {stdout}");
    // The driver advertises every rule even when the tree is clean.
    assert!(stdout.contains("lock-order-global"), "stdout: {stdout}");
}

#[test]
fn lint_rejects_an_unknown_format() {
    let (ok, _, stderr) = ccsim(&["lint", "--format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown lint format"));
}

#[test]
fn race_quick_run_is_conformant() {
    let (ok, stdout, _) = ccsim(&["race", "--workload", "mp3d", "--protocol", "ls"]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("conformance: clean"), "stdout: {stdout}");
    assert!(
        stdout.contains("SC witness fingerprint"),
        "stdout: {stdout}"
    );
}

#[test]
fn race_json_emits_a_summary() {
    let (ok, stdout, _) = ccsim(&[
        "race",
        "--workload",
        "mp3d",
        "--protocol",
        "baseline",
        "--json",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.contains("\"sc_witness\": true"), "stdout: {stdout}");
    assert!(
        stdout.contains("\"first_violation\": \"\""),
        "stdout: {stdout}"
    );
}

#[test]
fn race_expect_violation_fails_on_a_clean_run() {
    let (ok, _, _) = ccsim(&[
        "race",
        "--workload",
        "mp3d",
        "--protocol",
        "ls",
        "--expect-violation",
    ]);
    assert!(!ok, "a conformant run must fail --expect-violation");
}

// See the note above `model_mutation_is_caught_with_a_replayed_counterexample`
// for why there is no negative `--mutation without testing` test here.
#[cfg(feature = "testing")]
#[test]
fn race_mutation_is_convicted_with_a_witness() {
    let (ok, stdout, _) = ccsim(&[
        "race",
        "--workload",
        "cholesky",
        "--protocol",
        "ls",
        "--mutation",
        "drop-invalidations",
        "--expect-violation",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("violation"), "stdout: {stdout}");
    assert!(stdout.contains("witness"), "stdout: {stdout}");
}

#[test]
fn race_rejects_unknown_mutations() {
    let (ok, _, stderr) = ccsim(&["race", "--mutation", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown mutation"));
}

#[test]
fn chaos_quick_sweep_is_clean() {
    let (ok, stdout, _) = ccsim(&[
        "chaos",
        "--workload",
        "lu",
        "--protocol",
        "baseline",
        "--rates",
        "60",
        "--seeds",
        "1",
        "--no-sc",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("clean"), "stdout: {stdout}");
    assert!(
        stdout.contains("1 cell(s), 0 failure(s)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("retransmit"), "stdout: {stdout}");
}

#[test]
fn chaos_json_emits_a_summary() {
    let (ok, stdout, _) = ccsim(&[
        "chaos",
        "--workload",
        "lu",
        "--protocol",
        "ls",
        "--rates",
        "60",
        "--seeds",
        "1",
        "--json",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("\"cells\": 1"), "stdout: {stdout}");
    assert!(stdout.contains("\"failures\": 0"), "stdout: {stdout}");
    assert!(stdout.contains("\"sc_checked\": 1"), "stdout: {stdout}");
    assert!(
        stdout.contains("\"witness_accesses\": 0"),
        "stdout: {stdout}"
    );
}

#[test]
fn chaos_expect_violation_fails_on_a_clean_sweep() {
    let (ok, _, _) = ccsim(&[
        "chaos",
        "--workload",
        "lu",
        "--protocol",
        "baseline",
        "--rates",
        "30",
        "--seeds",
        "1",
        "--no-sc",
        "--expect-violation",
    ]);
    assert!(!ok, "a clean sweep must fail --expect-violation");
}

#[test]
fn chaos_rejects_unknown_transport_mutations() {
    let (ok, _, stderr) = ccsim(&["chaos", "--mutation", "nosuch"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown transport mutation"),
        "stderr: {stderr}"
    );
}

#[cfg(not(feature = "testing"))]
#[test]
fn chaos_transport_mutations_require_the_testing_feature() {
    let (ok, _, stderr) = ccsim(&["chaos", "--mutation", "skip-dedup", "--seeds", "1"]);
    assert!(!ok);
    assert!(
        stderr.contains("requires the `testing` cargo feature"),
        "stderr: {stderr}"
    );
}

#[cfg(feature = "testing")]
#[test]
fn chaos_skip_dedup_is_convicted_with_a_minimal_witness() {
    let (ok, stdout, _) = ccsim(&[
        "chaos",
        "--workload",
        "mp3d",
        "--protocol",
        "baseline",
        "--mutation",
        "skip-dedup",
        "--rates",
        "600",
        "--seeds",
        "1",
        "--no-sc",
        "--expect-violation",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("FAIL"), "stdout: {stdout}");
    assert!(stdout.contains("minimal witness"), "stdout: {stdout}");
    assert!(stdout.contains("fault plan"), "stdout: {stdout}");
    // The witness line reads "..., N access(es)"; the shrinker must get the
    // conviction below the readability bound.
    let n: usize = stdout
        .split_once("minimal witness")
        .and_then(|(_, rest)| rest.split_once(" access(es)"))
        .and_then(|(head, _)| head.rsplit(' ').next())
        .and_then(|w| w.parse().ok())
        .expect("witness access count in output");
    assert!(n <= 16, "witness has {n} accesses:\n{stdout}");
}

#[test]
fn analyze_reports_sharing_patterns() {
    let (ok, stdout, _) = ccsim(&["analyze", "--workload", "mp3d", "--protocol", "ls"]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("load-store"));
    assert!(stdout.contains("ls upper bound"));
}

#[test]
fn analyze_json_round_trips_through_a_saved_trace() {
    let dir = std::env::temp_dir().join(format!("ccsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("mp3d.trace");
    let trace_s = trace.to_str().expect("utf-8 temp path");
    let (ok, live, _) = ccsim(&[
        "analyze",
        "--workload",
        "mp3d",
        "--protocol",
        "ls",
        "--json",
        "--save-trace",
        trace_s,
    ]);
    assert!(ok);
    assert!(live.contains("\"ls_writes\""));
    let (ok, replayed, _) = ccsim(&["analyze", "--trace", trace_s, "--protocol", "ls", "--json"]);
    assert!(ok);
    assert_eq!(
        live, replayed,
        "saved-trace analysis must match live capture"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_a_missing_trace_file() {
    let (ok, _, stderr) = ccsim(&["analyze", "--trace", "/nonexistent/ccsim.trace"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = ccsim(&["run", "--workload", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
    let (ok, _, stderr) = ccsim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

// Small serve scenario shared by the smoke tests: converges (or
// overloads) in well under a second per protocol even in debug builds.
const SERVE_QUICK: &[&str] = &["serve", "--clients", "2000", "--max-cycles", "1200000"];

fn serve_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    SERVE_QUICK.iter().chain(extra).copied().collect()
}

#[test]
fn serve_single_protocol_converges_with_percentiles() {
    let (ok, stdout, _) = ccsim(&serve_args(&["--protocol", "ls"]));
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("stop=converged"), "stdout: {stdout}");
    for class in ["point_read", "rmw", "scan", "append"] {
        assert!(stdout.contains(class), "missing class {class}: {stdout}");
    }
    assert!(stdout.contains("p99="), "stdout: {stdout}");
    assert!(stdout.contains("ownacq="), "stdout: {stdout}");
}

#[test]
fn serve_json_emits_the_serve_schema() {
    let (ok, stdout, _) = ccsim(&serve_args(&["--protocol", "ls", "--json"]));
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.trim_start().starts_with('{'));
    assert!(
        stdout.contains("\"schema\": \"ccsim-serve-v1\""),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"stop\": \"converged\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"p99\""), "stdout: {stdout}");
    assert!(
        stdout.contains("\"ownership_acquisitions\""),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_json_is_byte_identical_across_reruns() {
    let (ok_a, a, _) = ccsim(&serve_args(&["--protocol", "ls", "--json"]));
    let (ok_b, b, _) = ccsim(&serve_args(&["--protocol", "ls", "--json"]));
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "same config must serve identical bytes");
}

#[test]
fn serve_expect_ward_assertions_gate_the_exit_code() {
    let (ok, _, _) = ccsim(&serve_args(&["--protocol", "ls", "--expect", "converged"]));
    assert!(ok, "a converging run must pass --expect converged");
    // A fuse too short for convergence stops by max-cycles instead.
    let (ok, _, stderr) = ccsim(&[
        "serve",
        "--clients",
        "2000",
        "--max-cycles",
        "60000",
        "--protocol",
        "ls",
        "--expect",
        "converged",
    ]);
    assert!(!ok, "max-cycles stop must fail --expect converged");
    assert!(stderr.contains("expected every run"), "stderr: {stderr}");
}

#[test]
fn serve_overload_stops_by_queue_divergence() {
    let (ok, stdout, _) = ccsim(&serve_args(&[
        "--protocol",
        "baseline",
        "--rate",
        "60000",
        "--expect",
        "queue-divergence",
    ]));
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("stop=queue-divergence"), "stdout: {stdout}");
}

#[test]
fn serve_rejects_invalid_configs_at_decode_time() {
    let (ok, _, stderr) = ccsim(&["serve", "--mix", "500:300:150:100"]);
    assert!(!ok);
    assert!(
        stderr.contains("serve: mix_per_mille must sum to 1000"),
        "stderr: {stderr}"
    );
    let (ok, _, stderr) = ccsim(&["serve", "--skew", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("serve: skew_per_mille must be > 0"),
        "stderr: {stderr}"
    );
    let (ok, _, stderr) = ccsim(&["serve", "--rate", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("serve: rate_per_mcycle must be > 0"),
        "stderr: {stderr}"
    );
}

#[test]
fn serve_rejects_malformed_flags() {
    let (ok, _, stderr) = ccsim(&["serve", "--burst", "5:5"]);
    assert!(!ok);
    assert!(stderr.contains("bad --burst"), "stderr: {stderr}");
    let (ok, _, stderr) = ccsim(&["serve", "--mix", "a:b:c:d"]);
    assert!(!ok);
    assert!(stderr.contains("bad --mix"), "stderr: {stderr}");
    let (ok, _, stderr) = ccsim(&["serve", "--expect", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown ward"), "stderr: {stderr}");
}

#[test]
fn mesh_flag_accepted() {
    let (ok, stdout, _) = ccsim(&[
        "run",
        "--workload",
        "mp3d",
        "--protocol",
        "ls",
        "--mesh",
        "2",
    ]);
    assert!(ok, "stdout: {stdout}");
}
