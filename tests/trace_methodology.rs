//! Trace-driven vs program-driven methodology comparison.
//!
//! The classic caveat of trace-driven simulation is that the interleaving
//! is frozen at capture time. These tests quantify the agreement between
//! the two modes on a real workload: identical when configurations match,
//! and directionally consistent (same protocol ordering) when they differ.

use ccsim::engine::{replay, SimBuilder};
use ccsim::workloads::mp3d::{build, Mp3dParams};
use ccsim::{MachineConfig, ProtocolKind};

fn capture_mp3d() -> (ccsim::engine::RunStats, ccsim::engine::Trace) {
    let mut b = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
    b.capture_trace();
    let mut params = Mp3dParams::quick();
    params.particles = 200;
    params.steps = 2;
    build(&mut b, &params);
    let mut done = b.run_full();
    let trace = done.take_trace().unwrap();
    (done.stats, trace)
}

#[test]
fn replay_reproduces_the_captured_workload_exactly() {
    let (orig, trace) = capture_mp3d();
    let replayed = replay(
        MachineConfig::splash_baseline(ProtocolKind::Baseline),
        &trace,
        &[],
    );
    assert_eq!(replayed.exec_cycles, orig.exec_cycles);
    assert_eq!(replayed.traffic.total_bytes(), orig.traffic.total_bytes());
    assert_eq!(replayed.dir.global_reads, orig.dir.global_reads);
    assert_eq!(
        replayed.dir.ownership_acquisitions(),
        orig.dir.ownership_acquisitions()
    );
}

#[test]
fn trace_driven_protocol_ordering_matches_program_driven() {
    // Program-driven runs (interleaving adapts to each protocol).
    let program: Vec<u64> = ProtocolKind::ALL
        .iter()
        .map(|&k| {
            let mut b = SimBuilder::new(MachineConfig::splash_baseline(k));
            let mut params = Mp3dParams::quick();
            params.particles = 200;
            params.steps = 2;
            build(&mut b, &params);
            b.run().write_stall()
        })
        .collect();
    // Trace-driven runs (Baseline interleaving, swapped protocols).
    let (_, trace) = capture_mp3d();
    let traced: Vec<u64> = ProtocolKind::ALL
        .iter()
        .map(|&k| replay(MachineConfig::splash_baseline(k), &trace, &[]).write_stall())
        .collect();
    // Both methodologies must agree on the ordering Baseline > AD >= LS.
    for runs in [&program, &traced] {
        assert!(runs[1] < runs[0], "AD beats Baseline: {runs:?}");
        assert!(runs[2] <= runs[1] + runs[0] / 20, "LS ~beats AD: {runs:?}");
    }
}

#[test]
fn trace_survives_serialization_at_workload_scale() {
    let (_, trace) = capture_mp3d();
    assert!(trace.len() > 1_000, "capture covered the workload");
    let bytes = trace.to_bytes();
    let back = ccsim::engine::Trace::from_bytes(&bytes).unwrap();
    assert_eq!(back, trace);
    // Replay of the deserialized trace matches replay of the original.
    let a = replay(
        MachineConfig::splash_baseline(ProtocolKind::Ls),
        &trace,
        &[],
    );
    let b = replay(MachineConfig::splash_baseline(ProtocolKind::Ls), &back, &[]);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.machine.silent_stores, b.machine.silent_stores);
}
