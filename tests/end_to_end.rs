//! Cross-crate integration tests through the `ccsim` facade: every paper
//! claim that must hold at any scale, exercised end-to-end (workload →
//! engine → protocol → stats).
//!
//! Multi-run comparisons go through the harness [`JobSet`], so independent
//! protocol runs fan out across the worker pool and land in the shared run
//! cache (`target/ccsim-cache/`) — a warm second `cargo test` replays them
//! from disk. Tests whose *point* is fresh simulation (determinism) bypass
//! the cache explicitly.
//!
//! Paper-scale variants of the headline claims are `#[ignore]`d; run them
//! with `cargo test -- --ignored` (minutes of simulation).

use ccsim::engine::RunStats;
use ccsim::harness::JobSet;
use ccsim::workloads::{cholesky, lu, mp3d, oltp, run_spec, Spec};
use ccsim::{MachineConfig, ProtocolKind};

/// One workload under Baseline/AD/LS via the harness (pooled + cached).
fn all_protocols(cfg_for: impl Fn(ProtocolKind) -> MachineConfig, spec: &Spec) -> Vec<RunStats> {
    let mut set = JobSet::new();
    for &k in &ProtocolKind::ALL {
        set.push(cfg_for(k), spec.clone());
    }
    set.run()
}

/// The §7 headline claim, checked on a list of named protocol triples.
fn assert_ls_beats_ad(cases: &[(&str, Vec<RunStats>)]) {
    for (name, runs) in cases {
        let (base, ad, ls) = (&runs[0], &runs[1], &runs[2]);
        assert!(
            ls.write_stall() <= ad.write_stall(),
            "{name}: LS write stall {} > AD {}",
            ls.write_stall(),
            ad.write_stall()
        );
        assert!(
            ls.write_stall() < base.write_stall(),
            "{name}: LS write stall {} did not beat baseline {}",
            ls.write_stall(),
            base.write_stall()
        );
        // At the scaled-down test sizes LS's NotLS handshakes can cost a
        // few percent of traffic relative to AD on LU (at paper scale LS
        // wins outright — see EXPERIMENTS.md); allow a 5 % margin here.
        assert!(
            ls.traffic.total_bytes() as f64 <= 1.05 * ad.traffic.total_bytes() as f64,
            "{name}: LS traffic {} >> AD {}",
            ls.traffic.total_bytes(),
            ad.traffic.total_bytes()
        );
        assert!(
            ls.traffic.total_bytes() < base.traffic.total_bytes(),
            "{name}: traffic"
        );
    }
}

/// §7: "LS is better than AD in reducing write stall time as well as
/// network traffic for all applications."
#[test]
fn ls_never_worse_than_ad_in_write_stall_and_traffic() {
    let cases: Vec<(&str, Vec<RunStats>)> = vec![
        (
            "MP3D",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Mp3d(mp3d::Mp3dParams::quick()),
            ),
        ),
        (
            "LU",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Lu(lu::LuParams::quick()),
            ),
        ),
        (
            "Cholesky",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Cholesky(cholesky::CholeskyParams::quick()),
            ),
        ),
        (
            "OLTP",
            all_protocols(
                MachineConfig::oltp_scaled,
                &Spec::Oltp(oltp::OltpParams::quick()),
            ),
        ),
    ];
    assert_ls_beats_ad(&cases);
}

/// The same §7 claim at the paper's problem sizes (minutes of simulation on
/// a cold cache): `cargo test -- --ignored`.
#[test]
#[ignore = "paper-scale run: minutes on a cold cache"]
fn ls_never_worse_than_ad_at_paper_scale() {
    let cases: Vec<(&str, Vec<RunStats>)> = vec![
        (
            "MP3D",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Mp3d(mp3d::Mp3dParams::paper()),
            ),
        ),
        (
            "LU",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Lu(lu::LuParams::paper()),
            ),
        ),
        (
            "Cholesky",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Cholesky(cholesky::CholeskyParams::paper()),
            ),
        ),
        (
            "OLTP",
            all_protocols(
                MachineConfig::oltp_scaled,
                &Spec::Oltp(oltp::OltpParams::paper()),
            ),
        ),
    ];
    assert_ls_beats_ad(&cases);
}

/// Baseline never produces exclusive grants or silent stores; AD and LS
/// both do on every workload with write sharing.
#[test]
fn optimization_fires_only_under_ad_and_ls() {
    let runs = all_protocols(
        MachineConfig::splash_baseline,
        &Spec::Mp3d(mp3d::Mp3dParams::quick()),
    );
    assert_eq!(runs[0].machine.silent_stores, 0);
    assert_eq!(runs[0].dir.exclusive_grants, 0);
    assert!(runs[1].machine.silent_stores > 0, "AD");
    assert!(runs[2].machine.silent_stores > 0, "LS");
}

/// §2: LS detects a superset of what AD detects — the oracle's coverage of
/// load-store sequences is higher for LS on every workload.
#[test]
fn ls_coverage_superset_of_ad() {
    for (name, runs) in [
        (
            "Cholesky",
            all_protocols(
                MachineConfig::splash_baseline,
                &Spec::Cholesky(cholesky::CholeskyParams::quick()),
            ),
        ),
        (
            "OLTP",
            all_protocols(
                MachineConfig::oltp_scaled,
                &Spec::Oltp(oltp::OltpParams::quick()),
            ),
        ),
    ] {
        let (ad, ls) = (&runs[1], &runs[2]);
        assert!(
            ls.oracle.ls_coverage() >= ad.oracle.ls_coverage(),
            "{name}: LS coverage {:.3} < AD {:.3}",
            ls.oracle.ls_coverage(),
            ad.oracle.ls_coverage()
        );
    }
}

/// The load-store occurrence measured by the oracle is a property of the
/// workload, not the protocol: within a tolerance, all three protocols see
/// the same fraction (the protocols change *which* writes are global, so
/// exact equality is not expected).
#[test]
fn ls_occurrence_roughly_protocol_independent() {
    let runs = all_protocols(
        MachineConfig::splash_baseline,
        &Spec::Mp3d(mp3d::Mp3dParams::quick()),
    );
    let fracs: Vec<f64> = runs.iter().map(|r| r.oracle.ls_fraction(None)).collect();
    for w in fracs.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 0.15,
            "load-store fraction unstable across protocols: {fracs:?}"
        );
    }
}

/// §5.2: "At larger cache sizes, with fewer replacements, the ability of LS
/// to reduce more ownership overhead than AD decreases." Cholesky with a
/// per-processor panel of 64 kB: against a small L2 the LS-AD gap is wide;
/// against an L2 that holds the whole panel it (nearly) closes.
#[test]
fn ls_ad_gap_closes_with_larger_caches() {
    let params = cholesky::CholeskyParams {
        cols: 16,
        col_words: 1024,
        waves: 3,
        procs: 4,
        seed: 0x43484F4C,
    };
    let gap_at = |l2_kb: u64| -> f64 {
        let runs = all_protocols(
            |k| {
                let mut cfg = MachineConfig::splash_baseline(k);
                cfg.l2.size_bytes = l2_kb * 1024;
                cfg
            },
            &Spec::Cholesky(params.clone()),
        );
        let base = runs[0].write_stall() as f64;
        (runs[1].write_stall() as f64 - runs[2].write_stall() as f64) / base
    };
    let small = gap_at(16); // panel >> L2: many replacements
    let large = gap_at(512); // panel fits: few replacements
    assert!(
        small > large + 0.1,
        "LS-AD write-stall gap should shrink with cache size: small-L2 {small:.3} vs large-L2 {large:.3}"
    );
}

/// Every workload runs deterministically end-to-end (same seed → identical
/// cycle counts, traffic, and oracle numbers). Deliberately NOT cached:
/// both runs must simulate from scratch for the comparison to mean
/// anything.
#[test]
fn workloads_are_deterministic_end_to_end() {
    let spec = Spec::Cholesky(cholesky::CholeskyParams::quick());
    let a = run_spec(MachineConfig::splash_baseline(ProtocolKind::Ls), &spec);
    let b = run_spec(MachineConfig::splash_baseline(ProtocolKind::Ls), &spec);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
    assert_eq!(a.dir.global_reads, b.dir.global_reads);
    assert_eq!(
        a.oracle.total().global_writes,
        b.oracle.total().global_writes
    );
}

/// The execution-time accounting is complete: busy + stalls ≥ the critical
/// path (exec_cycles), and each processor's clock equals its own total.
#[test]
fn time_accounting_adds_up() {
    let spec = Spec::Mp3d(mp3d::Mp3dParams::quick());
    let r = run_spec(
        MachineConfig::splash_baseline(ProtocolKind::Baseline),
        &spec,
    );
    for (i, t) in r.per_proc.iter().enumerate() {
        assert!(t.total() > 0, "processor {i} did nothing");
    }
    assert!(
        r.total_cycles() >= r.exec_cycles,
        "sum over procs >= critical path"
    );
    assert!(
        r.exec_cycles * (r.per_proc.len() as u64) >= r.total_cycles(),
        "no processor's clock can exceed the max"
    );
}
