//! Table 1 latency-path tests through the public facade: the three derived
//! rows (local 100 / home 220 / remote 420 cycles) must be observable
//! end-to-end, not just in the config arithmetic.

use ccsim::engine::SimBuilder;
use ccsim::types::Addr;
use ccsim::{MachineConfig, ProtocolKind};

/// Measure one access's latency by bracketing it between `now()` calls.
fn measured_latency(f: impl FnOnce(&ccsim::engine::Proc) + Send + 'static) -> u64 {
    let mut sim = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
    // Pre-pick addresses before moving the closure in.
    sim.spawn(move |p| f(&p));
    let s = sim.run();
    s.exec_cycles
}

#[test]
fn local_miss_is_100_cycles() {
    // Page 0 is homed at node 0; processor 0 reading it is the local path.
    let t = measured_latency(|p| {
        assert_eq!(p.now(), 0);
        p.load(Addr(0x100));
        assert_eq!(p.now(), 100, "Table 1: local access");
    });
    assert_eq!(t, 100);
}

#[test]
fn home_miss_is_220_cycles() {
    // Page 1 is homed at node 1; processor 0 reading it takes two hops.
    let t = measured_latency(|p| {
        p.load(Addr(4096 + 0x100));
        assert_eq!(p.now(), 220, "Table 1: home access");
    });
    assert_eq!(t, 220);
}

#[test]
fn remote_dirty_miss_is_420_cycles() {
    // P1 dirties a block homed at node 0, then P2 reads it: 4 hops.
    let mut sim = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
    let flag = sim.alloc().alloc_on_node(8, 8, ccsim::types::NodeId(3));
    let victim = Addr(0x200); // homed at node 0
    sim.spawn(move |p| {
        // P0 idles long enough to stay out of the way.
        p.busy(1_000_000);
    });
    sim.spawn(move |p| {
        let v = p.load(victim);
        p.store(victim, v + 7); // dirty at P1
        p.store(flag, 1);
        p.busy(1_000_000);
    });
    sim.spawn(move |p| {
        while p.load(flag) == 0 {
            p.busy(50);
        }
        let before = p.now();
        p.load(victim);
        assert_eq!(
            p.now() - before,
            420,
            "Table 1: remote access (read-on-dirty)"
        );
    });
    sim.run();
}

#[test]
fn l1_and_l2_hits_cost_1_and_11_cycles() {
    measured_latency(|p| {
        p.load(Addr(0x100)); // miss: 100
        let t0 = p.now();
        p.load(Addr(0x100)); // L1 hit
        assert_eq!(p.now() - t0, 1);
        // Evict from L1 only: touch enough conflicting lines to displace it
        // from the 4 kB direct-mapped L1 but not the 64 kB L2.
        p.load(Addr(0x100 + 4096)); // same L1 set, different L2 set
        let t1 = p.now();
        p.load(Addr(0x100)); // L2 hit now
        assert_eq!(p.now() - t1, 11, "L1 lookup + L2 access");
    });
}

#[test]
fn upgrade_is_cheaper_than_a_write_miss() {
    let mut sim = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
    sim.spawn(|p| {
        // Write miss to an uncached local block.
        let a = Addr(0x300);
        let t0 = p.now();
        p.store(a, 1);
        let write_miss = p.now() - t0;
        // Read-then-upgrade on another block.
        let b = Addr(0x400);
        p.load(b);
        let t1 = p.now();
        p.store(b, 1);
        let upgrade = p.now() - t1;
        assert!(
            upgrade < write_miss,
            "upgrade ({upgrade}) should be cheaper than a write miss ({write_miss})"
        );
    });
    sim.run();
}
