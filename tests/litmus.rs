//! Sequential-consistency litmus tests.
//!
//! §4.2: "The system implements a sequential consistency memory model and
//! the processors stall on every second level cache miss." These classical
//! litmus shapes verify that the engine's memory model actually *is* SC —
//! the forbidden outcomes must never appear, under any protocol (the LS/AD
//! optimizations must not change memory semantics).
//!
//! Each test runs the shape many times with different relative timings
//! (busy-skews) to explore interleavings; the simulator is deterministic,
//! so skews stand in for rerunning with different schedules.

use ccsim::engine::{InvariantMode, SimBuilder};
use ccsim::types::Addr;
use ccsim::{MachineConfig, ProtocolKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn machine(kind: ProtocolKind) -> SimBuilder {
    SimBuilder::new(MachineConfig::splash_baseline(kind))
}

/// Message passing: P0: x=1; flag=1.  P1: while flag==0; read x.
/// SC forbids P1 reading x==0 after seeing flag==1.
#[test]
fn litmus_message_passing() {
    for kind in ProtocolKind::ALL {
        for skew in [0u64, 13, 57, 133, 411, 977] {
            let mut sim = machine(kind);
            let x = sim.alloc().alloc_padded(8, 64);
            let flag = sim.alloc().alloc_padded(8, 64);
            sim.spawn(move |p| {
                p.busy(skew);
                p.store(x, 1);
                p.store(flag, 1);
            });
            sim.spawn(move |p| {
                while p.load(flag) == 0 {
                    p.busy(7);
                }
                assert_eq!(p.load(x), 1, "{kind:?} skew {skew}: MP violation");
            });
            sim.run();
        }
    }
}

/// Store buffering: P0: x=1; r0=y.  P1: y=1; r1=x.
/// SC forbids r0==0 && r1==0 (both reads passing both writes).
#[test]
fn litmus_store_buffering() {
    for kind in ProtocolKind::ALL {
        for skew in [0u64, 3, 17, 50, 91, 240, 415] {
            let results = Arc::new([AtomicU64::new(9), AtomicU64::new(9)]);
            let mut sim = machine(kind);
            let x = sim.alloc().alloc_padded(8, 64);
            let y = sim.alloc().alloc_padded(8, 64);
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                p.store(x, 1);
                r[0].store(p.load(y), Ordering::Relaxed);
            });
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                p.busy(skew);
                p.store(y, 1);
                r[1].store(p.load(x), Ordering::Relaxed);
            });
            sim.run();
            let (r0, r1) = (
                results[0].load(Ordering::Relaxed),
                results[1].load(Ordering::Relaxed),
            );
            assert!(
                !(r0 == 0 && r1 == 0),
                "{kind:?} skew {skew}: SB outcome (0,0) forbidden under SC"
            );
        }
    }
}

/// IRIW: P0: x=1. P1: y=1. P2: r0=x; r1=y. P3: r2=y; r3=x.
/// SC forbids P2 and P3 observing the two writes in opposite orders:
/// r0==1 && r1==0 && r2==1 && r3==0.
#[test]
fn litmus_iriw() {
    for kind in ProtocolKind::ALL {
        for skew in [0u64, 29, 83, 171, 360] {
            let results: Arc<Vec<AtomicU64>> =
                Arc::new((0..4).map(|_| AtomicU64::new(9)).collect());
            let mut sim = machine(kind);
            let x = sim.alloc().alloc_padded(8, 64);
            let y = sim.alloc().alloc_padded(8, 64);
            sim.spawn(move |p| {
                p.busy(skew);
                p.store(x, 1);
            });
            sim.spawn(move |p| {
                p.busy(skew / 2 + 5);
                p.store(y, 1);
            });
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                r[0].store(p.load(x), Ordering::Relaxed);
                r[1].store(p.load(y), Ordering::Relaxed);
            });
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                r[2].store(p.load(y), Ordering::Relaxed);
                r[3].store(p.load(x), Ordering::Relaxed);
            });
            sim.run();
            let v: Vec<u64> = results.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            assert!(
                !(v[0] == 1 && v[1] == 0 && v[2] == 1 && v[3] == 0),
                "{kind:?} skew {skew}: IRIW outcome {v:?} forbidden under SC"
            );
        }
    }
}

/// Coherence (per-location SC): two writers to one location; all observers
/// must agree on the final value, and a reader can never see values going
/// backwards through its own program order.
#[test]
fn litmus_coherence_single_location() {
    for kind in ProtocolKind::ALL {
        let mut sim = machine(kind);
        let x = sim.alloc().alloc_padded(8, 64);
        for i in 1..=2u64 {
            sim.spawn(move |p| {
                for k in 0..50 {
                    p.store(x, i * 1000 + k);
                    p.busy(11 * i);
                }
            });
        }
        sim.spawn(move |p| {
            let mut last_by_writer = [0u64, 0];
            for _ in 0..100 {
                let v = p.load(x);
                if v != 0 {
                    let w = (v / 1000 - 1) as usize;
                    let k = v % 1000;
                    assert!(
                        k >= last_by_writer[w],
                        "{kind:?}: writer {w}'s values went backwards: {k} after {}",
                        last_by_writer[w]
                    );
                    last_by_writer[w] = k;
                }
                p.busy(9);
            }
        });
        sim.run();
    }
}

/// Atomicity: concurrent fetch-adds never lose increments, under every
/// protocol and every block-sharing layout (same block vs padded).
#[test]
fn litmus_rmw_atomicity() {
    for kind in ProtocolKind::ALL {
        for padded in [false, true] {
            let mut sim = machine(kind);
            let a = if padded {
                sim.alloc().alloc_padded(8, 64)
            } else {
                sim.alloc().alloc_words(1)
            };
            let b = if padded {
                sim.alloc().alloc_padded(8, 64)
            } else {
                sim.alloc().alloc_words(1) // same block as `a` when unpadded
            };
            for _ in 0..4 {
                sim.spawn(move |p| {
                    for i in 0..100 {
                        p.fetch_add(a, 1);
                        if i % 3 == 0 {
                            p.fetch_add(b, 2);
                        }
                        p.busy(5);
                    }
                });
            }
            let done = sim.run_full();
            assert_eq!(done.peek(a), 400, "{kind:?} padded={padded}");
            assert_eq!(done.peek(b), 2 * 4 * 34, "{kind:?} padded={padded}");
        }
    }
}

/// Model-derived (§3.1 case 3): a load-store pair tags the block, the tag
/// survives replacement of the cached copy in the directory, and the next
/// read is granted an exclusive copy so the following store acquires
/// ownership silently. The chain — Load, Store, Evict, Load, Store — is
/// the shortest path through this scenario in the `ccsim-model` state
/// space; here it runs on the concrete engine with strict invariants, so
/// any coherence misstep panics. The silent-store claim itself only holds
/// under LS; Baseline and AD must simply execute the chain cleanly.
#[test]
fn litmus_ls_tag_survives_replacement_chain() {
    for kind in ProtocolKind::ALL {
        let cfg = MachineConfig::splash_baseline(kind);
        let stride = cfg.l2.size_bytes; // same L1 and L2 set: guaranteed conflict
        let mut sim = SimBuilder::new(cfg);
        sim.invariants(InvariantMode::Strict);
        let a = sim.alloc().alloc_padded(8, 64);
        let conflict = Addr(a.0 + stride);
        // A second sharer first, so the initial fill is Shared and the tag
        // (not a trivial exclusive-on-uncached grant) is what earns the
        // exclusive copy after the eviction.
        sim.spawn(move |p| {
            p.load(a);
        });
        sim.spawn(move |p| {
            p.busy(500); // let P0's read settle
            let v = p.load(a); // LR := P1
            p.store(a, v + 1); // paired load-store: tag set under LS
            p.load(conflict); // evicts the dirty copy; tag survives (§3.1)
            let v = p.load(a); // tagged read: exclusive grant under LS
            p.store(a, v + 1); // silent ownership acquisition under LS
        });
        let done = sim.run_full();
        assert!(done.invariant_report().is_clean(), "{kind:?}");
        assert_eq!(done.peek(a), 2, "{kind:?}: both stores must land");
        if kind == ProtocolKind::Ls {
            assert!(
                done.stats.machine.silent_stores >= 1,
                "LS: the post-replacement store must be silent, got {}",
                done.stats.machine.silent_stores
            );
        }
    }
}

/// Model-derived de-tag race: a foreign read lands between a processor's
/// load and store, breaking the load-store pairing (LR no longer names
/// the writer), so under LS the acquisition is unpaired and the block must
/// NOT be tagged — the next read-then-store round-trips through the
/// directory instead of completing silently. Both interleavings run under
/// strict invariants on every protocol; under LS the paired run must beat
/// the raced run on silent stores.
#[test]
fn litmus_ls_detag_race() {
    for kind in ProtocolKind::ALL {
        let mut silent = [0u64; 2];
        for (i, foreign_read) in [(0, false), (1, true)] {
            let cfg = MachineConfig::splash_baseline(kind);
            let stride = cfg.l2.size_bytes;
            let mut sim = SimBuilder::new(cfg);
            sim.invariants(InvariantMode::Strict);
            let a = sim.alloc().alloc_padded(8, 64);
            let conflict = Addr(a.0 + stride);
            sim.spawn(move |p| {
                let v = p.load(a); // LR := P0
                p.busy(2000); // window for P1's read
                p.store(a, v + 1); // paired only if no foreign read hit the window
                p.load(conflict);
                let v = p.load(a);
                p.store(a, v + 1); // silent iff the block stayed tagged
            });
            sim.spawn(move |p| {
                if foreign_read {
                    p.busy(700);
                    p.load(a); // LR := P1, breaking P0's pairing
                }
            });
            let done = sim.run_full();
            assert!(done.invariant_report().is_clean(), "{kind:?}");
            assert_eq!(done.peek(a), 2, "{kind:?} foreign_read={foreign_read}");
            silent[i] = done.stats.machine.silent_stores;
        }
        if kind == ProtocolKind::Ls {
            assert!(
                silent[0] > silent[1],
                "LS: the raced (de-tagged) run must lose its silent store: \
                 paired={} raced={}",
                silent[0],
                silent[1]
            );
        }
    }
}

/// Stress variant: the message-passing and store-buffering shapes swept
/// over a dense grid of skews, exploring far more interleavings than the
/// default suite. `cargo test -- --ignored`.
#[test]
#[ignore = "dense skew sweep: slow; run with -- --ignored"]
fn litmus_stress_dense_skew_sweep() {
    for kind in ProtocolKind::ALL {
        for skew in (0u64..1000).step_by(7) {
            // Message passing.
            let mut sim = machine(kind);
            let x = sim.alloc().alloc_padded(8, 64);
            let flag = sim.alloc().alloc_padded(8, 64);
            sim.spawn(move |p| {
                p.busy(skew);
                p.store(x, 1);
                p.store(flag, 1);
            });
            sim.spawn(move |p| {
                while p.load(flag) == 0 {
                    p.busy(7);
                }
                assert_eq!(p.load(x), 1, "{kind:?} skew {skew}: MP violation");
            });
            sim.run();

            // Store buffering.
            let results = Arc::new([AtomicU64::new(9), AtomicU64::new(9)]);
            let mut sim = machine(kind);
            let x = sim.alloc().alloc_padded(8, 64);
            let y = sim.alloc().alloc_padded(8, 64);
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                p.store(x, 1);
                r[0].store(p.load(y), Ordering::Relaxed);
            });
            let r = Arc::clone(&results);
            sim.spawn(move |p| {
                p.busy(skew);
                p.store(y, 1);
                r[1].store(p.load(x), Ordering::Relaxed);
            });
            sim.run();
            let (r0, r1) = (
                results[0].load(Ordering::Relaxed),
                results[1].load(Ordering::Relaxed),
            );
            assert!(
                !(r0 == 0 && r1 == 0),
                "{kind:?} skew {skew}: SB outcome (0,0) forbidden under SC"
            );
        }
    }
}
