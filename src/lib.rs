//! `ccsim` — facade crate re-exporting the whole simulator API.
//!
//! Reproduction of Nilsson & Dahlgren, *"Reducing Ownership Overhead for
//! Load-Store Sequences in Cache-Coherent Multiprocessors"* (IPPS 2000).
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ccsim_cache as cache;
pub use ccsim_core as core;
pub use ccsim_engine as engine;
pub use ccsim_harness as harness;
pub use ccsim_lint as lint;
pub use ccsim_mem as mem;
pub use ccsim_model as model;
pub use ccsim_network as network;
pub use ccsim_race as race;
pub use ccsim_serve as serve;
pub use ccsim_stats as stats;
pub use ccsim_sync as sync;
pub use ccsim_types as types;
pub use ccsim_util as util;
pub use ccsim_workloads as workloads;

pub use ccsim_types::{MachineConfig, ProtocolKind};
