//! `ccsim` — command-line front end to the simulator.
//!
//! ```text
//! ccsim run     --workload <mp3d|lu|cholesky|oltp> --protocol <baseline|ad|ls> [options]
//! ccsim compare --workload <mp3d|lu|cholesky|oltp> [options]   # all three protocols
//! ccsim model   [--protocol <baseline|ad|ls|all>] [model options]  # bounded model check
//! ccsim verify  [--protocol <baseline|ad|ls|all>] [verify options] # parametric (all-n) proof
//! ccsim lint    [--deny] [--json] [--root DIR] [--explain RULE]  # workspace static analysis
//! ccsim analyze --workload W [--protocol P] | --trace FILE [--json]  # sharing patterns
//! ccsim race    --workload W [--protocol P] | --trace FILE [--json]  # SC conformance
//! ccsim chaos   [--workload W] [--protocol P|all] [chaos options]  # fault-grid soak
//! ccsim serve   [--protocol P|all] [serve options]              # open-loop OLTP service
//! ccsim config                                                  # print Table 1
//!
//! options:
//!   --scale <quick|paper>   problem size            (default quick)
//!   --nodes <N>             processor count         (workload default)
//!   --block <bytes>         coherence block size    (config default)
//!   --l2-kb <K>             L2 capacity in kB       (config default)
//!   --quantum <cycles>      scheduling quantum      (default 1)
//!   --relaxed               idealized write buffer instead of SC
//!   --mesh <width>          2-D mesh instead of point-to-point
//!   --json                  emit a JSON RunSummary instead of text
//!
//! model options:
//!   --nodes <N>             model nodes, 2-4        (default 2)
//!   --blocks <B>            model blocks, 1-2       (default 1)
//!   --max-ops <K>           per-node op budget      (default 4)
//!   --mutation <NAME>       seed a rule mutation    (needs --features testing)
//!   --expect-violation      exit 0 iff a violation IS found
//!   --format github         annotate counterexamples at the violated rule site
//!   --json                  emit JSON ModelCheckSummary documents
//!
//! verify options:
//!   --mutation <NAME>       seed a rule mutation    (needs --features testing)
//!   --expect-violation      exit 0 iff a violation IS found
//!   --format github         annotate counterexamples at the violated rule site
//!   --json                  emit JSON VerifySummary documents
//!
//! lint options:
//!   --deny                  exit 1 if any diagnostic fires (CI gate)
//!   --root <DIR>            workspace root to scan  (default .)
//!   --explain <RULE>        print the long description of one rule
//!   --json                  emit diagnostics as a JSON array
//!
//! analyze options:
//!   --trace <FILE>          analyze a saved trace instead of capturing one
//!   --save-trace <FILE>     save the captured trace for later `--trace` runs
//!   --json                  emit a JSON AnalysisSummary instead of text
//!
//! race options:
//!   --trace <FILE>          replay a saved trace instead of capturing a run
//!   --mutation <NAME>       seed a rule mutation    (needs --features testing)
//!   --expect-violation      exit 0 iff a violation IS found
//!   --json                  emit a JSON RaceSummary instead of text
//!
//! chaos options:
//!   --rates <CSV>           fault intensities, per mille   (default 60)
//!   --seeds <CSV>           fault-plan seeds               (default 1,2,3)
//!   --no-sc                 skip the SC-conformance cross-check
//!   --no-shrink             report failures without ddmin shrinking
//!   --mutation <NAME>       seed a transport mutation (needs --features testing)
//!   --expect-violation      exit 0 iff a cell DOES fail
//!   --json                  emit a JSON ChaosSummary instead of text
//!
//! serve options:
//!   --clients <N>           client population              (scale default)
//!   --skew <S>              zipf exponent, e.g. 0.99       (scale default)
//!   --rate <R>              arrivals per million cycles    (scale default)
//!   --burst <ON:OFF:X>      burst on/off cycles and intensity per mille; 0:0:1000 = off
//!   --mix <a:b:c:d>         per-mille point_read:rmw:scan:append mix (sums to 1000)
//!   --seed <S>              run seed                       (scale default)
//!   --max-cycles <C>        ward fuse, simulated cycles    (scale default)
//!   --expect <WARD>         exit 0 iff every run stopped by WARD
//!                           (converged|max-cycles|queue-divergence)
//!   --json                  emit a JSON ServeSummary instead of text
//! ```

use ccsim::engine::{replay_events, InvariantMode, RunStats, Trace};
use ccsim::harness::{chaos, run_cached, JobSet};
use ccsim::lint;
use ccsim::model::{
    explore, replay_counterexample, summarize, summarize_verify, verify, ModelConfig, Refinement,
};
use ccsim::race::check as race_check;
use ccsim::serve::{serve_sweep, ServeConfig, StopReason};
use ccsim::stats::{render_triptych, RaceSummary, RunSummary, Triptych};
use ccsim::types::{Consistency, RuleMutation, Topology, TransportMutation};
use ccsim::util::{Json, ToJson};
use ccsim::workloads::{capture_events_spec, capture_spec, cholesky, lu, mp3d, oltp, Spec};
use ccsim::{MachineConfig, ProtocolKind};
use std::process::exit;

/// Install a seeded rule mutation into a machine config (`--mutation`).
/// Mutations only exist under the `testing` cargo feature; release binaries
/// refuse rather than silently running the clean protocol.
fn with_mutation(mut cfg: MachineConfig, mutation: Option<RuleMutation>) -> MachineConfig {
    let Some(m) = mutation else { return cfg };
    #[cfg(feature = "testing")]
    {
        cfg.protocol = cfg.protocol.with_rule_mutation(m);
        cfg
    }
    #[cfg(not(feature = "testing"))]
    {
        let _ = &mut cfg;
        eprintln!(
            "mutation {} requires a build with --features testing",
            m.label()
        );
        exit(2);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ccsim <run|compare|model|verify|lint|analyze|race|chaos|serve|config> \
         [--workload W] \
         [--protocol P] [--scale S] [--nodes N] [--block B] [--l2-kb K] [--quantum Q] [--relaxed] \
         [--mesh W] [--json]\n\
         model options: [--blocks B] [--max-ops K] [--mutation NAME] [--expect-violation] \
         [--format github]\n\
         verify options: [--mutation NAME] [--expect-violation] [--format github]\n\
         lint options: [--deny] [--root DIR] [--explain RULE] [--format github]\n\
         analyze options: [--trace FILE] [--save-trace FILE]\n\
         race options: [--trace FILE] [--mutation NAME] [--expect-violation]\n\
         chaos options: [--rates CSV] [--seeds CSV] [--no-sc] [--no-shrink] [--mutation NAME] \
         [--expect-violation]\n\
         serve options: [--clients N] [--skew S] [--rate R] [--burst ON:OFF:X] [--mix a:b:c:d] \
         [--seed S] [--max-cycles C] [--expect WARD]"
    );
    exit(2);
}

#[derive(Default)]
struct Opts {
    workload: Option<String>,
    protocol: Option<String>,
    scale: Option<String>,
    nodes: Option<u16>,
    block: Option<u64>,
    l2_kb: Option<u64>,
    quantum: Option<u64>,
    relaxed: bool,
    mesh: Option<u16>,
    json: bool,
    blocks: Option<u8>,
    max_ops: Option<u8>,
    mutation: Option<String>,
    expect_violation: bool,
    deny: bool,
    root: Option<String>,
    explain: Option<String>,
    format: Option<String>,
    trace: Option<String>,
    save_trace: Option<String>,
    rates: Option<String>,
    seeds: Option<String>,
    no_sc: bool,
    no_shrink: bool,
    clients: Option<u64>,
    skew: Option<String>,
    rate: Option<u64>,
    burst: Option<String>,
    mix: Option<String>,
    seed: Option<u64>,
    max_cycles: Option<u64>,
    expect: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {a}");
                usage()
            })
        };
        match a.as_str() {
            "--workload" => o.workload = Some(val().clone()),
            "--protocol" => o.protocol = Some(val().clone()),
            "--scale" => o.scale = Some(val().clone()),
            "--nodes" => o.nodes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--block" => o.block = Some(val().parse().unwrap_or_else(|_| usage())),
            "--l2-kb" => o.l2_kb = Some(val().parse().unwrap_or_else(|_| usage())),
            "--quantum" => o.quantum = Some(val().parse().unwrap_or_else(|_| usage())),
            "--relaxed" => o.relaxed = true,
            "--mesh" => o.mesh = Some(val().parse().unwrap_or_else(|_| usage())),
            "--json" => o.json = true,
            "--blocks" => o.blocks = Some(val().parse().unwrap_or_else(|_| usage())),
            "--max-ops" => o.max_ops = Some(val().parse().unwrap_or_else(|_| usage())),
            "--mutation" => o.mutation = Some(val().clone()),
            "--expect-violation" => o.expect_violation = true,
            "--deny" => o.deny = true,
            "--root" => o.root = Some(val().clone()),
            "--explain" => o.explain = Some(val().clone()),
            "--format" => o.format = Some(val().clone()),
            "--trace" => o.trace = Some(val().clone()),
            "--save-trace" => o.save_trace = Some(val().clone()),
            "--rates" => o.rates = Some(val().clone()),
            "--seeds" => o.seeds = Some(val().clone()),
            "--no-sc" => o.no_sc = true,
            "--no-shrink" => o.no_shrink = true,
            "--clients" => o.clients = Some(val().parse().unwrap_or_else(|_| usage())),
            "--skew" => o.skew = Some(val().clone()),
            "--rate" => o.rate = Some(val().parse().unwrap_or_else(|_| usage())),
            "--burst" => o.burst = Some(val().clone()),
            "--mix" => o.mix = Some(val().clone()),
            "--seed" => o.seed = Some(val().parse().unwrap_or_else(|_| usage())),
            "--max-cycles" => o.max_cycles = Some(val().parse().unwrap_or_else(|_| usage())),
            "--expect" => o.expect = Some(val().clone()),
            _ => {
                eprintln!("unknown option {a}");
                usage()
            }
        }
    }
    o
}

fn protocol_of(s: &str) -> ProtocolKind {
    match s {
        "baseline" => ProtocolKind::Baseline,
        "ad" => ProtocolKind::Ad,
        "ls" => ProtocolKind::Ls,
        _ => {
            eprintln!("unknown protocol {s} (baseline|ad|ls)");
            usage()
        }
    }
}

fn spec_of(workload: &str, paper: bool, nodes: Option<u16>) -> Spec {
    match workload {
        "mp3d" => {
            let mut p = if paper {
                mp3d::Mp3dParams::paper()
            } else {
                mp3d::Mp3dParams::quick()
            };
            if let Some(n) = nodes {
                p.procs = n;
            }
            Spec::Mp3d(p)
        }
        "lu" => {
            let mut p = if paper {
                lu::LuParams::paper()
            } else {
                lu::LuParams::quick()
            };
            if let Some(n) = nodes {
                p.procs = n;
            }
            Spec::Lu(p)
        }
        "cholesky" => {
            let mut p = if paper {
                cholesky::CholeskyParams::paper()
            } else {
                cholesky::CholeskyParams::quick()
            };
            if let Some(n) = nodes {
                p.procs = n;
            }
            Spec::Cholesky(p)
        }
        "oltp" => {
            let mut p = if paper {
                oltp::OltpParams::paper()
            } else {
                oltp::OltpParams::quick()
            };
            if let Some(n) = nodes {
                p.procs = n;
            }
            Spec::Oltp(p)
        }
        _ => {
            eprintln!("unknown workload {workload} (mp3d|lu|cholesky|oltp)");
            usage()
        }
    }
}

fn config_of(o: &Opts, workload: &str, kind: ProtocolKind) -> MachineConfig {
    let mut cfg = if workload == "oltp" {
        MachineConfig::oltp_scaled(kind)
    } else {
        MachineConfig::splash_baseline(kind)
    };
    if let Some(n) = o.nodes {
        cfg = cfg.with_nodes(n);
    }
    if let Some(b) = o.block {
        cfg = cfg.with_block_bytes(b);
    }
    if let Some(k) = o.l2_kb {
        cfg.l2.size_bytes = k * 1024;
    }
    if let Some(q) = o.quantum {
        cfg.schedule_quantum = q;
    }
    if o.relaxed {
        cfg.consistency = Consistency::Relaxed;
    }
    if let Some(w) = o.mesh {
        cfg.topology = Topology::Mesh2D { width: w };
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        exit(2);
    }
    cfg
}

fn print_run(r: &RunStats, json: bool) {
    if json {
        println!("{}", RunSummary::from_stats(r).to_json());
    } else {
        println!("protocol        {}", r.protocol.label());
        println!("exec cycles     {}", r.exec_cycles);
        println!("busy            {}", r.busy());
        println!("read stall      {}", r.read_stall());
        println!("write stall     {}", r.write_stall());
        println!("traffic bytes   {}", r.traffic.total_bytes());
        println!("global reads    {}", r.dir.global_reads);
        println!("ownership acqs  {}", r.dir.ownership_acquisitions());
        println!("silent stores   {}", r.machine.silent_stores);
        println!("ls coverage     {:.1}%", 100.0 * r.oracle.ls_coverage());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "config" => {
            // Reuse the bench renderer indirectly: print the config-derived
            // latency rows directly.
            let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
            let l = cfg.latency;
            println!(
                "L1: {} kB, {}-way, {} B blocks, {} cycle(s)",
                cfg.l1.size_bytes / 1024,
                cfg.l1.assoc,
                cfg.l1.block_bytes,
                cfg.l1.access_cycles
            );
            println!(
                "L2: {} kB, {}-way, {} cycles",
                cfg.l2.size_bytes / 1024,
                cfg.l2.assoc,
                cfg.l2.access_cycles
            );
            println!(
                "memory {} / controller {} / network {} cycles",
                l.mem, l.mc, l.net
            );
            println!(
                "derived: local {} / home {} / remote {} cycles",
                l.local_miss(),
                l.home_miss(),
                l.remote_miss()
            );
        }
        "run" => {
            let workload = o.workload.clone().unwrap_or_else(|| usage());
            let kind = protocol_of(o.protocol.as_deref().unwrap_or("ls"));
            let paper = o.scale.as_deref() == Some("paper");
            let spec = spec_of(&workload, paper, o.nodes);
            let cfg = config_of(&o, &workload, kind);
            let r = run_cached(cfg, &spec);
            print_run(&r, o.json);
        }
        "model" => {
            let kinds: Vec<ProtocolKind> = match o.protocol.as_deref().unwrap_or("all") {
                "all" => ProtocolKind::ALL.to_vec(),
                s => vec![protocol_of(s)],
            };
            let mutation = o.mutation.as_deref().map(|s| {
                RuleMutation::parse(s).unwrap_or_else(|| {
                    let names: Vec<&str> = RuleMutation::ALL.iter().map(|m| m.label()).collect();
                    eprintln!("unknown mutation {s} ({})", names.join("|"));
                    usage()
                })
            });
            if let Some(f) = o.format.as_deref() {
                if f != "github" {
                    eprintln!("unknown model format {f} (github)");
                    exit(2);
                }
            }
            let mut violations = 0u32;
            let mut docs = Vec::new();
            for kind in kinds {
                let mut cfg = ModelConfig::new(kind);
                if let Some(n) = o.nodes {
                    cfg = cfg.with_nodes(n);
                }
                if let Some(b) = o.blocks {
                    cfg = cfg.with_blocks(b);
                }
                if let Some(k) = o.max_ops {
                    cfg = cfg.with_max_ops(k);
                }
                if let Some(m) = mutation {
                    cfg = cfg.with_mutation(m);
                }
                let ex = explore(&cfg).unwrap_or_else(|e| {
                    eprintln!("model: {e}");
                    exit(2);
                });
                let s = summarize(&ex);
                if o.json {
                    docs.push(ToJson::to_json(&s));
                } else {
                    println!(
                        "{:<8} nodes={} blocks={} max-ops={}: {} states, {} transitions, \
                         depth {}, {} ms — {}",
                        s.protocol,
                        s.nodes,
                        s.blocks,
                        s.max_ops,
                        s.states,
                        s.transitions,
                        s.max_depth,
                        s.wall_ms,
                        if s.violation.is_empty() {
                            "clean".to_string()
                        } else {
                            format!("VIOLATION: {}", s.violation)
                        }
                    );
                }
                if let Some(cex) = &ex.counterexample {
                    violations += 1;
                    if !o.json {
                        println!("counterexample (shortest, {} steps):", cex.steps.len());
                        println!("{cex}");
                        let (_, report) = replay_counterexample(&cfg, cex, InvariantMode::Check);
                        println!(
                            "engine replay: {} invariant violation(s) in {} checks",
                            report.total_violations(),
                            report.checks()
                        );
                        for v in report.violations() {
                            println!("  {v}");
                        }
                    }
                    if o.format.as_deref() == Some("github") {
                        // GitHub Actions workflow command: point the CI
                        // failure at the enforcement site of the broken rule.
                        let (file, line) = cex.violation.rule.site();
                        println!(
                            "::error file={file},line={line}::[model/{}] {}",
                            s.protocol, cex.violation
                        );
                    }
                }
            }
            if o.json {
                println!("{}", Json::Arr(docs).pretty());
            }
            let ok = if o.expect_violation {
                violations > 0
            } else {
                violations == 0
            };
            if !ok {
                exit(1);
            }
        }
        "verify" => {
            let kinds: Vec<ProtocolKind> = match o.protocol.as_deref().unwrap_or("all") {
                "all" => ProtocolKind::ALL.to_vec(),
                s => vec![protocol_of(s)],
            };
            let mutation = o.mutation.as_deref().map(|s| {
                RuleMutation::parse(s).unwrap_or_else(|| {
                    let names: Vec<&str> = RuleMutation::ALL.iter().map(|m| m.label()).collect();
                    eprintln!("unknown mutation {s} ({})", names.join("|"));
                    usage()
                })
            });
            if let Some(f) = o.format.as_deref() {
                if f != "github" {
                    eprintln!("unknown verify format {f} (github)");
                    exit(2);
                }
            }
            let mut violations = 0u32;
            let mut docs = Vec::new();
            for kind in kinds {
                let mut cfg = ModelConfig::new(kind);
                if let Some(m) = mutation {
                    cfg = cfg.with_mutation(m);
                }
                let v = verify(&cfg).unwrap_or_else(|e| {
                    eprintln!("verify: {e}");
                    exit(2);
                });
                let s = summarize_verify(&v);
                if o.json {
                    docs.push(ToJson::to_json(&s));
                } else {
                    println!(
                        "{:<8} abstract: {} states, {} transitions, {} widenings, depth {}, \
                         {} ms — {}",
                        s.protocol,
                        s.abstract_states,
                        s.transitions,
                        s.widenings,
                        s.max_depth,
                        s.wall_ms,
                        if s.parametric {
                            "proved for every node count".to_string()
                        } else {
                            format!("VIOLATION: {}", s.violation)
                        }
                    );
                }
                if let Some(cex) = &v.counterexample {
                    violations += 1;
                    if !o.json {
                        println!("abstract counterexample ({} steps):", cex.steps.len());
                        println!("{cex}");
                        match &v.refinement {
                            Some(Refinement::Genuine {
                                nodes,
                                counterexample,
                                engine_checks,
                                engine_violations,
                            }) => {
                                println!(
                                    "concretized at n={nodes} (shortest, {} steps):",
                                    counterexample.steps.len()
                                );
                                println!("{counterexample}");
                                println!(
                                    "engine replay: {engine_violations} invariant violation(s) \
                                     in {engine_checks} checks"
                                );
                            }
                            Some(Refinement::Spurious { tried_nodes }) => {
                                println!(
                                    "spurious: no concrete counterexample at n in {tried_nodes:?}; \
                                     widening points:"
                                );
                                for w in &v.widening_points {
                                    println!("  {w}");
                                }
                            }
                            None => {}
                        }
                    }
                    if o.format.as_deref() == Some("github") {
                        let (file, line) = cex.violation.rule.site();
                        println!(
                            "::error file={file},line={line}::[verify/{}] {}",
                            s.protocol, cex.violation
                        );
                    }
                }
            }
            if o.json {
                println!("{}", Json::Arr(docs).pretty());
            }
            let ok = if o.expect_violation {
                violations > 0
            } else {
                violations == 0
            };
            if !ok {
                exit(1);
            }
        }
        "lint" => {
            if let Some(rule) = o.explain.as_deref() {
                match lint::explain(rule) {
                    Some(info) => {
                        println!("[{}] {}\n\n{}", info.id, info.summary, info.explain);
                    }
                    None => {
                        let ids: Vec<&str> = lint::RULES.iter().map(|r| r.id).collect();
                        eprintln!("unknown rule {rule} ({})", ids.join("|"));
                        exit(2);
                    }
                }
                return;
            }
            let root = o.root.as_deref().unwrap_or(".");
            let cfg = lint::LintConfig::workspace();
            let diags =
                lint::lint_workspace(std::path::Path::new(root), &cfg).unwrap_or_else(|e| {
                    eprintln!("lint: {e}");
                    exit(2);
                });
            match o.format.as_deref() {
                // GitHub Actions workflow commands: annotate the PR diff
                // directly instead of burying findings in the job log.
                Some("github") => {
                    for d in &diags {
                        println!(
                            "::error file={},line={}::[{}] {}",
                            d.file, d.line, d.rule, d.message
                        );
                    }
                }
                // SARIF 2.1.0 for code-scanning UIs and CI artifacts.
                Some("sarif") => {
                    println!("{}", lint::sarif::to_sarif(&diags));
                }
                Some(other) => {
                    eprintln!("unknown lint format {other} (github|sarif)");
                    exit(2);
                }
                None if o.json => {
                    let arr = Json::Arr(diags.iter().map(ToJson::to_json).collect());
                    println!("{}", arr.pretty());
                }
                None => {
                    for d in &diags {
                        println!("{}", d.render());
                    }
                    println!(
                        "{} diagnostic(s); run `ccsim lint --explain <rule>` for details",
                        diags.len()
                    );
                }
            }
            if o.deny && !diags.is_empty() {
                exit(1);
            }
        }
        "analyze" => {
            let kind = protocol_of(o.protocol.as_deref().unwrap_or("ls"));
            let (cfg, trace) = if let Some(path) = o.trace.as_deref() {
                let bytes = std::fs::read(path).unwrap_or_else(|e| {
                    eprintln!("analyze: cannot read {path}: {e}");
                    exit(2);
                });
                let trace = Trace::from_bytes(&bytes).unwrap_or_else(|e| {
                    eprintln!("analyze: {path}: {e}");
                    exit(2);
                });
                let mut cfg = config_of(&o, o.workload.as_deref().unwrap_or(""), kind);
                if cfg.nodes < trace.procs() {
                    cfg = cfg.with_nodes(trace.procs());
                }
                (cfg, trace)
            } else {
                let workload = o.workload.clone().unwrap_or_else(|| usage());
                let paper = o.scale.as_deref() == Some("paper");
                let spec = spec_of(&workload, paper, o.nodes);
                let cfg = config_of(&o, &workload, kind);
                let (_, trace) = capture_spec(cfg, &spec);
                (cfg, trace)
            };
            if let Some(path) = o.save_trace.as_deref() {
                if let Err(e) = std::fs::write(path, trace.to_bytes()) {
                    eprintln!("analyze: cannot write {path}: {e}");
                    exit(2);
                }
            }
            let s = lint::analyze(&cfg, &trace).unwrap_or_else(|e| {
                eprintln!("analyze: {e}");
                exit(2);
            });
            if o.json {
                println!("{}", s.to_json());
            } else {
                println!("protocol             {}", s.protocol);
                println!("events / accesses    {} / {}", s.events, s.accesses);
                println!("blocks touched       {}", s.blocks);
                println!("  private            {}", s.private_blocks);
                println!("  read-shared        {}", s.read_shared_blocks);
                println!("  producer-consumer  {}", s.producer_consumer_blocks);
                println!(
                    "  load-store         {} (migratory subset: {})",
                    s.load_store_blocks, s.migratory_blocks
                );
                println!("  irregular          {}", s.irregular_blocks);
                println!("  false-sharing cand {}", s.false_sharing_candidates);
                println!("global writes        {}", s.global_writes);
                println!(
                    "ls writes            {} (migratory subset: {})",
                    s.ls_writes, s.migratory_writes
                );
                println!("ls upper bound       {}", s.ls_upper_bound);
                println!(
                    "eliminated           {} (ls {}, migratory {})",
                    s.eliminated, s.eliminated_ls, s.eliminated_migratory
                );
                println!("silent stores        {}", s.silent_stores);
                println!(
                    "false sharing        {:.1}%",
                    100.0 * s.false_sharing_fraction
                );
            }
        }
        "race" => {
            let kind = protocol_of(o.protocol.as_deref().unwrap_or("ls"));
            let mutation = o.mutation.as_deref().map(|s| {
                RuleMutation::parse(s).unwrap_or_else(|| {
                    let names: Vec<&str> = RuleMutation::ALL.iter().map(|m| m.label()).collect();
                    eprintln!("unknown mutation {s} ({})", names.join("|"));
                    usage()
                })
            });
            let (cfg, log) = if let Some(path) = o.trace.as_deref() {
                let bytes = std::fs::read(path).unwrap_or_else(|e| {
                    eprintln!("race: cannot read {path}: {e}");
                    exit(2);
                });
                let trace = Trace::from_bytes(&bytes).unwrap_or_else(|e| {
                    eprintln!("race: {path}: {e}");
                    exit(2);
                });
                let mut cfg = config_of(&o, o.workload.as_deref().unwrap_or(""), kind);
                if cfg.nodes < trace.procs() {
                    cfg = cfg.with_nodes(trace.procs());
                }
                cfg = with_mutation(cfg, mutation);
                let (_, log) = replay_events(cfg, &trace, &[]);
                (cfg, log)
            } else {
                let workload = o.workload.clone().unwrap_or_else(|| usage());
                let paper = o.scale.as_deref() == Some("paper");
                let spec = spec_of(&workload, paper, o.nodes);
                let cfg = with_mutation(config_of(&o, &workload, kind), mutation);
                // Deliberately bypasses the run cache: a mutated run must
                // never be cached, and the event log is not part of the
                // cached artifact anyway.
                let (_, log) = capture_events_spec(cfg, &spec);
                (cfg, log)
            };
            let report = race_check(&cfg.protocol, &log);
            if o.json {
                let s = RaceSummary::from_report(cfg.protocol.kind.label(), cfg.nodes, &report);
                println!("{}", s.to_json());
            } else {
                println!("{}", report.render(&log));
            }
            let ok = if o.expect_violation {
                !report.is_clean()
            } else {
                report.is_clean()
            };
            if !ok {
                exit(1);
            }
        }
        "chaos" => {
            let kinds: Vec<ProtocolKind> = match o.protocol.as_deref().unwrap_or("all") {
                "all" => ProtocolKind::ALL.to_vec(),
                s => vec![protocol_of(s)],
            };
            let workload = o.workload.clone().unwrap_or_else(|| "mp3d".to_string());
            let paper = o.scale.as_deref() == Some("paper");
            let spec = spec_of(&workload, paper, o.nodes);
            fn csv<T: std::str::FromStr>(s: &str, what: &str) -> Vec<T> {
                s.split(',')
                    .map(|v| {
                        v.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad {what} value {v:?}");
                            usage()
                        })
                    })
                    .collect()
            }
            let mutation = o.mutation.as_deref().map(|s| {
                TransportMutation::parse(s).unwrap_or_else(|| {
                    let names: Vec<&str> =
                        TransportMutation::ALL.iter().map(|m| m.label()).collect();
                    eprintln!("unknown transport mutation {s} ({})", names.join("|"));
                    usage()
                })
            });
            // Gate on *this* binary's feature set, not the library's: under
            // workspace-wide builds feature unification can compile the
            // harness with `testing` on even when this crate's is off.
            if let Some(m) = mutation {
                if !cfg!(feature = "testing") {
                    eprintln!(
                        "transport mutation {} requires the `testing` cargo feature",
                        m.label()
                    );
                    exit(2);
                }
            }
            let cc = chaos::ChaosConfig {
                protocols: kinds,
                specs: vec![spec],
                rates: o.rates.as_deref().map_or(vec![60], |s| csv(s, "rate")),
                seeds: o.seeds.as_deref().map_or(vec![1, 2, 3], |s| csv(s, "seed")),
                check_sc: !o.no_sc,
                shrink: !o.no_shrink,
                mutation,
            };
            let outcome = chaos::sweep(&cc).unwrap_or_else(|e| {
                eprintln!("chaos: {e}");
                exit(2);
            });
            if o.json {
                println!("{}", outcome.summary().to_json());
            } else {
                for c in &outcome.cells {
                    let verdict = match &c.failure {
                        None => format!(
                            "clean ({} retransmit(s), {} nack(s))",
                            c.retransmits, c.nacks
                        ),
                        Some(f) => format!("FAIL: {f}"),
                    };
                    println!(
                        "{:<10} {:<8} rate {:>4} seed {:>6}: {}",
                        c.workload,
                        format!("{:?}", c.protocol),
                        c.rate_per_mille,
                        c.seed,
                        verdict
                    );
                }
                println!(
                    "{} cell(s), {} failure(s)",
                    outcome.cells.len(),
                    outcome.failures()
                );
                if let Some(w) = &outcome.witness {
                    print!("{}", w.render());
                }
            }
            let ok = if o.expect_violation {
                !outcome.is_clean()
            } else {
                outcome.is_clean()
            };
            if !ok {
                exit(1);
            }
        }
        "serve" => {
            let kinds: Vec<ProtocolKind> = match o.protocol.as_deref().unwrap_or("all") {
                "all" => ProtocolKind::ALL.to_vec(),
                s => vec![protocol_of(s)],
            };
            let paper = o.scale.as_deref() == Some("paper");
            let mut cfg = if paper {
                ServeConfig::paper()
            } else {
                ServeConfig::quick()
            };
            if let Some(c) = o.clients {
                cfg.clients = c;
            }
            if let Some(s) = o.skew.as_deref() {
                let exp: f64 = s.parse().unwrap_or_else(|_| {
                    eprintln!("bad --skew value {s:?} (zipf exponent, e.g. 0.99)");
                    usage()
                });
                cfg.skew_per_mille = (exp * 1000.0).round() as u32;
            }
            if let Some(r) = o.rate {
                cfg.rate_per_mcycle = r;
            }
            if let Some(b) = o.burst.as_deref() {
                let parts: Vec<u64> = b
                    .split(':')
                    .map(|v| {
                        v.parse().unwrap_or_else(|_| {
                            eprintln!("bad --burst value {b:?} (want ON:OFF:X)");
                            usage()
                        })
                    })
                    .collect();
                let [on, off, x] = parts[..] else {
                    eprintln!("bad --burst value {b:?} (want ON:OFF:X)");
                    usage()
                };
                cfg.burst_on_cycles = on;
                cfg.burst_off_cycles = off;
                cfg.burst_x_per_mille = x;
            }
            if let Some(m) = o.mix.as_deref() {
                let parts: Vec<u16> = m
                    .split(':')
                    .map(|v| {
                        v.parse().unwrap_or_else(|_| {
                            eprintln!("bad --mix value {m:?} (want a:b:c:d per mille)");
                            usage()
                        })
                    })
                    .collect();
                let [a, b, c, d] = parts[..] else {
                    eprintln!("bad --mix value {m:?} (want a:b:c:d per mille)");
                    usage()
                };
                cfg.mix_per_mille = [a, b, c, d];
            }
            if let Some(s) = o.seed {
                cfg.seed = s;
            }
            if let Some(c) = o.max_cycles {
                cfg.ward.max_cycles = c;
            }
            if let Err(e) = cfg.validate() {
                eprintln!("serve: {e}");
                exit(2);
            }
            let expect = o.expect.as_deref().map(|s| {
                StopReason::parse(s).unwrap_or_else(|| {
                    eprintln!("unknown ward {s} (converged|max-cycles|queue-divergence)");
                    usage()
                })
            });
            let base = config_of(&o, "oltp", kinds[0]);
            let workers = ccsim::engine::sim_threads_from_env();
            let reports = serve_sweep(base, &cfg, &kinds, workers);
            let s = ccsim::serve::summarize(&cfg, &reports);
            if o.json {
                println!("{}", s.to_json());
            } else {
                println!(
                    "serve: {} clients, zipf s={:.2}, {} arrivals/Mcycle, mix {:?}, seed {}",
                    s.clients,
                    s.skew_per_mille as f64 / 1000.0,
                    s.rate_per_mcycle,
                    s.mix_per_mille,
                    s.seed
                );
                for row in &s.rows {
                    println!(
                        "{:<9} stop={:<16} cycles={:<10} done={} drop={} thrpt/Mc={} \
                         maxq={} hotrow={} ownacq={} inval={}",
                        row.protocol,
                        row.stop,
                        row.cycles,
                        row.completed,
                        row.dropped,
                        row.throughput_per_mcycle,
                        row.max_queue_depth,
                        row.hot_row_conflicts,
                        row.ownership_acquisitions,
                        row.invalidations
                    );
                    for c in &row.classes {
                        println!(
                            "  {:<11} n={:<7} p50={:<7} p90={:<7} p99={:<7} max={}",
                            c.class, c.count, c.p50, c.p90, c.p99, c.max
                        );
                    }
                }
            }
            if let Some(want) = expect {
                let bad: Vec<&str> = s
                    .rows
                    .iter()
                    .filter(|r| r.stop != want.label())
                    .map(|r| r.protocol.as_str())
                    .collect();
                if !bad.is_empty() {
                    eprintln!(
                        "serve: expected every run to stop by {:?}, but {} did not",
                        want.label(),
                        bad.join(", ")
                    );
                    exit(1);
                }
            }
        }
        "compare" => {
            let workload = o.workload.clone().unwrap_or_else(|| usage());
            let paper = o.scale.as_deref() == Some("paper");
            let spec = spec_of(&workload, paper, o.nodes);
            let mut set = JobSet::new();
            for &k in &ProtocolKind::ALL {
                set.push(config_of(&o, &workload, k), spec.clone());
            }
            let runs: Vec<RunStats> = set.run();
            if o.json {
                let arr = Json::Arr(
                    runs.iter()
                        .map(|r| ToJson::to_json(&RunSummary::from_stats(r)))
                        .collect(),
                );
                print!("{}", arr.pretty());
            } else {
                let t = Triptych::new(workload.to_uppercase(), &runs);
                print!("{}", render_triptych(&t));
            }
        }
        _ => usage(),
    }
}
