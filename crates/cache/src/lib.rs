//! Cache models for the `ccsim` multiprocessor.
//!
//! A node's cache hierarchy is two inclusive levels of set-associative,
//! LRU-replaced caches ([`Hierarchy`]). Lines carry one of three present
//! states (absence is Invalid):
//!
//! * [`LineState::Shared`] — clean, possibly replicated.
//! * [`LineState::Excl`] — exclusive *clean*: the paper's `LStemp` state
//!   under LS, or a migratory grant under AD. A store hits this state and
//!   silently promotes it to `Modified` with **no global action** — this is
//!   the entire point of the optimization.
//! * [`LineState::Modified`] — exclusive dirty.
//!
//! The caches track tags and states only; data values live in the flat
//! backing store (`ccsim-mem`), which is exact because the engine serializes
//! all accesses in simulated-time order.

pub mod hierarchy;
pub mod sa;

pub use hierarchy::{Eviction, Hierarchy, Probe};
pub use sa::{Cache, LineState};
