//! Two-level inclusive cache hierarchy.
//!
//! Invariants maintained:
//!
//! * **Inclusion** — every L1-resident block is L2-resident.
//! * **State agreement** — a block present in both levels has the same
//!   coherence state in both (states change only through [`Hierarchy`]
//!   methods, which update both levels).
//!
//! Consequences: an L1 eviction needs no external action (the L2 still holds
//! the line in the same state); an L2 eviction back-invalidates the L1 and is
//! reported to the caller as an [`Eviction`] so the engine can notify the
//! home node (replacement writeback for `Modified`, replacement hint for
//! `Shared`/`Excl` — the latter is what lets the LS protocol keep the LS-bit
//! across replacements, §3.1 case 3).

use crate::sa::{Cache, LineState};
use ccsim_types::{BlockAddr, MachineConfig};

/// Where an access hit, if anywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    L1(LineState),
    L2(LineState),
    Miss,
}

impl Probe {
    pub fn state(self) -> Option<LineState> {
        match self {
            Probe::L1(s) | Probe::L2(s) => Some(s),
            Probe::Miss => None,
        }
    }
}

/// A block displaced from the hierarchy (always reported at L2 granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    pub block: BlockAddr,
    pub state: LineState,
}

/// One node's L1+L2 stack.
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    pub fn new(cfg: &MachineConfig) -> Self {
        Hierarchy {
            l1: Cache::new(&cfg.l1),
            l2: Cache::new(&cfg.l2),
        }
    }

    /// Probe for `block`, updating LRU at the level that hits and promoting
    /// L2 hits into the L1 (an L1 victim silently folds back into the L2,
    /// which still holds it, by inclusion).
    pub fn probe(&mut self, block: BlockAddr) -> Probe {
        if let Some(s) = self.l1.touch(block) {
            debug_assert_eq!(self.l2.peek(block), Some(s), "inclusion/state agreement");
            self.l2.touch(block); // keep the L2 copy warm too
            return Probe::L1(s);
        }
        if let Some(s) = self.l2.touch(block) {
            // Promote into L1. The displaced L1 line is still in L2 with an
            // identical state, so nothing escapes the hierarchy.
            let _victim = self.l1.insert(block, s);
            return Probe::L2(s);
        }
        Probe::Miss
    }

    /// Coherence state of `block` as seen by the protocol (L2 authoritative).
    pub fn state(&self, block: BlockAddr) -> Option<LineState> {
        self.l2.peek(block)
    }

    /// Install `block` with `state` into both levels, returning any L2
    /// evictions (at most one) that the home must be told about.
    pub fn fill(&mut self, block: BlockAddr, state: LineState) -> Option<Eviction> {
        let l2_victim = self.l2.insert(block, state);
        let evicted = l2_victim.map(|(vb, vs)| {
            // Back-invalidate L1 to preserve inclusion.
            self.l1.invalidate(vb);
            Eviction {
                block: vb,
                state: vs,
            }
        });
        let _ = self.l1.insert(block, state); // L1 victim stays in L2
        debug_assert!(
            evicted.map(|e| e.block != block).unwrap_or(true),
            "fill cannot evict itself"
        );
        evicted
    }

    /// Change the coherence state of a resident block in both levels.
    /// Returns false if the block is not resident.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        let in_l2 = self.l2.set_state(block, state);
        if in_l2 {
            self.l1.set_state(block, state);
        }
        in_l2
    }

    /// Remove `block` from both levels; returns the state it held.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        self.l1.invalidate(block);
        self.l2.invalidate(block)
    }

    /// Direct access to the levels (diagnostics/tests).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Check the inclusion + state-agreement invariants (test support).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (b, s1) in self.l1.iter() {
            match self.l2.peek(b) {
                None => return Err(format!("{b} in L1 but not L2")),
                Some(s2) if s2 != s1 => {
                    return Err(format!("{b} state mismatch: L1 {s1:?} vs L2 {s2:?}"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::{Addr, CacheConfig, ProtocolKind};

    fn tiny_cfg() -> MachineConfig {
        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        // L1: 2 blocks direct-mapped; L2: 8 blocks direct-mapped; 16B lines.
        c.l1 = CacheConfig {
            size_bytes: 32,
            assoc: 1,
            block_bytes: 16,
            access_cycles: 1,
        };
        c.l2 = CacheConfig {
            size_bytes: 128,
            assoc: 1,
            block_bytes: 16,
            access_cycles: 10,
        };
        c
    }

    fn blk(a: u64) -> BlockAddr {
        Addr(a).block(16)
    }

    #[test]
    fn fill_then_probe_hits_l1() {
        let mut h = Hierarchy::new(&tiny_cfg());
        assert_eq!(h.fill(blk(0), LineState::Shared), None);
        assert_eq!(h.probe(blk(0)), Probe::L1(LineState::Shared));
        h.check_invariants().unwrap();
    }

    #[test]
    fn l1_conflict_falls_back_to_l2() {
        let mut h = Hierarchy::new(&tiny_cfg());
        // L1 has 2 sets; 0x00 and 0x20 collide in L1 set 0 but live in
        // different L2 sets (L2 has 8 sets).
        h.fill(blk(0x00), LineState::Shared);
        h.fill(blk(0x20), LineState::Shared);
        // 0x00 was displaced from L1 by 0x20 but must still hit in L2.
        assert_eq!(h.probe(blk(0x00)), Probe::L2(LineState::Shared));
        // And is now promoted back into L1.
        assert_eq!(h.probe(blk(0x00)), Probe::L1(LineState::Shared));
        h.check_invariants().unwrap();
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        let mut h = Hierarchy::new(&tiny_cfg());
        // Fill L2 set 0 (addresses stepping by 128 = 8 sets * 16B).
        h.fill(blk(0x000), LineState::Modified);
        let ev = h.fill(blk(0x080), LineState::Shared);
        assert_eq!(
            ev,
            Some(Eviction {
                block: blk(0x000),
                state: LineState::Modified
            })
        );
        assert_eq!(h.probe(blk(0x000)), Probe::Miss);
        h.check_invariants().unwrap();
    }

    #[test]
    fn set_state_updates_both_levels() {
        let mut h = Hierarchy::new(&tiny_cfg());
        h.fill(blk(0), LineState::Excl);
        assert!(h.set_state(blk(0), LineState::Modified));
        assert_eq!(h.l1().peek(blk(0)), Some(LineState::Modified));
        assert_eq!(h.l2().peek(blk(0)), Some(LineState::Modified));
        h.check_invariants().unwrap();
    }

    #[test]
    fn set_state_after_l1_displacement_still_succeeds() {
        let mut h = Hierarchy::new(&tiny_cfg());
        h.fill(blk(0x00), LineState::Shared);
        h.fill(blk(0x20), LineState::Shared); // displaces 0x00 from L1
        assert!(h.set_state(blk(0x00), LineState::Modified));
        assert_eq!(h.state(blk(0x00)), Some(LineState::Modified));
        h.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_clears_both_levels() {
        let mut h = Hierarchy::new(&tiny_cfg());
        h.fill(blk(0), LineState::Modified);
        assert_eq!(h.invalidate(blk(0)), Some(LineState::Modified));
        assert_eq!(h.probe(blk(0)), Probe::Miss);
        assert_eq!(h.invalidate(blk(0)), None);
    }

    #[test]
    fn probe_state_accessor() {
        assert_eq!(
            Probe::L1(LineState::Shared).state(),
            Some(LineState::Shared)
        );
        assert_eq!(
            Probe::L2(LineState::Modified).state(),
            Some(LineState::Modified)
        );
        assert_eq!(Probe::Miss.state(), None);
    }

    #[test]
    fn stress_inclusion_invariant() {
        let mut h = Hierarchy::new(&tiny_cfg());
        // Deterministic pseudo-random walk over 64 blocks.
        let mut x = 0x12345678u64;
        for i in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = blk((x >> 16) % 64 * 16);
            match i % 5 {
                0 | 1 => {
                    h.probe(b);
                }
                2 => {
                    h.fill(b, LineState::Shared);
                }
                3 => {
                    h.fill(b, LineState::Modified);
                }
                _ => {
                    h.invalidate(b);
                }
            }
            h.check_invariants().unwrap();
        }
    }
}
