//! One level of set-associative cache (tags + states, LRU replacement).

use ccsim_types::{BlockAddr, CacheConfig};

/// Coherence state of a present cache line. Absent lines are Invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LineState {
    /// Clean, possibly replicated in other caches.
    Shared,
    /// Exclusive clean: `LStemp` (LS protocol) or a migratory grant (AD).
    /// A local store silently promotes this to `Modified`. Memory is
    /// current; replacement needs no writeback.
    Excl,
    /// Exclusive *dirty* handoff: this cache received modified data
    /// directly from the previous owner (the migratory/LS transfer) and has
    /// not written it yet. Behaves like `Modified` for coherence (memory is
    /// stale, replacement writes back) but the anticipated first store is
    /// still pending — when it lands it completes silently and counts as an
    /// eliminated ownership acquisition.
    ExclDirty,
    /// Exclusive dirty, written by this processor.
    Modified,
}

impl LineState {
    /// Memory does not hold the current data; replacement must write back.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::ExclDirty | LineState::Modified)
    }

    /// The line is held exclusively (a local store needs no global action).
    #[inline]
    pub fn is_exclusive(self) -> bool {
        !matches!(self, LineState::Shared)
    }
}

#[derive(Clone, Debug)]
struct Line {
    block: BlockAddr,
    state: LineState,
    last_use: u64,
}

/// A set-associative cache over block addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    assoc: usize,
    block_bytes: u64,
    tick: u64,
}

impl Cache {
    pub fn new(cfg: &CacheConfig) -> Self {
        cfg.validate().expect("invalid cache config");
        let num_sets = cfg.num_sets() as usize;
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc as usize); num_sets],
            assoc: cfg.assoc as usize,
            block_bytes: cfg.block_bytes,
            tick: 0,
        }
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        ((block.0 / self.block_bytes) % self.sets.len() as u64) as usize
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// State of `block` if present; does not affect LRU order.
    pub fn peek(&self, block: BlockAddr) -> Option<LineState> {
        let si = self.set_index(block);
        self.sets[si]
            .iter()
            .find(|l| l.block == block)
            .map(|l| l.state)
    }

    /// State of `block` if present, marking it most-recently-used.
    pub fn touch(&mut self, block: BlockAddr) -> Option<LineState> {
        let si = self.set_index(block);
        let t = self.bump();
        let set = &mut self.sets[si];
        set.iter_mut().find(|l| l.block == block).map(|l| {
            l.last_use = t;
            l.state
        })
    }

    /// Overwrite the state of a present line; returns false if absent.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        let si = self.set_index(block);
        match self.sets[si].iter_mut().find(|l| l.block == block) {
            Some(l) => {
                l.state = state;
                true
            }
            None => false,
        }
    }

    /// Remove `block`; returns its state if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let si = self.set_index(block);
        let set = &mut self.sets[si];
        set.iter()
            .position(|l| l.block == block)
            .map(|i| set.swap_remove(i).state)
    }

    /// Insert `block` with `state`, evicting the LRU victim of the set when
    /// full. Returns the victim `(block, state)` if one was displaced.
    /// Inserting an already-present block just updates state + LRU.
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        let si = self.set_index(block);
        let t = self.bump();
        let assoc = self.assoc;
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.block == block) {
            l.state = state;
            l.last_use = t;
            return None;
        }
        let victim = if set.len() == assoc {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .expect("full set has a victim");
            let v = set.swap_remove(vi);
            Some((v.block, v.state))
        } else {
            None
        };
        set.push(Line {
            block,
            state,
            last_use: t,
        });
        victim
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over resident `(block, state)` pairs (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.sets.iter().flatten().map(|l| (l.block, l.state))
    }

    /// Block size this cache was built with.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::Addr;

    fn tiny() -> Cache {
        // 4 blocks total, 2-way, 16B lines -> 2 sets.
        Cache::new(&CacheConfig {
            size_bytes: 64,
            assoc: 2,
            block_bytes: 16,
            access_cycles: 1,
        })
    }

    fn blk(a: u64) -> BlockAddr {
        Addr(a).block(16)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.touch(blk(0)), None);
        assert_eq!(c.insert(blk(0), LineState::Shared), None);
        assert_eq!(c.touch(blk(0)), Some(LineState::Shared));
        assert_eq!(c.peek(blk(0)), Some(LineState::Shared));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds blocks whose (addr/16) is even: 0x00, 0x20, 0x40...
        c.insert(blk(0x00), LineState::Shared);
        c.insert(blk(0x20), LineState::Shared);
        // Touch 0x00 so 0x20 becomes LRU.
        c.touch(blk(0x00));
        let victim = c.insert(blk(0x40), LineState::Modified);
        assert_eq!(victim, Some((blk(0x20), LineState::Shared)));
        assert!(c.peek(blk(0x00)).is_some());
        assert!(c.peek(blk(0x20)).is_none());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = tiny();
        c.insert(blk(0), LineState::Shared);
        assert_eq!(c.insert(blk(0), LineState::Modified), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(blk(0)), Some(LineState::Modified));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // 0x00 -> set 0; 0x10 -> set 1.
        c.insert(blk(0x00), LineState::Shared);
        c.insert(blk(0x20), LineState::Shared);
        c.insert(blk(0x10), LineState::Shared);
        c.insert(blk(0x30), LineState::Shared);
        assert_eq!(c.len(), 4);
        // Filling set 0 further does not evict set 1.
        c.insert(blk(0x40), LineState::Shared);
        assert!(c.peek(blk(0x10)).is_some());
        assert!(c.peek(blk(0x30)).is_some());
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = tiny();
        c.insert(blk(0), LineState::Modified);
        assert_eq!(c.invalidate(blk(0)), Some(LineState::Modified));
        assert_eq!(c.invalidate(blk(0)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn set_state_on_absent_line_is_false() {
        let mut c = tiny();
        assert!(!c.set_state(blk(0), LineState::Modified));
        c.insert(blk(0), LineState::Shared);
        assert!(c.set_state(blk(0), LineState::Excl));
        assert_eq!(c.peek(blk(0)), Some(LineState::Excl));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(&CacheConfig {
            size_bytes: 32,
            assoc: 1,
            block_bytes: 16,
            access_cycles: 1,
        });
        c.insert(blk(0x00), LineState::Shared);
        // 0x40 maps to the same set in a 2-set direct-mapped cache.
        let v = c.insert(blk(0x40), LineState::Shared);
        assert_eq!(v, Some((blk(0x00), LineState::Shared)));
    }

    #[test]
    fn iter_lists_residents() {
        let mut c = tiny();
        c.insert(blk(0x00), LineState::Shared);
        c.insert(blk(0x10), LineState::Excl);
        let mut got: Vec<_> = c.iter().collect();
        got.sort();
        assert_eq!(
            got,
            vec![(blk(0x00), LineState::Shared), (blk(0x10), LineState::Excl)]
        );
    }
}
