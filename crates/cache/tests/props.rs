//! Property tests for the cache hierarchy (deterministic cases via
//! `ccsim_util::check`).

use ccsim_cache::{Hierarchy, LineState, Probe};
use ccsim_types::{Addr, BlockAddr, CacheConfig, MachineConfig, ProtocolKind};
use ccsim_util::check::{cases, Gen};

fn cfg(l1_blocks: u64, l2_blocks: u64, assoc: u32) -> MachineConfig {
    let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
    c.l1 = CacheConfig {
        size_bytes: l1_blocks * 16,
        assoc,
        block_bytes: 16,
        access_cycles: 1,
    };
    c.l2 = CacheConfig {
        size_bytes: l2_blocks * 16,
        assoc: 1,
        block_bytes: 16,
        access_cycles: 10,
    };
    c
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Probe(u8),
    FillS(u8),
    FillM(u8),
    FillX(u8),
    SetM(u8),
    Invalidate(u8),
}

fn op(g: &mut Gen) -> Op {
    let b = g.below(64) as u8;
    match g.below(6) {
        0 => Op::Probe(b),
        1 => Op::FillS(b),
        2 => Op::FillM(b),
        3 => Op::FillX(b),
        4 => Op::SetM(b),
        _ => Op::Invalidate(b),
    }
}

fn blk(b: u8) -> BlockAddr {
    Addr(b as u64 * 16).block(16)
}

/// Inclusion and state agreement hold under arbitrary operation sequences,
/// for several geometries including direct-mapped and set-associative L1s.
#[test]
fn hierarchy_invariants_hold() {
    cases(128, |g| {
        let c = match g.below(3) {
            0 => cfg(2, 8, 1),
            1 => cfg(4, 16, 2),
            _ => cfg(8, 8, 1), // L1 as big as L2
        };
        let n = g.urange(1, 300);
        let seq = g.vec(n, op);
        let mut h = Hierarchy::new(&c);
        for op in seq {
            match op {
                Op::Probe(b) => {
                    let before = h.state(blk(b));
                    let p = h.probe(blk(b));
                    // A probe never changes the coherence state.
                    assert_eq!(h.state(blk(b)), before);
                    assert_eq!(p.state(), before);
                }
                Op::FillS(b) => {
                    h.fill(blk(b), LineState::Shared);
                }
                Op::FillM(b) => {
                    h.fill(blk(b), LineState::Modified);
                }
                Op::FillX(b) => {
                    h.fill(blk(b), LineState::Excl);
                }
                Op::SetM(b) => {
                    let present = h.state(blk(b)).is_some();
                    assert_eq!(h.set_state(blk(b), LineState::Modified), present);
                }
                Op::Invalidate(b) => {
                    h.invalidate(blk(b));
                    assert_eq!(h.state(blk(b)), None);
                }
            }
            h.check_invariants().unwrap();
        }
    });
}

/// A filled block is immediately probeable with the state it was given, and
/// capacity never exceeds the configured number of blocks.
#[test]
fn fill_then_probe_and_capacity() {
    cases(128, |g| {
        let n = g.urange(1, 200);
        let seq = g.vec(n, |g| g.below(64) as u8);
        let c = cfg(2, 8, 1);
        let mut h = Hierarchy::new(&c);
        for b in seq {
            h.fill(blk(b), LineState::Shared);
            match h.probe(blk(b)) {
                Probe::L1(LineState::Shared) => {}
                other => panic!("expected L1 hit, got {other:?}"),
            }
            assert!(h.l2().len() <= 8);
            assert!(h.l1().len() <= 2);
        }
    });
}

/// An eviction reported by fill really is gone, and it is never the block
/// just filled.
#[test]
fn evictions_are_real() {
    cases(128, |g| {
        let n = g.urange(1, 200);
        let seq = g.vec(n, |g| (g.below(64) as u8, g.bool()));
        let c = cfg(2, 4, 1);
        let mut h = Hierarchy::new(&c);
        for (b, dirty) in seq {
            let st = if dirty {
                LineState::Modified
            } else {
                LineState::Shared
            };
            if let Some(ev) = h.fill(blk(b), st) {
                assert_ne!(ev.block, blk(b));
                assert_eq!(h.state(ev.block), None, "victim still resident");
            }
            assert_eq!(h.state(blk(b)), Some(st));
        }
    });
}
