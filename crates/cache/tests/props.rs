//! Property tests for the cache hierarchy.

use ccsim_cache::{Hierarchy, LineState, Probe};
use ccsim_types::{Addr, BlockAddr, CacheConfig, MachineConfig, ProtocolKind};
use proptest::prelude::*;

fn cfg(l1_blocks: u64, l2_blocks: u64, assoc: u32) -> MachineConfig {
    let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
    c.l1 = CacheConfig {
        size_bytes: l1_blocks * 16,
        assoc,
        block_bytes: 16,
        access_cycles: 1,
    };
    c.l2 = CacheConfig {
        size_bytes: l2_blocks * 16,
        assoc: 1,
        block_bytes: 16,
        access_cycles: 10,
    };
    c
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Probe(u8),
    FillS(u8),
    FillM(u8),
    FillX(u8),
    SetM(u8),
    Invalidate(u8),
}

fn ops() -> impl Strategy<Value = Op> {
    (0..64u8, 0..6u8).prop_map(|(b, k)| match k {
        0 => Op::Probe(b),
        1 => Op::FillS(b),
        2 => Op::FillM(b),
        3 => Op::FillX(b),
        4 => Op::SetM(b),
        _ => Op::Invalidate(b),
    })
}

fn blk(b: u8) -> BlockAddr {
    Addr(b as u64 * 16).block(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Inclusion and state agreement hold under arbitrary operation
    /// sequences, for several geometries including direct-mapped and
    /// set-associative L1s.
    #[test]
    fn hierarchy_invariants_hold(
        seq in proptest::collection::vec(ops(), 1..300),
        geom in 0..3usize,
    ) {
        let c = match geom {
            0 => cfg(2, 8, 1),
            1 => cfg(4, 16, 2),
            _ => cfg(8, 8, 1), // L1 as big as L2
        };
        let mut h = Hierarchy::new(&c);
        for op in seq {
            match op {
                Op::Probe(b) => {
                    let before = h.state(blk(b));
                    let p = h.probe(blk(b));
                    // A probe never changes the coherence state.
                    prop_assert_eq!(h.state(blk(b)), before);
                    prop_assert_eq!(p.state(), before);
                }
                Op::FillS(b) => {
                    h.fill(blk(b), LineState::Shared);
                }
                Op::FillM(b) => {
                    h.fill(blk(b), LineState::Modified);
                }
                Op::FillX(b) => {
                    h.fill(blk(b), LineState::Excl);
                }
                Op::SetM(b) => {
                    let present = h.state(blk(b)).is_some();
                    prop_assert_eq!(h.set_state(blk(b), LineState::Modified), present);
                }
                Op::Invalidate(b) => {
                    h.invalidate(blk(b));
                    prop_assert_eq!(h.state(blk(b)), None);
                }
            }
            h.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// A filled block is immediately probeable with the state it was given,
    /// and capacity never exceeds the configured number of blocks.
    #[test]
    fn fill_then_probe_and_capacity(
        seq in proptest::collection::vec(0..64u8, 1..200)
    ) {
        let c = cfg(2, 8, 1);
        let mut h = Hierarchy::new(&c);
        for b in seq {
            h.fill(blk(b), LineState::Shared);
            match h.probe(blk(b)) {
                Probe::L1(LineState::Shared) => {}
                other => return Err(TestCaseError::fail(format!("expected L1 hit, got {other:?}"))),
            }
            prop_assert!(h.l2().len() <= 8);
            prop_assert!(h.l1().len() <= 2);
        }
    }

    /// An eviction reported by fill really is gone, and it is never the
    /// block just filled.
    #[test]
    fn evictions_are_real(
        seq in proptest::collection::vec((0..64u8, any::<bool>()), 1..200)
    ) {
        let c = cfg(2, 4, 1);
        let mut h = Hierarchy::new(&c);
        for (b, dirty) in seq {
            let st = if dirty { LineState::Modified } else { LineState::Shared };
            if let Some(ev) = h.fill(blk(b), st) {
                prop_assert_ne!(ev.block, blk(b));
                prop_assert_eq!(h.state(ev.block), None, "victim still resident");
            }
            prop_assert_eq!(h.state(blk(b)), Some(st));
        }
    }
}
