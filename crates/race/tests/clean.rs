//! The analyzer must be *quiet* on the real engine: every quick-scale
//! workload, under every protocol variant, replays cleanly through the
//! happens-before pass and the shadow rules replay. These tests are the
//! other half of the mutation tests — a checker that flags correct runs is
//! as useless as one that misses broken ones.

use ccsim_race::check;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{capture_events_spec, cholesky, lu, mp3d, Spec};

fn specs() -> Vec<Spec> {
    vec![
        Spec::Mp3d(mp3d::Mp3dParams::quick()),
        Spec::Cholesky(cholesky::CholeskyParams::quick()),
        Spec::Lu(lu::LuParams::quick()),
    ]
}

#[test]
fn quick_workloads_are_conformant_under_all_protocols() {
    for kind in ProtocolKind::ALL {
        for spec in specs() {
            let cfg = MachineConfig::splash_baseline(kind);
            let (_, log) = capture_events_spec(cfg, &spec);
            let report = check(&cfg.protocol, &log);
            assert!(
                report.is_clean(),
                "{} under {kind:?} is not conformant:\n{}",
                spec.name(),
                report.render(&log)
            );
            assert!(
                report.sc_fingerprint.is_some(),
                "{} under {kind:?}: no SC witness found",
                spec.name()
            );
            assert!(report.counts.accesses > 0);
            assert!(report.counts.rf_edges > 0);
        }
    }
}

#[test]
fn sc_fingerprint_is_deterministic_across_runs() {
    for kind in ProtocolKind::ALL {
        let spec = Spec::Mp3d(mp3d::Mp3dParams::quick());
        let cfg = MachineConfig::splash_baseline(kind);
        let (_, log_a) = capture_events_spec(cfg, &spec);
        let (_, log_b) = capture_events_spec(cfg, &spec);
        let a = check(&cfg.protocol, &log_a);
        let b = check(&cfg.protocol, &log_b);
        assert_eq!(
            a.sc_fingerprint, b.sc_fingerprint,
            "SC witness fingerprint must be bit-identical across runs ({kind:?})"
        );
        assert_eq!(a.counts.events, b.counts.events);
    }
}
