//! The analyzer must be *quiet* on the real engine: every quick-scale
//! workload, under every protocol variant, replays cleanly through the
//! happens-before pass and the shadow rules replay. These tests are the
//! other half of the mutation tests — a checker that flags correct runs is
//! as useless as one that misses broken ones.

use ccsim_engine::replay_events;
use ccsim_race::check;
use ccsim_types::{FaultConfig, MachineConfig, ProtocolKind};
use ccsim_workloads::{capture_events_spec, capture_spec, cholesky, lu, mp3d, Spec};

fn specs() -> Vec<Spec> {
    vec![
        Spec::Mp3d(mp3d::Mp3dParams::quick()),
        Spec::Cholesky(cholesky::CholeskyParams::quick()),
        Spec::Lu(lu::LuParams::quick()),
    ]
}

#[test]
fn quick_workloads_are_conformant_under_all_protocols() {
    for kind in ProtocolKind::ALL {
        for spec in specs() {
            let cfg = MachineConfig::splash_baseline(kind);
            let (_, log) = capture_events_spec(cfg, &spec);
            let report = check(&cfg.protocol, &log);
            assert!(
                report.is_clean(),
                "{} under {kind:?} is not conformant:\n{}",
                spec.name(),
                report.render(&log)
            );
            assert!(
                report.sc_fingerprint.is_some(),
                "{} under {kind:?}: no SC witness found",
                spec.name()
            );
            assert!(report.counts.accesses > 0);
            assert!(report.counts.rf_edges > 0);
        }
    }
}

#[test]
fn faulty_transport_runs_are_sc_conformant_with_fault_free_fingerprints() {
    // Replaying a captured trace pins the access interleaving, so a lossy,
    // duplicating, reordering interconnect may only perturb latencies — the
    // recovery transport must keep the memory behaviour (and therefore the
    // SC witness) bit-identical to the fault-free replay.
    let chaos = FaultConfig {
        nack_per_mille: 40,
        delay_per_mille: 30,
        drop_per_mille: 60,
        dup_per_mille: 50,
        reorder_per_mille: 40,
        max_delay_cycles: 120,
        seed: 0xC0FFEE,
        ..FaultConfig::default()
    };
    for kind in ProtocolKind::ALL {
        let spec = Spec::Mp3d(mp3d::Mp3dParams::quick());
        let base_cfg = MachineConfig::splash_baseline(kind);
        let faulty_cfg = base_cfg.with_faults(chaos);

        let (_, trace) = capture_spec(base_cfg, &spec);
        let (base_stats, base_log) = replay_events(base_cfg, &trace, &[]);
        let (faulty_stats, faulty_log) = replay_events(faulty_cfg, &trace, &[]);
        assert!(
            faulty_stats.machine.retransmits > 0,
            "{kind:?}: the fault plan never dropped a message — the test proves nothing"
        );
        let base = check(&base_cfg.protocol, &base_log);
        let faulty = check(&faulty_cfg.protocol, &faulty_log);
        assert!(
            faulty.is_clean(),
            "faulty run under {kind:?} is not conformant:\n{}",
            faulty.render(&faulty_log)
        );
        assert!(faulty.sc_fingerprint.is_some());
        assert_eq!(
            faulty.sc_fingerprint, base.sc_fingerprint,
            "{kind:?}: transport faults changed the SC witness"
        );
        assert_eq!(faulty.counts.events, base.counts.events);
        assert_eq!(
            faulty_stats.dir, base_stats.dir,
            "{kind:?}: transport faults changed directory event counts"
        );
    }
}

#[test]
fn sc_fingerprint_is_deterministic_across_runs() {
    for kind in ProtocolKind::ALL {
        let spec = Spec::Mp3d(mp3d::Mp3dParams::quick());
        let cfg = MachineConfig::splash_baseline(kind);
        let (_, log_a) = capture_events_spec(cfg, &spec);
        let (_, log_b) = capture_events_spec(cfg, &spec);
        let a = check(&cfg.protocol, &log_a);
        let b = check(&cfg.protocol, &log_b);
        assert_eq!(
            a.sc_fingerprint, b.sc_fingerprint,
            "SC witness fingerprint must be bit-identical across runs ({kind:?})"
        );
        assert_eq!(a.counts.events, b.counts.events);
    }
}
