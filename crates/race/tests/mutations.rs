//! Mutation coverage at full engine scale: each seeded [`RuleMutation`] is
//! installed into a real simulation, a small targeted program is run through
//! the complete machine (caches, directory, network timing), and the
//! analyzer must convict the captured event log — with a printable witness.
//!
//! These are the teeth of the analyzer. The `clean` suite proves it stays
//! quiet on correct runs; this suite proves each class of seeded bug is
//! loud, deep inside a real run rather than in a two-transition toy.
//!
//! Trigger programs are sequenced with spin flags on their own cache blocks
//! and use conflict addresses (same L1/L2 set, direct-mapped) to force
//! evictions where a trigger needs the contended block out of a cache.
//! The stale sharer left behind by `drop-invalidations` only ever *reads*
//! the contended block afterwards — an upgrade from a stale copy would trip
//! the engine's own `debug_assert` before the analyzer got a say.

use ccsim_engine::{EventLog, InvariantMode, Proc, SimBuilder};
use ccsim_race::{check, RaceReport, ViolationKind};
use ccsim_types::{Addr, MachineConfig, ProtocolKind, RuleMutation};

const SPIN_LIMIT: u32 = 100_000;

fn spin_until(p: &Proc, addr: Addr, want: u64) {
    for _ in 0..SPIN_LIMIT {
        if p.load(addr) == want {
            return;
        }
    }
    panic!("spin on {addr} never observed {want}");
}

/// Run a trigger program under `kind` with `mutation` installed and return
/// the analyzer's report plus the log it judged.
fn run_mutated(
    kind: ProtocolKind,
    mutation: RuleMutation,
    build: impl Fn(&mut SimBuilder, Addr, Addr, Addr),
) -> (RaceReport, EventLog) {
    let mut cfg = MachineConfig::splash_baseline(kind);
    cfg.protocol = cfg.protocol.with_rule_mutation(mutation);
    let mut b = SimBuilder::new(cfg);
    // The analyzer is the system under test here; the engine's own runtime
    // invariant checker must not abort the run first.
    b.invariants(InvariantMode::Off);
    b.capture_events();
    let blk = cfg.l2.block_bytes;
    let a = b.alloc().alloc_padded(8, blk);
    let f1 = b.alloc().alloc_padded(8, blk);
    let f2 = b.alloc().alloc_padded(8, blk);
    b.init(a, 0);
    b.init(f1, 0);
    b.init(f2, 0);
    build(&mut b, a, f1, f2);
    let mut done = b.run_full();
    let log = done.take_event_log().expect("event capture was enabled");
    let report = check(&cfg.protocol, &log);
    (report, log)
}

/// Every conviction must come with a usable witness: non-empty event list,
/// rendered with real event text.
fn assert_convicted(which: RuleMutation, report: &RaceReport, log: &EventLog, kind: ViolationKind) {
    assert!(
        !report.is_clean(),
        "{}: mutated run passed as conformant",
        which.label()
    );
    let v = report
        .violations
        .iter()
        .find(|v| v.kind == kind)
        .unwrap_or_else(|| {
            panic!(
                "{}: expected a {kind:?} conviction, got:\n{}",
                which.label(),
                report.render(log)
            )
        });
    assert!(
        !v.witness.is_empty(),
        "{}: conviction has no witness events",
        which.label()
    );
    let rendered = report.render(log);
    assert!(
        rendered.contains('#'),
        "{}: rendered report names no witness events:\n{rendered}",
        which.label()
    );
    // The witness must reference real events (printable, in range).
    for &w in &v.witness {
        assert!(
            (w as usize) < log.events().len(),
            "{}: witness event #{w} out of range",
            which.label()
        );
    }
    println!("--- {} ---\n{rendered}", which.label());
}

/// The L2 is direct-mapped: one load at `a + k * l2_size` lands in the same
/// set and evicts `a` (and, by inclusion, the L1 copy).
fn evict_via_conflict(p: &Proc, a: Addr, k: u64) {
    let _ = p.load(Addr(a.0 + k * 64 * 1024));
}

/// `drop-invalidations`: P1's ownership acquisition leaves P0's shared copy
/// alive. The shadow replay flags the missing invalidation at the write,
/// SWMR when the exclusive fill lands next to the survivor, and a stale hit
/// when P0 reads its poisoned copy again.
#[test]
fn drop_invalidations_is_convicted_with_witness() {
    let (report, log) = run_mutated(
        ProtocolKind::Baseline,
        RuleMutation::DropInvalidations,
        |b, a, f1, f2| {
            b.spawn(move |p| {
                let _ = p.load(a); // become a sharer — and stay read-only on `a`
                p.store(f1, 1);
                spin_until(&p, f2, 1);
                let _ = p.load(a); // stale hit on the surviving copy
            });
            b.spawn(move |p| {
                spin_until(&p, f1, 1);
                p.store(a, 99); // must invalidate P0 — the mutation drops it
                p.store(f2, 1);
            });
        },
    );
    assert_convicted(
        RuleMutation::DropInvalidations,
        &report,
        &log,
        ViolationKind::MissingInval,
    );
    let kinds: Vec<_> = report.violations.iter().map(|v| v.kind).collect();
    assert!(
        kinds.contains(&ViolationKind::StaleHit),
        "stale survivor was read but not flagged: {kinds:?}"
    );
}

/// `drop-notls`: a forwarded read reaches an owner whose exclusive grant
/// was never written; the spec demands a NotLS notification, the mutant
/// stays silent. Caught by the NotLS law (which needs only the tracked
/// copies, not the shadow directory).
#[test]
fn drop_notls_is_convicted_with_witness() {
    let (report, log) = run_mutated(ProtocolKind::Ls, RuleMutation::DropNotLs, |b, a, f1, f2| {
        b.spawn(move |p| {
            // Tag the block with a paired read→write, then push it out
            // so the next reader gets a cold exclusive grant.
            let _ = p.load(a);
            p.store(a, 1);
            evict_via_conflict(&p, a, 1);
            p.store(f1, 1);
            spin_until(&p, f2, 1);
            // Forwarded read of P1's unwritten exclusive copy: the
            // owner must say NotLS here.
            let _ = p.load(a);
        });
        b.spawn(move |p| {
            spin_until(&p, f1, 1);
            let _ = p.load(a); // cold read of a tagged block: exclusive, never written
            p.store(f2, 1);
        });
    });
    assert_convicted(
        RuleMutation::DropNotLs,
        &report,
        &log,
        ViolationKind::NotLsMismatch,
    );
}

/// `skip-ls-detag`: an unpaired foreign write must clear the LS-bit; the
/// mutant keeps it, so a later cold read is granted Exclusive where the
/// spec grants Shared.
#[test]
fn skip_ls_detag_is_convicted_with_witness() {
    let (report, log) = run_mutated(
        ProtocolKind::Ls,
        RuleMutation::SkipLsDetag,
        |b, a, f1, f2| {
            b.spawn(move |p| {
                let _ = p.load(a);
                p.store(a, 1); // paired: block becomes tagged
                p.store(f1, 1);
            });
            b.spawn(move |p| {
                spin_until(&p, f1, 1);
                p.store(a, 2); // unpaired: spec de-tags, mutant keeps the tag
                evict_via_conflict(&p, a, 1); // writeback; LS-bit survives at home
                p.store(f2, 1);
            });
            b.spawn(move |p| {
                spin_until(&p, f2, 1);
                let _ = p.load(a); // cold read: spec Shared vs mutant Exclusive
            });
        },
    );
    assert_convicted(
        RuleMutation::SkipLsDetag,
        &report,
        &log,
        ViolationKind::GrantMismatch,
    );
}

/// `keep-lr-on-ownership`: the LR field must be consumed by an ownership
/// acquisition. The mutant keeps it, so a later *unpaired* write by the
/// same node looks paired, re-tags the block, and a cold read downstream
/// is granted Exclusive where the spec grants Shared.
#[test]
fn keep_lr_on_ownership_is_convicted_with_witness() {
    let (report, log) = run_mutated(
        ProtocolKind::Ls,
        RuleMutation::KeepLrOnOwnership,
        |b, a, f1, _f2| {
            b.spawn(move |p| {
                let _ = p.load(a);
                p.store(a, 1); // spec: LR consumed here; mutant keeps LR = P0
                evict_via_conflict(&p, a, 1);
                p.store(a, 2); // unpaired: spec de-tags; mutant sees stale LR, keeps the tag
                evict_via_conflict(&p, a, 2);
                p.store(f1, 1);
            });
            b.spawn(move |p| {
                spin_until(&p, f1, 1);
                let _ = p.load(a); // cold read: spec Shared vs mutant Exclusive
            });
        },
    );
    assert_convicted(
        RuleMutation::KeepLrOnOwnership,
        &report,
        &log,
        ViolationKind::GrantMismatch,
    );
}

/// The four mutations are exactly the seeded set — if the enum grows, this
/// suite must grow with it.
#[test]
fn mutation_suite_is_exhaustive() {
    assert_eq!(RuleMutation::ALL.len(), 4);
}
