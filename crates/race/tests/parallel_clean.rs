//! Race/model cross-check for the parallel replay sweep: event logs
//! produced with `CCSIM_SIM_THREADS > 1` must stay SC-conformant, and the
//! SC witness fingerprint must be bit-identical to the serial lane's —
//! the analyzer is the independent referee for the engine's determinism
//! claim.

use ccsim_engine::replay_events_with_threads;
use ccsim_race::check;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{capture_spec, cholesky, mp3d, Spec};

#[test]
fn parallel_replay_logs_are_conformant() {
    for kind in ProtocolKind::ALL {
        for spec in [
            Spec::Mp3d(mp3d::Mp3dParams::quick()),
            Spec::Cholesky(cholesky::CholeskyParams::quick()),
        ] {
            let cfg = MachineConfig::splash_baseline(kind);
            let (_, trace) = capture_spec(cfg, &spec);
            let (_, log) = replay_events_with_threads(cfg, &trace, &[], 4);
            let report = check(&cfg.protocol, &log);
            assert!(
                report.is_clean(),
                "{} under {kind:?} via 4-thread replay is not conformant:\n{}",
                spec.name(),
                report.render(&log)
            );
            assert!(report.sc_fingerprint.is_some());
        }
    }
}

#[test]
fn sc_fingerprint_is_thread_count_invariant() {
    let spec = Spec::Mp3d(mp3d::Mp3dParams::quick());
    for kind in ProtocolKind::ALL {
        let cfg = MachineConfig::splash_baseline(kind);
        let (_, trace) = capture_spec(cfg, &spec);
        let (_, serial_log) = replay_events_with_threads(cfg, &trace, &[], 1);
        let serial = check(&cfg.protocol, &serial_log);
        for threads in [2, 4, 8] {
            let (_, log) = replay_events_with_threads(cfg, &trace, &[], threads);
            let report = check(&cfg.protocol, &log);
            assert_eq!(
                report.sc_fingerprint, serial.sc_fingerprint,
                "{kind:?}: SC fingerprint drifted at {threads} threads"
            );
            assert_eq!(report.counts.events, serial.counts.events);
        }
    }
}
