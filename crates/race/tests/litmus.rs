//! Classic litmus shapes, adapted to the per-location-SC setting of the
//! paper's machine model.
//!
//! Two halves:
//!
//! * **Engine runs** — MP, SB and IRIW as real programs through the full
//!   simulator under every protocol variant. The engine serializes each
//!   access at the directory, so the forbidden outcomes cannot occur and
//!   the analyzer must report a clean log with an SC witness.
//! * **Hand-crafted logs** — the forbidden outcome of each shape written
//!   down directly as an event log. These prove the detector side: MP and
//!   SB stale reads surface as coherence-order violations (`CoWR`) *and*
//!   close a cycle; IRIW is the interesting one — every per-location axiom
//!   holds, only the global acyclicity pass can reject it.

use ccsim_engine::{CoherenceEvent, EventKind, EventLog, SimBuilder, WriteHow};
use ccsim_race::{check, RaceReport, ViolationKind};
use ccsim_types::{Addr, MachineConfig, NodeId, ProtocolConfig, ProtocolKind};

use ccsim_core::rules::CopyState;
use ccsim_core::GrantKind;

// ---------------------------------------------------------------------------
// Engine half: the real machine cannot produce the forbidden outcomes.
// ---------------------------------------------------------------------------

const SPIN_LIMIT: u32 = 100_000;

fn run_clean(kind: ProtocolKind, build: impl Fn(&mut SimBuilder, Addr, Addr)) -> RaceReport {
    let cfg = MachineConfig::splash_baseline(kind);
    let mut b = SimBuilder::new(cfg);
    b.capture_events();
    let x = b.alloc().alloc_padded(8, cfg.l2.block_bytes);
    let y = b.alloc().alloc_padded(8, cfg.l2.block_bytes);
    b.init(x, 0);
    b.init(y, 0);
    build(&mut b, x, y);
    let mut done = b.run_full();
    let log = done.take_event_log().expect("event capture was enabled");
    let report = check(&cfg.protocol, &log);
    assert!(
        report.is_clean(),
        "{kind:?}: engine litmus run is not conformant:\n{}",
        report.render(&log)
    );
    assert!(report.sc_fingerprint.is_some(), "{kind:?}: no SC witness");
    report
}

fn spin_until(p: &ccsim_engine::Proc, addr: Addr, want: u64) -> u64 {
    for _ in 0..SPIN_LIMIT {
        let v = p.load(addr);
        if v == want {
            return v;
        }
    }
    panic!("spin on {addr} never observed {want}");
}

/// Message passing: P0 publishes data then flag; P1 sees the flag and must
/// see the data.
#[test]
fn mp_engine_runs_are_conformant() {
    for kind in ProtocolKind::ALL {
        run_clean(kind, |b, data, flag| {
            b.spawn(move |p| {
                p.store(data, 42);
                p.store(flag, 1);
            });
            b.spawn(move |p| {
                spin_until(&p, flag, 1);
                assert_eq!(p.load(data), 42, "MP: flag set but data not visible");
            });
        });
    }
}

/// Store buffering: each processor writes its own word then reads the
/// other's. The coherent engine forbids both reads returning 0.
#[test]
fn sb_engine_runs_are_conformant() {
    for kind in ProtocolKind::ALL {
        let report = run_clean(kind, |b, x, y| {
            b.spawn(move |p| {
                p.store(x, 1);
                let _ = p.load(y);
            });
            b.spawn(move |p| {
                p.store(y, 1);
                let _ = p.load(x);
            });
        });
        assert!(report.counts.writes >= 2);
    }
}

/// Independent reads of independent writes: two observers must agree on the
/// order of two unrelated writes.
#[test]
fn iriw_engine_runs_are_conformant() {
    for kind in ProtocolKind::ALL {
        run_clean(kind, |b, x, y| {
            b.spawn(move |p| p.store(x, 1));
            b.spawn(move |p| p.store(y, 1));
            b.spawn(move |p| {
                spin_until(&p, x, 1);
                let _ = p.load(y);
            });
            b.spawn(move |p| {
                spin_until(&p, y, 1);
                let _ = p.load(x);
            });
        });
    }
}

// ---------------------------------------------------------------------------
// Crafted half: write the forbidden outcome down and watch it get caught.
// ---------------------------------------------------------------------------

const X: Addr = Addr(0x100);
const Y: Addr = Addr(0x140); // different 32-byte block

fn ev(proc_: u16, kind: EventKind) -> CoherenceEvent {
    CoherenceEvent {
        proc: NodeId(proc_),
        kind,
    }
}

fn blk(a: Addr) -> ccsim_types::BlockAddr {
    a.block(32)
}

fn fill(p: u16, a: Addr, s: CopyState) -> CoherenceEvent {
    ev(
        p,
        EventKind::Fill {
            block: blk(a),
            state: s,
        },
    )
}

fn wr(p: u16, a: Addr, v: u64) -> CoherenceEvent {
    ev(
        p,
        EventKind::Write {
            addr: a,
            value: v,
            how: WriteHow::Global,
            ls: false,
            mig: false,
        },
    )
}

fn rd_miss(p: u16, a: Addr, v: u64) -> CoherenceEvent {
    ev(
        p,
        EventKind::Read {
            addr: a,
            value: v,
            hit: false,
            grant: GrantKind::Shared,
            notls: false,
        },
    )
}

fn downgrade(owner: u16, a: Addr, by: u16) -> CoherenceEvent {
    ev(
        owner,
        EventKind::Downgrade {
            block: blk(a),
            by: NodeId(by),
        },
    )
}

fn kinds(report: &RaceReport) -> Vec<ViolationKind> {
    report.violations.iter().map(|v| v.kind).collect()
}

fn check_crafted(nodes: u16, events: Vec<CoherenceEvent>) -> RaceReport {
    let log = EventLog::from_events(nodes, 32, events).expect("valid crafted log");
    let cfg = ProtocolConfig::new(ProtocolKind::Baseline);
    let report = check(&cfg, &log);
    assert!(
        report.sc_fingerprint.is_none(),
        "forbidden outcome still got an SC witness:\n{}",
        report.render(&log)
    );
    report
}

/// MP forbidden outcome: P1 sees flag = 1 but data = 0.
#[test]
fn mp_forbidden_outcome_is_rejected() {
    let report = check_crafted(
        2,
        vec![
            ev(0, EventKind::Init { addr: X, value: 0 }),
            ev(0, EventKind::Init { addr: Y, value: 0 }),
            // P0: data = 1, flag = 1.
            fill(0, X, CopyState::Modified),
            wr(0, X, 1),
            fill(0, Y, CopyState::Modified),
            wr(0, Y, 1),
            // P1: reads flag = 1 ...
            downgrade(0, Y, 1),
            fill(1, Y, CopyState::Shared),
            rd_miss(1, Y, 1),
            // ... then data = 0 (stale).
            downgrade(0, X, 1),
            fill(1, X, CopyState::Shared),
            rd_miss(1, X, 0),
        ],
    );
    let ks = kinds(&report);
    assert!(ks.contains(&ViolationKind::CoWr), "expected CoWR: {ks:?}");
    assert!(
        ks.contains(&ViolationKind::ScCycle),
        "expected cycle: {ks:?}"
    );
}

/// SB forbidden outcome: both processors read 0.
#[test]
fn sb_forbidden_outcome_is_rejected() {
    let report = check_crafted(
        2,
        vec![
            ev(0, EventKind::Init { addr: X, value: 0 }),
            ev(0, EventKind::Init { addr: Y, value: 0 }),
            // P0: x = 1, then reads y = 0 (fine at this point in the order).
            fill(0, X, CopyState::Modified),
            wr(0, X, 1),
            fill(0, Y, CopyState::Shared),
            rd_miss(0, Y, 0),
            // P1: y = 1 (invalidating P0's copy), then reads x = 0 (stale).
            ev(
                0,
                EventKind::Inval {
                    block: blk(Y),
                    by: NodeId(1),
                },
            ),
            fill(1, Y, CopyState::Modified),
            wr(1, Y, 1),
            downgrade(0, X, 1),
            fill(1, X, CopyState::Shared),
            rd_miss(1, X, 0),
        ],
    );
    let ks = kinds(&report);
    assert!(ks.contains(&ViolationKind::CoWr), "expected CoWR: {ks:?}");
    assert!(
        ks.contains(&ViolationKind::ScCycle),
        "expected cycle: {ks:?}"
    );
}

/// IRIW forbidden outcome: P2 sees x before y, P3 sees y before x. Every
/// per-location axiom holds — only the global acyclicity pass rejects it.
#[test]
fn iriw_forbidden_outcome_needs_the_global_pass() {
    let report = check_crafted(
        4,
        vec![
            ev(0, EventKind::Init { addr: X, value: 0 }),
            ev(0, EventKind::Init { addr: Y, value: 0 }),
            fill(0, X, CopyState::Modified),
            wr(0, X, 1),
            fill(1, Y, CopyState::Modified),
            wr(1, Y, 1),
            // P2: x = 1 then y = 0. The stale read of y deliberately skips
            // the owner downgrade: a downgrade at P1 would serialize after
            // P1's write in P1's program order and the ack edge would hand
            // the read a per-location CoWR conviction. Without it the log
            // is exactly IRIW — locally consistent everywhere.
            downgrade(0, X, 2),
            fill(2, X, CopyState::Shared),
            rd_miss(2, X, 1),
            fill(2, Y, CopyState::Shared),
            rd_miss(2, Y, 0),
            // P3: y = 1 then x = 0.
            fill(3, Y, CopyState::Shared),
            rd_miss(3, Y, 1),
            fill(3, X, CopyState::Shared),
            rd_miss(3, X, 0),
        ],
    );
    let ks = kinds(&report);
    assert!(
        ks.contains(&ViolationKind::ScCycle),
        "expected cycle: {ks:?}"
    );
    // The distinguishing property of IRIW: no per-location *ordering* axiom
    // fires — the happens-before pass convicts it only via global
    // acyclicity. (The shadow replay may separately grumble about the
    // physically impossible copy states; that is coherence, not ordering.)
    assert!(
        !ks.contains(&ViolationKind::CoWr) && !ks.contains(&ViolationKind::CoRr),
        "IRIW must not be caught by per-location checks alone: {ks:?}"
    );
    // The witness is a genuine cycle through both observers.
    let cyc = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::ScCycle)
        .expect("cycle violation present");
    assert!(
        cyc.witness.len() >= 4,
        "degenerate witness: {:?}",
        cyc.witness
    );
}
