//! Shadow replay of the *unmutated* protocol rules over the event log.
//!
//! Works transaction by transaction (every maximal run of side-effect
//! events plus the access event that follows — see the grouping contract in
//! `ccsim_engine::events`): predict what the clean [`ccsim_core::rules`]
//! say must happen, compare against what the engine logged, then apply the
//! observed effects. Divergence is reported and the shadow directory is
//! re-seated on the observed copy set, so one seeded bug does not cascade
//! into noise for the rest of the log.
//!
//! Independently of the rules replay, the module tracks every cached copy's
//! lifetime (fill → downgrade/invalidate/evict) and checks
//!
//! * **SWMR** — an exclusive copy never coexists with any other copy;
//! * **hit legality** — cache hits require a live copy of sufficient
//!   state (silent stores need exclusive-clean, dirty hits need Modified);
//! * **staleness** — a copy that survives a foreign write is poisoned, and
//!   any later hit on it is a stale-hit violation;
//! * **the paper's §2 definition** — re-derived from scratch (last global
//!   accessor per block): a write closes a load-store sequence iff the
//!   previous global access to the block was a read by the same node, and
//!   the sequence is migratory iff the previous completed sequence came
//!   from another node. The oracle verdicts recorded in the log must agree.
//!   Because the log order is the directory serialization order, "no
//!   hb-intervening foreign access between the load and the store" is
//!   exactly "no intervening foreign global access in the log";
//! * **NotLS legality** — a `NotLS` report must come from an owner whose
//!   exclusive copy was never written, and a forwarded read from such an
//!   owner must carry the `NotLS` flag (this check needs only the tracked
//!   copies, so it survives shadow divergence — it is what catches the
//!   `drop-notls` mutation even deep into a run).

use ccsim_core::rules::{self, CopyState};
use ccsim_core::{
    DirEntry, DirStats, GrantKind, HomeState, OwnerAction, ReadStep, SharerSet, WriteStep,
};
use ccsim_engine::{CoherenceEvent, EventKind, EventLog, WriteHow};
use ccsim_types::{BlockAddr, NodeId, ProtocolConfig};
use ccsim_util::FxHashMap;

use crate::{RaceReport, ViolationKind};

/// One tracked cached copy.
#[derive(Clone, Copy)]
struct Copy {
    state: CopyState,
    /// Event that installed it (witness anchor).
    fill: u32,
    /// Set to the foreign write that this copy wrongly survived.
    stale: Option<u32>,
}

struct Block {
    copies: Vec<Option<Copy>>,
    entry: DirEntry,
    /// §2 mirror: last global access to the block (node, was-read, event).
    last: Option<(NodeId, bool, u32)>,
    /// §2 mirror: node of the previous completed load-store sequence.
    prev_seq: Option<NodeId>,
    /// Previous access event on this block (witness anchor).
    last_access: Option<u32>,
}

impl Block {
    fn new(cfg: &ProtocolConfig, nodes: usize) -> Self {
        Block {
            copies: vec![None; nodes],
            entry: rules::fresh_entry(cfg),
            last: None,
            prev_seq: None,
            last_access: None,
        }
    }

    fn exclusive_holder(&self) -> Option<(usize, Copy)> {
        self.copies.iter().enumerate().find_map(|(q, c)| match c {
            Some(c) if c.state != CopyState::Shared => Some((q, *c)),
            _ => None,
        })
    }
}

pub(crate) fn analyze(protocol: &ProtocolConfig, log: &EventLog, report: &mut RaceReport) {
    // The shadow replays the *spec*: same protocol and heuristics, but any
    // seeded rule mutation stripped.
    let mut cfg = ProtocolConfig::new(protocol.kind);
    cfg.ls = protocol.ls;
    cfg.ad = protocol.ad;

    let nodes = (log.nodes() as usize).max(1);
    let bb = log.block_bytes();
    let events = log.events();
    let mut scratch = DirStats::default();
    let mut blocks: FxHashMap<BlockAddr, Block> = FxHashMap::default();
    let mut group: Vec<u32> = Vec::new();

    for (id, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Init { .. } => {}
            kind if !kind.is_access() => group.push(id as u32),
            _ => {
                check_group(
                    &cfg,
                    &mut scratch,
                    &mut blocks,
                    nodes,
                    bb,
                    events,
                    &group,
                    id as u32,
                    report,
                );
                group.clear();
            }
        }
    }
    report.counts.blocks = blocks.len() as u64;
}

/// Access-block side effects of one transaction group.
#[derive(Default)]
struct GroupFx {
    invals: Vec<(NodeId, u32)>,
    downgrades: Vec<(NodeId, u32)>,
    notls: Vec<(NodeId, u32)>,
    fills: Vec<(NodeId, CopyState, u32)>,
}

#[allow(clippy::too_many_arguments)]
fn check_group(
    cfg: &ProtocolConfig,
    scratch: &mut DirStats,
    blocks: &mut FxHashMap<BlockAddr, Block>,
    nodes: usize,
    bb: u64,
    events: &[CoherenceEvent],
    group: &[u32],
    aid: u32,
    report: &mut RaceReport,
) {
    let access = &events[aid as usize];
    let p = access.proc;
    let addr = match access.kind {
        EventKind::Read { addr, .. }
        | EventKind::ReadExcl { addr, .. }
        | EventKind::Write { addr, .. } => addr,
        _ => return,
    };
    let ablock = addr.block(bb);
    let key = ablock.addr().0;

    // Evictions are replacements of *other* blocks (the fill victim);
    // apply them first so they don't entangle with the access block's
    // borrow. Replacement is a spec transition too.
    let mut fx = GroupFx::default();
    for &g in group {
        let e = &events[g as usize];
        match e.kind {
            EventKind::Evict { block } => {
                let bt = blocks
                    .entry(block)
                    .or_insert_with(|| Block::new(cfg, nodes));
                bt.copies[e.proc.idx()] = None;
                rules::replacement(cfg, scratch, &mut bt.entry, e.proc);
            }
            EventKind::Inval { block, .. } if block == ablock => {
                fx.invals.push((e.proc, g));
            }
            EventKind::Downgrade { block, .. } if block == ablock => {
                fx.downgrades.push((e.proc, g));
            }
            EventKind::NotLs { block } if block == ablock => {
                fx.notls.push((e.proc, g));
            }
            EventKind::Fill { block, state } if block == ablock => {
                fx.fills.push((e.proc, state, g));
            }
            _ => {}
        }
    }

    let bt = blocks
        .entry(ablock)
        .or_insert_with(|| Block::new(cfg, nodes));
    let pre = bt.copies.clone();
    let mut diverged = false;
    let wit2 = |first: Option<u32>| -> Vec<u32> {
        match first {
            Some(f) => vec![f, aid],
            None => vec![aid],
        }
    };

    // --- pre-state legality + spec prediction ---------------------------
    match access.kind {
        EventKind::Read { hit: true, .. } => match pre[p.idx()] {
            None => {
                diverged = true;
                report.push(
                    ViolationKind::HitWithoutCopy,
                    key,
                    format!("{access} hit, but no tracked copy of {ablock} is live"),
                    wit2(bt.last_access),
                );
            }
            Some(c) => {
                if let Some(poison) = c.stale {
                    report.push(
                        ViolationKind::StaleHit,
                        key,
                        format!("{access} hit a copy of {ablock} that survived a foreign write"),
                        vec![c.fill, poison, aid],
                    );
                }
            }
        },
        EventKind::ReadExcl { hit: true, .. } => match pre[p.idx()] {
            Some(c) if c.state != CopyState::Shared => {
                if let Some(poison) = c.stale {
                    report.push(
                        ViolationKind::StaleHit,
                        key,
                        format!("{access} hit a copy of {ablock} that survived a foreign write"),
                        vec![c.fill, poison, aid],
                    );
                }
            }
            _ => {
                diverged = true;
                report.push(
                    ViolationKind::HitWithoutCopy,
                    key,
                    format!("{access} hit, but {ablock} is not held exclusively"),
                    wit2(bt.last_access),
                );
            }
        },
        EventKind::Write {
            how: WriteHow::DirtyHit,
            ..
        } => match pre[p.idx()] {
            Some(c) if c.state == CopyState::Modified => {
                if let Some(poison) = c.stale {
                    report.push(
                        ViolationKind::StaleHit,
                        key,
                        format!("{access} hit a copy of {ablock} that survived a foreign write"),
                        vec![c.fill, poison, aid],
                    );
                }
            }
            _ => {
                diverged = true;
                report.push(
                    ViolationKind::HitWithoutCopy,
                    key,
                    format!("{access} dirty-hit, but {ablock} is not Modified here"),
                    wit2(bt.last_access),
                );
            }
        },
        EventKind::Write {
            how: WriteHow::Silent,
            ls,
            mig,
            ..
        } => {
            match pre[p.idx()] {
                Some(c) if matches!(c.state, CopyState::Excl | CopyState::ExclDirty) => {
                    if let Some(poison) = c.stale {
                        report.push(
                            ViolationKind::StaleHit,
                            key,
                            format!(
                                "{access} silently stored to a copy of {ablock} that \
                                 survived a foreign write"
                            ),
                            vec![c.fill, poison, aid],
                        );
                    }
                }
                _ => {
                    diverged = true;
                    report.push(
                        ViolationKind::SilentStore,
                        key,
                        format!(
                            "{access} completed silently, but {ablock} is not held \
                             exclusive-clean here"
                        ),
                        wit2(bt.last_access),
                    );
                }
            }
            mirror_write(bt, p, aid, ls, mig, key, report);
        }
        EventKind::Read {
            hit: false,
            grant,
            notls,
            ..
        } => {
            if grant == GrantKind::Exclusive {
                report.counts.excl_grants_checked += 1;
            }
            predict_read(
                cfg,
                scratch,
                bt,
                &pre,
                p,
                aid,
                grant,
                notls,
                &fx,
                key,
                report,
                &mut diverged,
            );
            // Protocol law, independent of the shadow directory: a
            // forwarded read from an owner that never wrote its exclusive
            // grant must report NotLS (under every protocol kind).
            if let Some((q, c)) = pre.iter().enumerate().find_map(|(q, c)| match c {
                Some(c) if c.state != CopyState::Shared && q != p.idx() => Some((q, *c)),
                _ => None,
            }) {
                let owner = NodeId(q as u16);
                let acted = fx.invals.iter().any(|&(v, _)| v == owner)
                    || fx.downgrades.iter().any(|&(v, _)| v == owner);
                if acted {
                    report.counts.notls_checked += 1;
                    let expect = matches!(c.state, CopyState::Excl | CopyState::ExclDirty);
                    if notls != expect {
                        diverged = true;
                        report.push(
                            ViolationKind::NotLsMismatch,
                            key,
                            format!(
                                "{access}: owner {owner}'s copy was {}written, so NotLS \
                                 must be {expect}, but the engine recorded {notls}",
                                if expect { "never " } else { "" }
                            ),
                            vec![c.fill, aid],
                        );
                    }
                }
            }
            bt.last = Some((p, true, aid));
        }
        EventKind::ReadExcl { hit: false, .. } => {
            report.counts.excl_grants_checked += 1;
            predict_acquire(
                cfg,
                scratch,
                bt,
                &pre,
                p,
                aid,
                &fx,
                key,
                report,
                &mut diverged,
            );
            // The oracle records a read-exclusive as the *read* of a
            // load-store sequence (the later silent store is the write).
            bt.last = Some((p, true, aid));
        }
        EventKind::Write {
            how: WriteHow::Global,
            ls,
            mig,
            ..
        } => {
            predict_acquire(
                cfg,
                scratch,
                bt,
                &pre,
                p,
                aid,
                &fx,
                key,
                report,
                &mut diverged,
            );
            mirror_write(bt, p, aid, ls, mig, key, report);
        }
        _ => {}
    }

    // NotLS legality: only an owner holding an unwritten exclusive copy may
    // report NotLS.
    for &(q, g) in &fx.notls {
        let ok = matches!(
            pre[q.idx()],
            Some(c) if matches!(c.state, CopyState::Excl | CopyState::ExclDirty)
        );
        if !ok {
            diverged = true;
            report.push(
                ViolationKind::SpuriousNotLs,
                key,
                format!("{q} reported NotLS for {ablock} without an unwritten exclusive copy"),
                vec![g, aid],
            );
        }
    }

    // --- apply the observed effects in log order ------------------------
    for &g in group {
        let e = &events[g as usize];
        match e.kind {
            EventKind::Fill { block, state } if block == ablock => {
                let q = e.proc.idx();
                if state != CopyState::Shared {
                    // SWMR: an exclusive install must stand alone; any
                    // survivor is now provably stale.
                    for (r, c) in bt.copies.iter_mut().enumerate() {
                        if r == q {
                            continue;
                        }
                        if let Some(c) = c {
                            diverged = true;
                            report.push(
                                ViolationKind::Swmr,
                                key,
                                format!(
                                    "P{r}'s copy of {ablock} coexists with {}'s exclusive \
                                     install",
                                    e.proc
                                ),
                                vec![c.fill, g],
                            );
                            if c.stale.is_none() {
                                c.stale = Some(g);
                            }
                        }
                    }
                } else if let Some((r, c)) = bt.exclusive_holder() {
                    if r != q {
                        diverged = true;
                        report.push(
                            ViolationKind::Swmr,
                            key,
                            format!(
                                "{}'s shared install of {ablock} coexists with P{r}'s \
                                 exclusive copy",
                                e.proc
                            ),
                            vec![c.fill, g],
                        );
                    }
                }
                bt.copies[q] = Some(Copy {
                    state,
                    fill: g,
                    stale: None,
                });
            }
            EventKind::Inval { block, .. } if block == ablock => {
                bt.copies[e.proc.idx()] = None;
            }
            EventKind::Downgrade { block, .. } if block == ablock => {
                if let Some(c) = &mut bt.copies[e.proc.idx()] {
                    c.state = CopyState::Shared;
                }
            }
            _ => {}
        }
    }

    // Access effect + staleness poisoning after writes.
    if let EventKind::Write { how, .. } = access.kind {
        if how == WriteHow::Silent {
            if let Some(c) = &mut bt.copies[p.idx()] {
                c.state = CopyState::Modified;
            }
        }
        for (r, c) in bt.copies.iter_mut().enumerate() {
            if r == p.idx() {
                continue;
            }
            if let Some(c) = c {
                if c.stale.is_none() {
                    diverged = true;
                    report.push(
                        ViolationKind::Swmr,
                        key,
                        format!("P{r}'s copy of {ablock} survived {p}'s write"),
                        vec![c.fill, aid],
                    );
                    c.stale = Some(aid);
                }
            }
        }
    }

    // Re-seat the shadow directory on the observed copy set after a
    // divergence, keeping the spec's tag/LR/vote heuristics.
    if diverged {
        match bt.exclusive_holder() {
            Some((q, _)) => {
                let owner = NodeId(q as u16);
                bt.entry.state = HomeState::Owned(owner);
                bt.entry.sharers = SharerSet::single(owner);
            }
            None => {
                let mut s = SharerSet::EMPTY;
                for (q, c) in bt.copies.iter().enumerate() {
                    if c.is_some() {
                        s.insert(NodeId(q as u16));
                    }
                }
                bt.entry.state = if s.is_empty() {
                    HomeState::Uncached
                } else {
                    HomeState::Shared
                };
                bt.entry.sharers = s;
            }
        }
    }
    bt.last_access = Some(aid);
}

/// §2 mirror: check the oracle verdicts carried on a (global or silent)
/// write, then advance the mirror.
fn mirror_write(
    bt: &mut Block,
    p: NodeId,
    aid: u32,
    ls: bool,
    mig: bool,
    key: u64,
    report: &mut RaceReport,
) {
    let expect_ls = matches!(bt.last, Some((q, true, _)) if q == p);
    let expect_mig = expect_ls && matches!(bt.prev_seq, Some(q) if q != p);
    report.counts.ls_writes_checked += 1;
    if ls != expect_ls || mig != expect_mig {
        let witness = match bt.last {
            Some((_, _, e)) => vec![e, aid],
            None => vec![aid],
        };
        report.push(
            ViolationKind::LsDefinition,
            key,
            format!(
                "write by {p} recorded (ls={ls}, mig={mig}) but the §2 definition \
                 gives (ls={expect_ls}, mig={expect_mig})"
            ),
            witness,
        );
    }
    if expect_ls {
        bt.prev_seq = Some(p);
    }
    bt.last = Some((p, false, aid));
}

/// Spec prediction for a global read.
#[allow(clippy::too_many_arguments)]
fn predict_read(
    cfg: &ProtocolConfig,
    scratch: &mut DirStats,
    bt: &mut Block,
    pre: &[Option<Copy>],
    p: NodeId,
    aid: u32,
    grant: GrantKind,
    notls: bool,
    fx: &GroupFx,
    key: u64,
    report: &mut RaceReport,
    diverged: &mut bool,
) {
    match rules::read(cfg, scratch, &mut bt.entry, p) {
        ReadStep::Memory { grant: g, .. } => {
            if g != grant {
                *diverged = true;
                report.push(
                    ViolationKind::GrantMismatch,
                    key,
                    format!(
                        "read miss by {p}: spec grants {g:?} from memory, engine \
                         granted {grant:?}"
                    ),
                    match bt.last_access {
                        Some(f) => vec![f, aid],
                        None => vec![aid],
                    },
                );
            }
            if let Some(&(_, g0)) = fx.invals.first().or_else(|| fx.downgrades.first()) {
                *diverged = true;
                report.push(
                    ViolationKind::OwnerActionMismatch,
                    key,
                    format!("read miss by {p}: owner side effects on a memory-served read"),
                    vec![g0, aid],
                );
            }
            if notls {
                *diverged = true;
                report.push(
                    ViolationKind::NotLsMismatch,
                    key,
                    format!("read miss by {p}: NotLS flag on a memory-served read"),
                    vec![aid],
                );
            }
        }
        ReadStep::Forward { owner } => {
            let rep = pre[owner.idx()].and_then(|c| rules::owner_report(c.state));
            match rep {
                None => {
                    // Shadow thinks `owner` owns the block but no exclusive
                    // copy is tracked: a divergence already reported where
                    // it arose. Skip the comparison, resync below.
                    *diverged = true;
                }
                Some((wrote, dirty)) => {
                    let res =
                        rules::read_forward_result(cfg, scratch, &mut bt.entry, p, wrote, dirty);
                    if res.grant != grant {
                        *diverged = true;
                        report.push(
                            ViolationKind::GrantMismatch,
                            key,
                            format!(
                                "forwarded read by {p}: spec grants {:?}, engine \
                                 granted {grant:?}",
                                res.grant
                            ),
                            match bt.last_access {
                                Some(f) => vec![f, aid],
                                None => vec![aid],
                            },
                        );
                    }
                    if res.notls != notls {
                        *diverged = true;
                        report.push(
                            ViolationKind::NotLsMismatch,
                            key,
                            format!(
                                "forwarded read by {p}: spec says NotLS={}, engine \
                                 recorded {notls}",
                                res.notls
                            ),
                            match pre[owner.idx()] {
                                Some(c) => vec![c.fill, aid],
                                None => vec![aid],
                            },
                        );
                    }
                    let got_down = fx.downgrades.iter().any(|&(q, _)| q == owner);
                    let got_inv = fx.invals.iter().any(|&(q, _)| q == owner);
                    let ok = match res.owner_action {
                        OwnerAction::Downgrade => got_down,
                        OwnerAction::Invalidate => got_inv,
                    };
                    if !ok {
                        *diverged = true;
                        report.push(
                            ViolationKind::OwnerActionMismatch,
                            key,
                            format!(
                                "forwarded read by {p}: spec demands owner {owner} \
                                 {:?}, the log disagrees",
                                res.owner_action
                            ),
                            match pre[owner.idx()] {
                                Some(c) => vec![c.fill, aid],
                                None => vec![aid],
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Spec prediction for an ownership acquisition (global write or
/// read-exclusive miss).
#[allow(clippy::too_many_arguments)]
fn predict_acquire(
    cfg: &ProtocolConfig,
    scratch: &mut DirStats,
    bt: &mut Block,
    pre: &[Option<Copy>],
    p: NodeId,
    aid: u32,
    fx: &GroupFx,
    key: u64,
    report: &mut RaceReport,
    diverged: &mut bool,
) {
    match rules::write(cfg, scratch, &mut bt.entry, p) {
        WriteStep::Memory { invalidate, .. } => {
            for v in &invalidate {
                if !fx.invals.iter().any(|&(q, _)| q == *v) {
                    *diverged = true;
                    report.push(
                        ViolationKind::MissingInval,
                        key,
                        format!(
                            "acquisition by {p}: spec invalidates {v}, but the log \
                             has no invalidation"
                        ),
                        match pre[v.idx()] {
                            Some(c) => vec![c.fill, aid],
                            None => vec![aid],
                        },
                    );
                }
            }
            for &(q, g) in &fx.invals {
                if !invalidate.contains(&q) {
                    *diverged = true;
                    report.push(
                        ViolationKind::SpuriousInval,
                        key,
                        format!(
                            "acquisition by {p}: engine invalidated {q}, which the \
                             spec does not name"
                        ),
                        vec![g, aid],
                    );
                }
            }
        }
        WriteStep::Forward { owner } => {
            // The machine hands the *dirty* bit to the resolution (an
            // exclusive-dirty copy writes back like a modified one).
            let dirty = matches!(
                pre[owner.idx()].map(|c| c.state),
                Some(CopyState::Modified) | Some(CopyState::ExclDirty)
            );
            let _ = rules::write_forward_result(scratch, &mut bt.entry, p, dirty);
            if !fx.invals.iter().any(|&(q, _)| q == owner) {
                *diverged = true;
                report.push(
                    ViolationKind::MissingInval,
                    key,
                    format!(
                        "acquisition by {p}: spec invalidates owner {owner}, but the \
                         log has no invalidation"
                    ),
                    match pre[owner.idx()] {
                        Some(c) => vec![c.fill, aid],
                        None => vec![aid],
                    },
                );
            }
            for &(q, g) in &fx.invals {
                if q != owner {
                    *diverged = true;
                    report.push(
                        ViolationKind::SpuriousInval,
                        key,
                        format!(
                            "acquisition by {p}: engine invalidated {q}, which the \
                             spec does not name"
                        ),
                        vec![g, aid],
                    );
                }
            }
        }
    }
}
