//! Happens-before race detector and SC-conformance analyzer for `ccsim`
//! coherence event logs (`ccsim race`).
//!
//! Input: the structured [`EventLog`] the engine captures behind
//! `SimBuilder::capture_events` (or `replay_events` for a stored trace).
//! The analyzer makes one deterministic pass in `O(events × nodes)`:
//!
//! 1. [`hb`] builds the happens-before graph (program order, reads-from,
//!    coherence order, from-read, invalidation-acknowledgement edges),
//!    computes per-event vector clocks, checks the per-location SC axioms
//!    (read-value conformance against golden memory, CoWR, CoRR, with the
//!    CoWW/CoRW predicates exposed directly), and extracts a global SC
//!    witness — a topological order of all events, fingerprinted for
//!    determinism checks — or, on failure, a minimal witness cycle.
//! 2. [`shadow`] replays the *unmutated* protocol rules transaction by
//!    transaction next to the log: grant kinds, invalidation victim sets,
//!    owner actions and `NotLS` reports must match the spec; cached-copy
//!    lifetimes are tracked for SWMR, hit-legality, and stale-copy checks;
//!    and the paper's §2 load-store-sequence definition is re-derived from
//!    scratch and cross-checked against the oracle verdicts in the log.
//!
//! Every violation carries a **witness**: the shortest offending event
//! chain (for SC violations, the minimal happens-before cycle), rendered
//! with the events' log indices.

pub mod hb;
pub mod shadow;

use ccsim_engine::EventLog;
use ccsim_types::ProtocolConfig;
use ccsim_util::FxHashSet;

pub use hb::{corw_violates, coww_violates, hb_le};

/// What a violation violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A read's value matches no logged write or init of that word.
    ReadValue,
    /// A read observed a version older than a write that happens-before it.
    CoWr,
    /// One processor's reads of a word went backward in coherence order.
    CoRr,
    /// Two writes' happens-before order contradicts coherence order.
    CoWw,
    /// A read happens-before a write co-before what it observed.
    CoRw,
    /// The happens-before graph is cyclic: no SC witness exists.
    ScCycle,
    /// An exclusive copy coexisted with another copy.
    Swmr,
    /// A cache hit on a copy that survived a foreign write.
    StaleHit,
    /// A cache hit without a live (or sufficient) tracked copy.
    HitWithoutCopy,
    /// The spec demands an invalidation the log does not contain.
    MissingInval,
    /// The log contains an invalidation the spec does not demand.
    SpuriousInval,
    /// The granted copy kind contradicts the spec.
    GrantMismatch,
    /// The `NotLS` flag/report contradicts the spec (§3.1 case 2).
    NotLsMismatch,
    /// The forwarding owner's action (downgrade/invalidate) contradicts
    /// the spec.
    OwnerActionMismatch,
    /// A silent store on a line not held exclusive-clean.
    SilentStore,
    /// The oracle's load-store verdict contradicts the §2 definition.
    LsDefinition,
    /// A `NotLS` report from a node without an unwritten exclusive copy.
    SpuriousNotLs,
}

impl ViolationKind {
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::ReadValue => "read-value",
            ViolationKind::CoWr => "co-wr",
            ViolationKind::CoRr => "co-rr",
            ViolationKind::CoWw => "co-ww",
            ViolationKind::CoRw => "co-rw",
            ViolationKind::ScCycle => "sc-cycle",
            ViolationKind::Swmr => "swmr",
            ViolationKind::StaleHit => "stale-hit",
            ViolationKind::HitWithoutCopy => "hit-without-copy",
            ViolationKind::MissingInval => "missing-inval",
            ViolationKind::SpuriousInval => "spurious-inval",
            ViolationKind::GrantMismatch => "grant",
            ViolationKind::NotLsMismatch => "notls",
            ViolationKind::OwnerActionMismatch => "owner-action",
            ViolationKind::SilentStore => "silent-store",
            ViolationKind::LsDefinition => "ls-def",
            ViolationKind::SpuriousNotLs => "spurious-notls",
        }
    }
}

/// One detected violation with its minimal witness chain (event indices
/// into the analyzed log; for [`ViolationKind::ScCycle`] the chain is a
/// cycle — the last event happens-before the first).
#[derive(Clone, Debug)]
pub struct RaceViolation {
    pub kind: ViolationKind,
    pub detail: String,
    pub witness: Vec<u32>,
}

impl RaceViolation {
    /// Human rendering with the witness events spelled out.
    pub fn render(&self, log: &EventLog) -> String {
        let mut s = format!("[{}] {}\n  witness:", self.kind.label(), self.detail);
        const SHOWN: usize = 12;
        for &id in self.witness.iter().take(SHOWN) {
            match log.events().get(id as usize) {
                Some(e) => s.push_str(&format!("\n    #{id}  {e}")),
                None => s.push_str(&format!("\n    #{id}  <out of range>")),
            }
        }
        if self.witness.len() > SHOWN {
            s.push_str(&format!(
                "\n    … {} more events",
                self.witness.len() - SHOWN
            ));
        }
        if let (ViolationKind::ScCycle, Some(&first)) = (self.kind, self.witness.first()) {
            s.push_str(&format!("\n    → back to #{first} (cycle)"));
        }
        s
    }
}

/// Work and edge counters for one analysis pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceCounts {
    pub events: u64,
    pub accesses: u64,
    pub reads: u64,
    pub writes: u64,
    pub blocks: u64,
    pub words: u64,
    pub po_edges: u64,
    pub rf_edges: u64,
    pub co_edges: u64,
    pub fr_edges: u64,
    pub ack_edges: u64,
    /// Exclusive grants whose legality the shadow replay validated.
    pub excl_grants_checked: u64,
    /// Forwarded reads where the owner-independent NotLS law applied.
    pub notls_checked: u64,
    /// Global/silent writes whose oracle verdict the §2 mirror checked.
    pub ls_writes_checked: u64,
}

/// The analyzer's verdict.
#[derive(Debug, Default)]
pub struct RaceReport {
    pub counts: RaceCounts,
    /// FNV-1a fingerprint of the SC witness order; `None` iff the
    /// happens-before graph is cyclic.
    pub sc_fingerprint: Option<u64>,
    /// Detected violations, capped at [`RaceReport::MAX_VIOLATIONS`] and
    /// deduplicated per (kind, block/word).
    pub violations: Vec<RaceViolation>,
    /// Violations suppressed by the cap or the per-(kind, location) dedup.
    pub suppressed: u64,
    seen: FxHashSet<(ViolationKind, u64)>,
}

impl RaceReport {
    pub const MAX_VIOLATIONS: usize = 64;

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Detected + suppressed.
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }

    pub fn first_violation(&self) -> Option<&RaceViolation> {
        self.violations.first()
    }

    pub(crate) fn push(
        &mut self,
        kind: ViolationKind,
        key: u64,
        detail: String,
        witness: Vec<u32>,
    ) {
        if !self.seen.insert((kind, key)) || self.violations.len() >= Self::MAX_VIOLATIONS {
            self.suppressed += 1;
            return;
        }
        self.violations.push(RaceViolation {
            kind,
            detail,
            witness,
        });
    }

    /// Full human rendering.
    pub fn render(&self, log: &EventLog) -> String {
        let c = &self.counts;
        let mut s = format!(
            "{} events ({} accesses: {} reads / {} writes) over {} blocks, {} words\n\
             hb edges: {} po, {} rf, {} co, {} fr, {} ack\n\
             checked: {} exclusive grants, {} NotLS laws, {} oracle write verdicts\n",
            c.events,
            c.accesses,
            c.reads,
            c.writes,
            c.blocks,
            c.words,
            c.po_edges,
            c.rf_edges,
            c.co_edges,
            c.fr_edges,
            c.ack_edges,
            c.excl_grants_checked,
            c.notls_checked,
            c.ls_writes_checked,
        );
        match self.sc_fingerprint {
            Some(fp) => s.push_str(&format!("SC witness fingerprint: {fp:#018x}\n")),
            None => s.push_str("SC witness: NONE (happens-before graph is cyclic)\n"),
        }
        if self.is_clean() {
            s.push_str("conformance: clean\n");
        } else {
            s.push_str(&format!(
                "conformance: {} violation(s){}\n",
                self.violations.len(),
                if self.suppressed > 0 {
                    format!(" (+{} suppressed duplicates)", self.suppressed)
                } else {
                    String::new()
                }
            ));
            for v in &self.violations {
                s.push_str(&v.render(log));
                s.push('\n');
            }
        }
        s
    }
}

/// Analyze one event log against the protocol it was captured under.
///
/// `protocol` is the configuration the *engine* ran with; the shadow
/// replay strips any seeded rule mutation from it, so a mutated run is
/// checked against the clean spec — which is exactly how the seeded bugs
/// are caught.
pub fn check(protocol: &ProtocolConfig, log: &EventLog) -> RaceReport {
    let mut report = RaceReport::default();
    hb::analyze(log, &mut report);
    shadow::analyze(protocol, log, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::rules::CopyState;
    use ccsim_core::GrantKind;
    use ccsim_engine::{CoherenceEvent, EventKind, WriteHow};
    use ccsim_types::{Addr, NodeId, ProtocolKind};

    fn ev(proc: u16, kind: EventKind) -> CoherenceEvent {
        CoherenceEvent {
            proc: NodeId(proc),
            kind,
        }
    }

    fn log_of(nodes: u16, events: Vec<CoherenceEvent>) -> EventLog {
        EventLog::from_events(nodes, 32, events).expect("valid test log")
    }

    const A: Addr = Addr(0x100);
    const B: Addr = Addr(0x140); // different 32-byte block

    fn block(a: Addr) -> ccsim_types::BlockAddr {
        a.block(32)
    }

    /// A correct little run: P0 init, P0 reads+writes, P1 acquires with a
    /// proper invalidation of P0.
    fn clean_events() -> Vec<CoherenceEvent> {
        vec![
            ev(0, EventKind::Init { addr: A, value: 7 }),
            ev(
                0,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Shared,
                },
            ),
            ev(
                0,
                EventKind::Read {
                    addr: A,
                    value: 7,
                    hit: false,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
            // P1 write miss: invalidate P0, fill Modified, access last.
            ev(
                0,
                EventKind::Inval {
                    block: block(A),
                    by: NodeId(1),
                },
            ),
            ev(
                1,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Modified,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    addr: A,
                    value: 9,
                    how: WriteHow::Global,
                    ls: false,
                    mig: false,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    addr: A,
                    value: 10,
                    how: WriteHow::DirtyHit,
                    ls: false,
                    mig: false,
                },
            ),
        ]
    }

    #[test]
    fn clean_log_is_clean() {
        let log = log_of(2, clean_events());
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(r.is_clean(), "unexpected violations: {}", r.render(&log));
        assert!(r.sc_fingerprint.is_some());
        assert_eq!(r.counts.accesses, 3);
        assert_eq!(r.counts.writes, 2);
        assert!(r.counts.ack_edges >= 2);
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let a = check(&cfg, &log_of(2, clean_events())).sc_fingerprint;
        let b = check(&cfg, &log_of(2, clean_events())).sc_fingerprint;
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn read_value_violation_detected() {
        let mut evs = clean_events();
        evs.push(ev(
            1,
            EventKind::Read {
                addr: A,
                value: 999, // never written
                hit: true,
                grant: GrantKind::Shared,
                notls: false,
            },
        ));
        let log = log_of(2, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::ReadValue));
    }

    #[test]
    fn cowr_stale_read_detected() {
        // P0 writes 1 then 2 to A; P0 then reads the *old* value 1. The
        // second write happens-before the read (program order) -> CoWR.
        let evs = vec![
            ev(0, EventKind::Init { addr: A, value: 0 }),
            ev(
                0,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Modified,
                },
            ),
            ev(
                0,
                EventKind::Write {
                    addr: A,
                    value: 1,
                    how: WriteHow::Global,
                    ls: false,
                    mig: false,
                },
            ),
            ev(
                0,
                EventKind::Write {
                    addr: A,
                    value: 2,
                    how: WriteHow::DirtyHit,
                    ls: false,
                    mig: false,
                },
            ),
            ev(
                0,
                EventKind::Read {
                    addr: A,
                    value: 1,
                    hit: true,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
        ];
        let log = log_of(1, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        let v = r
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::CoWr)
            .expect("CoWR must fire");
        assert!(v.witness.len() >= 2, "witness chain: {:?}", v.witness);
        assert!(r.sc_fingerprint.is_none() || !r.is_clean());
    }

    #[test]
    fn corr_backward_read_detected() {
        // P1 reads version 2, then re-reads version 1: CoRR.
        let evs = vec![
            ev(0, EventKind::Init { addr: A, value: 1 }),
            ev(0, EventKind::Init { addr: A, value: 2 }),
            ev(
                1,
                EventKind::Read {
                    addr: A,
                    value: 2,
                    hit: true,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
            ev(
                1,
                EventKind::Read {
                    addr: A,
                    value: 1,
                    hit: true,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
        ];
        let log = log_of(2, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(r.violations.iter().any(|v| v.kind == ViolationKind::CoRr));
    }

    #[test]
    fn missing_invalidation_detected() {
        // P0 holds A shared; P1 acquires A but the log has no Inval(P0).
        let evs = vec![
            ev(
                0,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Shared,
                },
            ),
            ev(
                0,
                EventKind::Read {
                    addr: A,
                    value: 0,
                    hit: false,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
            ev(
                1,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Modified,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    addr: A,
                    value: 5,
                    how: WriteHow::Global,
                    ls: false,
                    mig: false,
                },
            ),
            // P0's stale copy is then hit: stale-hit too.
            ev(
                0,
                EventKind::Read {
                    addr: A,
                    value: 5,
                    hit: true,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
        ];
        let log = log_of(2, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(
            r.violations
                .iter()
                .any(|v| v.kind == ViolationKind::MissingInval),
            "got: {}",
            r.render(&log)
        );
        assert!(r.violations.iter().any(|v| v.kind == ViolationKind::Swmr));
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaleHit));
    }

    #[test]
    fn ls_definition_mismatch_detected() {
        // P0: global read then global write -> the §2 mirror expects
        // ls=true; the log claims ls=false.
        let evs = vec![
            ev(
                0,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Shared,
                },
            ),
            ev(
                0,
                EventKind::Read {
                    addr: A,
                    value: 0,
                    hit: false,
                    grant: GrantKind::Shared,
                    notls: false,
                },
            ),
            ev(
                0,
                EventKind::Fill {
                    block: block(A),
                    state: CopyState::Modified,
                },
            ),
            ev(
                0,
                EventKind::Write {
                    addr: A,
                    value: 3,
                    how: WriteHow::Global,
                    ls: false, // lie: the mirror derives ls=true
                    mig: false,
                },
            ),
        ];
        let log = log_of(1, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(
            r.violations
                .iter()
                .any(|v| v.kind == ViolationKind::LsDefinition),
            "got: {}",
            r.render(&log)
        );
    }

    #[test]
    fn violations_dedupe_per_kind_and_location() {
        let mut r = RaceReport::default();
        r.push(ViolationKind::Swmr, 1, "a".into(), vec![0]);
        r.push(ViolationKind::Swmr, 1, "b".into(), vec![1]);
        r.push(ViolationKind::Swmr, 2, "c".into(), vec![2]);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.total_violations(), 3);
        assert!(!r.is_clean());
    }

    #[test]
    fn render_names_the_witness_events() {
        let log = log_of(2, clean_events());
        let v = RaceViolation {
            kind: ViolationKind::ScCycle,
            detail: "demo".into(),
            witness: vec![0, 2],
        };
        let s = v.render(&log);
        assert!(s.contains("[sc-cycle]"));
        assert!(s.contains("#0"));
        assert!(s.contains("init"));
        assert!(s.contains("back to #0"));
    }

    #[test]
    fn distinct_blocks_are_tracked_separately() {
        // Same shape as clean_events but on two blocks; stays clean.
        let mut evs = clean_events();
        evs.push(ev(
            1,
            EventKind::Fill {
                block: block(B),
                state: CopyState::Modified,
            },
        ));
        evs.push(ev(
            1,
            EventKind::Write {
                addr: B,
                value: 1,
                how: WriteHow::Global,
                ls: false,
                mig: false,
            },
        ));
        let log = log_of(2, evs);
        let cfg = ccsim_types::ProtocolConfig::new(ProtocolKind::Baseline);
        let r = check(&cfg, &log);
        assert!(r.is_clean(), "got: {}", r.render(&log));
        assert_eq!(r.counts.blocks, 2);
    }
}
