//! Happens-before graph construction and the SC-conformance checks.
//!
//! The graph's nodes are the log's events; its edges are
//!
//! * **po** — program order: all events of one processor in log order
//!   (sound because the engine serializes whole machine calls under one
//!   lock, so the log order *is* each processor's issue order). `Init`
//!   events form a prefix chain ordered before every processor's first
//!   event.
//! * **rf** — reads-from: the write (or init) whose value a read observed.
//! * **co** — coherence order: per-word serialization order of writes,
//!   which in this machine is the log order (the directory serializes
//!   ownership, and the engine lock serializes everything else).
//! * **fr** — from-read: a read of version `k` precedes the write of
//!   version `k+1`. For reads of the *latest* version this is a forward
//!   edge to the next write; for stale reads (possible only in crafted
//!   logs — the engine's flat store always returns the newest value) it is
//!   a *backward* edge that participates in cycle detection.
//! * **ack** — invalidation acknowledgement: every side-effect event of a
//!   transaction (invalidations sent, downgrades, fills, evictions,
//!   `NotLS` reports) completes before the transaction's access event
//!   retires — the SC stall on the last `InvalAck`.
//!
//! Per event we compute a vector clock `VC(e)[p]` = number of processor-`p`
//! events happens-before-or-equal `e`, propagated forward in log order over
//! all forward edges (one `O(events × nodes)` pass). Backward fr edges
//! cannot feed this propagation; they are instead included in the global
//! topological-sort pass, whose failure to order the graph is exactly a
//! sequential-consistency violation and yields a minimal witness cycle.
//!
//! # Axioms checked
//!
//! * **ReadValue** — every read's value matches some logged write/init of
//!   that word (golden-memory conformance).
//! * **CoWR** — a read must not observe a version older than a write that
//!   happens-before it.
//! * **CoRR** — one processor's reads of a word must observe monotonically
//!   newer versions.
//! * **CoWW / CoRW** — with co taken from the serialization (log) order
//!   and only forward hb edges, these cannot be violated *structurally*
//!   during construction; a crafted log that violates them necessarily
//!   contains a backward edge and is caught by the acyclicity pass. The
//!   predicates [`coww_violates`] and [`corw_violates`] state the axioms
//!   directly and are unit-tested on hand-built clocks.
//! * **Acyclicity** — the whole graph admits a topological order: a global
//!   SC witness, fingerprinted (FNV-1a over the order) for determinism
//!   checks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ccsim_engine::{EventKind, EventLog};
use ccsim_util::{fnv1a64, FxHashMap};

use crate::{RaceReport, ViolationKind};

/// Is the event at `proc`/`seq` happens-before-or-equal an event with
/// vector clock `vc_e`? (`seq` is 1-based: the event's own clock component.)
pub fn hb_le(vc_e: &[u32], proc: usize, seq: u32) -> bool {
    vc_e.get(proc).copied().unwrap_or(0) >= seq
}

/// CoWW axiom: if coherence order puts write `w1` before `w2`, then `w2`
/// must not happen-before(-or-equal) `w1`. `vc_co_first` is `w1`'s clock;
/// `proc_second`/`seq_second` identify `w2`.
pub fn coww_violates(vc_co_first: &[u32], proc_second: usize, seq_second: u32) -> bool {
    hb_le(vc_co_first, proc_second, seq_second)
}

/// CoRW axiom: a read that observed version `read_version` must not
/// happen-before the write of any version `writer_version ≤ read_version`.
/// `vc_writer` is the writer's clock; `read_proc`/`read_seq` identify the
/// read.
pub fn corw_violates(
    vc_writer: &[u32],
    read_proc: usize,
    read_seq: u32,
    read_version: usize,
    writer_version: usize,
) -> bool {
    writer_version <= read_version && hb_le(vc_writer, read_proc, read_seq)
}

/// One logged value of a word. `writer` is `None` for the implicit initial
/// version (memory zero-fill).
struct Version {
    value: u64,
    writer: Option<u32>,
    wproc: usize,
    wseq: u32,
}

struct WordState {
    versions: Vec<Version>,
    readers_of_latest: Vec<u32>,
    /// Per processor: 1 + index of the newest version observed (0 = none).
    max_seen: Vec<u32>,
    /// The event that set `max_seen` (CoRR witness).
    max_seen_ev: Vec<u32>,
}

impl WordState {
    fn new(nodes: usize) -> Self {
        WordState {
            versions: vec![Version {
                value: 0,
                writer: None,
                wproc: 0,
                wseq: 0,
            }],
            readers_of_latest: Vec::new(),
            max_seen: vec![0; nodes],
            max_seen_ev: vec![0; nodes],
        }
    }
}

pub(crate) fn analyze(log: &EventLog, report: &mut RaceReport) {
    let events = log.events();
    let n = events.len();
    let nodes = (log.nodes() as usize).max(1);
    report.counts.events = n as u64;

    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];
    let mut vc: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut last_of_proc: Vec<Option<u32>> = vec![None; nodes];
    let mut last_init: Option<u32> = None;
    let mut group: Vec<u32> = Vec::new();
    let mut words: FxHashMap<u64, WordState> = FxHashMap::default();
    let mut ins: Vec<u32> = Vec::new();

    for (id, ev) in events.iter().enumerate() {
        let e32 = id as u32;
        let p = ev.proc.idx();
        ins.clear();

        let is_init = matches!(ev.kind, EventKind::Init { .. });
        let is_access = ev.kind.is_access();

        // po: the per-processor chain; the last Init precedes every other
        // processor's first event (Init events run at P0, so P0's chain
        // already covers them).
        match (last_of_proc[p], last_init) {
            (Some(prev), _) => {
                ins.push(prev);
                report.counts.po_edges += 1;
            }
            (None, Some(li)) if !is_init => {
                ins.push(li);
                report.counts.po_edges += 1;
            }
            _ => {}
        }

        // ack: the transaction's side effects complete before its access
        // event retires.
        if is_access {
            for &g in &group {
                ins.push(g);
                report.counts.ack_edges += 1;
            }
            group.clear();
        }

        // (word, value, is_write) for events that touch memory.
        let touch = match ev.kind {
            EventKind::Init { addr, value } => Some((addr.word_index(), value, true)),
            EventKind::Read { addr, value, .. } => Some((addr.word_index(), value, false)),
            EventKind::ReadExcl { addr, value, .. } => Some((addr.word_index(), value, false)),
            EventKind::Write { addr, value, .. } => Some((addr.word_index(), value, true)),
            _ => None,
        };

        // rf / co / forward-fr edges into this event.
        let mut matched: Option<usize> = None;
        if let Some((word, value, is_write)) = touch {
            let w = words.entry(word).or_insert_with(|| WordState::new(nodes));
            if is_write {
                // co: this write follows the previous version's writer.
                // ccsim-lint: allow(unwrap): versions starts non-empty and only grows
                if let Some(pw) = w.versions.last().expect("versions never empty").writer {
                    ins.push(pw);
                    report.counts.co_edges += 1;
                }
                // fr: everyone who read the previous version precedes it.
                for r in w.readers_of_latest.drain(..) {
                    ins.push(r);
                    report.counts.fr_edges += 1;
                }
            } else {
                // rf: newest version whose value matches (the engine's flat
                // store always returns the newest; older matches only occur
                // in crafted logs).
                matched = (0..w.versions.len())
                    .rev()
                    .find(|&k| w.versions[k].value == value);
                if let Some(k) = matched {
                    if let Some(wr) = w.versions[k].writer {
                        ins.push(wr);
                        report.counts.rf_edges += 1;
                    }
                }
            }
        }

        // Vector clock: join of all hb-predecessors, tick own component.
        let mut v = vec![0u32; nodes];
        for &f in &ins {
            for (a, b) in v.iter_mut().zip(&vc[f as usize]) {
                if *b > *a {
                    *a = *b;
                }
            }
        }
        v[p] += 1;
        let seq_self = v[p];
        vc.push(v);

        for &f in &ins {
            out[f as usize].push(e32);
            indeg[id] += 1;
        }

        // Post-clock checks and word-state updates.
        if let Some((word, value, is_write)) = touch {
            // ccsim-lint: allow(unwrap): the entry was inserted above
            let w = words.get_mut(&word).expect("word state inserted above");
            if is_write {
                w.versions.push(Version {
                    value,
                    writer: Some(e32),
                    wproc: p,
                    wseq: seq_self,
                });
                let vi = w.versions.len() - 1;
                if w.max_seen[p] < vi as u32 + 1 {
                    w.max_seen[p] = vi as u32 + 1;
                    w.max_seen_ev[p] = e32;
                }
            } else {
                match matched {
                    None => {
                        report.push(
                            ViolationKind::ReadValue,
                            word,
                            format!(
                                "{} observed {value}, which no logged write or init ever stored",
                                ev
                            ),
                            vec![e32],
                        );
                    }
                    Some(k) => {
                        let latest = w.versions.len() - 1;
                        if k == latest {
                            w.readers_of_latest.push(e32);
                        } else {
                            // Stale read: backward fr edge into the cycle
                            // graph (not into the clocks).
                            if let Some(nw) = w.versions[k + 1].writer {
                                out[id].push(nw);
                                indeg[nw as usize] += 1;
                                report.counts.fr_edges += 1;
                            }
                            // CoWR: is a co-later write hb-before this read?
                            for m in (k + 1..=latest).rev() {
                                let ver = &w.versions[m];
                                let Some(wid) = ver.writer else { continue };
                                if hb_le(&vc[id], ver.wproc, ver.wseq) {
                                    let path = shortest_path(&out, wid, e32)
                                        .unwrap_or_else(|| vec![wid, e32]);
                                    report.push(
                                        ViolationKind::CoWr,
                                        word,
                                        format!(
                                            "{} observed stale version {k} although \
                                             version {m}'s write happens-before it",
                                            ev
                                        ),
                                        path,
                                    );
                                    break;
                                }
                            }
                        }
                        // CoRR: per-processor reads march forward in co.
                        if w.max_seen[p] > k as u32 + 1 {
                            report.push(
                                ViolationKind::CoRr,
                                word,
                                format!(
                                    "{} went back in coherence order: version {k} after \
                                     this processor already observed version {}",
                                    ev,
                                    w.max_seen[p] - 1
                                ),
                                vec![w.max_seen_ev[p], e32],
                            );
                        } else if w.max_seen[p] < k as u32 + 1 {
                            w.max_seen[p] = k as u32 + 1;
                            w.max_seen_ev[p] = e32;
                        }
                    }
                }
            }
        }

        last_of_proc[p] = Some(e32);
        if is_init {
            last_init = Some(e32);
        }
        if !is_access && !is_init {
            group.push(e32);
        }
        if is_access {
            report.counts.accesses += 1;
            match ev.kind {
                EventKind::Write { .. } => report.counts.writes += 1,
                _ => report.counts.reads += 1,
            }
        }
    }

    report.counts.words = words.len() as u64;

    // Global SC witness: deterministic (smallest-id-first) topological sort.
    let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            heap.push(Reverse(i as u32));
        }
    }
    let mut popped = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    while let Some(Reverse(x)) = heap.pop() {
        popped[x as usize] = true;
        order.push(x);
        for &y in &out[x as usize] {
            indeg[y as usize] -= 1;
            if indeg[y as usize] == 0 {
                heap.push(Reverse(y));
            }
        }
    }
    if order.len() == n {
        let mut bytes = Vec::with_capacity(n * 4);
        for x in &order {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        report.sc_fingerprint = Some(fnv1a64(&bytes));
    } else {
        report.sc_fingerprint = None;
        // Minimal witness: shortest cycle through the earliest unorderable
        // event (BFS restricted to the unorderable remainder).
        for s in (0..n).filter(|&s| !popped[s]) {
            if let Some(cycle) = cycle_through(&out, &popped, s as u32) {
                report.push(
                    ViolationKind::ScCycle,
                    0,
                    format!(
                        "events form a happens-before cycle ({} events cannot be \
                         ordered): no sequentially consistent witness exists",
                        n - order.len()
                    ),
                    cycle,
                );
                break;
            }
        }
    }
}

/// Shortest hb path `from → to` by BFS (witness extraction).
fn shortest_path(out: &[Vec<u32>], from: u32, to: u32) -> Option<Vec<u32>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: FxHashMap<u32, u32> = FxHashMap::default();
    let mut q = VecDeque::new();
    q.push_back(from);
    while let Some(x) = q.pop_front() {
        for &y in &out[x as usize] {
            if y == from || parent.contains_key(&y) {
                continue;
            }
            parent.insert(y, x);
            if y == to {
                let mut rev = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    rev.push(cur);
                }
                rev.reverse();
                return Some(rev);
            }
            q.push_back(y);
        }
    }
    None
}

/// Shortest cycle through `s`, restricted to unpopped (unorderable) nodes.
fn cycle_through(out: &[Vec<u32>], popped: &[bool], s: u32) -> Option<Vec<u32>> {
    let mut parent: FxHashMap<u32, u32> = FxHashMap::default();
    let mut q = VecDeque::new();
    q.push_back(s);
    while let Some(x) = q.pop_front() {
        for &y in &out[x as usize] {
            if popped[y as usize] {
                continue;
            }
            if y == s {
                let mut rev = vec![x];
                let mut cur = x;
                while cur != s {
                    cur = parent[&cur];
                    rev.push(cur);
                }
                rev.reverse();
                return Some(rev);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(y) {
                e.insert(x);
                q.push_back(y);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hb_le_is_component_test() {
        // Clock of an event that has seen 3 events of P0 and 1 of P1.
        let vc = [3, 1, 0];
        assert!(hb_le(&vc, 0, 3));
        assert!(hb_le(&vc, 0, 2));
        assert!(!hb_le(&vc, 0, 4));
        assert!(hb_le(&vc, 1, 1));
        assert!(!hb_le(&vc, 2, 1));
        assert!(!hb_le(&vc, 9, 1), "out-of-range proc is never hb");
    }

    #[test]
    fn coww_predicate() {
        // w1 (clock [2,5]) is co-first. w2 = P1's event 4 is hb-before w1:
        // co and hb disagree -> violation.
        assert!(coww_violates(&[2, 5], 1, 4));
        // w2 = P1's event 6 is NOT hb-before w1: consistent.
        assert!(!coww_violates(&[2, 5], 1, 6));
    }

    #[test]
    fn corw_predicate() {
        // Read by P0 (seq 3) observed version 5. A write of version 4 whose
        // clock already includes P0's event 3 is hb-after the read ->
        // violation (the read saw the co-future).
        assert!(corw_violates(&[3, 0], 0, 3, 5, 4));
        // Same write but of version 6 (co-after what was read): fine.
        assert!(!corw_violates(&[3, 0], 0, 3, 5, 6));
        // Write not hb-after the read: fine.
        assert!(!corw_violates(&[2, 0], 0, 3, 5, 4));
    }
}
