//! Seeded panic-path violation: an unchecked indexed store two calls below
//! the `commit_frame` replay entry.

pub struct Frame {
    slots: Vec<u64>,
}

pub fn commit_frame(f: &mut Frame, i: usize) {
    step_one(f, i);
}

fn step_one(f: &mut Frame, i: usize) {
    touch_slot(f, i);
}

fn touch_slot(f: &mut Frame, i: usize) {
    f.slots[i] = 1;
}
