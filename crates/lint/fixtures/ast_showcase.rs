//! AST showcase fixture: cfg gates, nested closures, and macro-call
//! skipping. The golden snapshot (`ast_showcase.ast`) pins the rendered
//! shape byte for byte — see `tests/parse.rs`.
#![allow(dead_code)]

use std::collections::BTreeMap;

#[cfg(feature = "testing")]
pub mod gated {
    /// Only present under the testing feature.
    pub fn probe() -> u32 {
        42
    }
}

#[derive(Debug, Clone)]
pub struct Sampler {
    weights: BTreeMap<String, u64>,
}

impl Sampler {
    pub fn new() -> Self {
        Self {
            weights: BTreeMap::new(),
            #[cfg(feature = "testing")]
            _probe: 0,
        }
    }

    /// Nested closures: the outer closure captures `bias`, the inner one
    /// maps each weight through it.
    pub fn normalized(&self, bias: u64) -> Vec<f64> {
        let total: u64 = self.weights.values().sum();
        self.weights
            .values()
            .map(|w| {
                let scaled = (0..*w).map(|i| i + bias).fold(0u64, |acc, v| acc + v);
                scaled as f64 / total.max(1) as f64
            })
            .collect()
    }

    pub fn describe(&self) -> String {
        // Macro calls are opaque: arguments are skipped, not parsed.
        format!("sampler with {} keys", self.weights.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sampler_normalizes_to_nothing() {
        let s = Sampler::new();
        assert!(s.normalized(1).is_empty());
        #[cfg(feature = "testing")]
        {
            assert_eq!(gated::probe(), 42);
        }
    }
}
