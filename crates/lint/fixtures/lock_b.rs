//! Seeded lock-order-global violation, file B of two: the reverse
//! acquisition order of file A, in a different translation unit — only the
//! workspace-wide lock graph sees the cycle.

impl Pipeline {
    pub fn drain_report(&self) -> u64 {
        let s = self.stats.lock();
        let q = self.queue.lock();
        s.flushes + q.len() as u64
    }
}
