//! Seeded determinism-taint violation: a wall-clock read in `stamp_nanos`
//! flows through one call hop into the `to_json` export sink in
//! `export_results`.

fn stamp_nanos() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn export_results(rows: &[u64]) -> String {
    let stamp = stamp_nanos();
    to_json(stamp, rows)
}
