//! Seeded lint violations — NOT compiled. `tests/lint.rs` feeds this file
//! to the linter and asserts that exactly the expected diagnostics come
//! out, proving each rule has teeth. Line numbers matter: update the
//! expectations in `tests/lint.rs` when editing.

use std::collections::HashMap;

fn randomstate_violations() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s = std::collections::HashSet::new();
    let ok: FxHashMap<u32, u32> = FxHashMap::default();
    let also_ok: HashMap<u32, u32, BuildHasherDefault<FxHasher>> = HashMap::with_hasher(h);
}

fn wall_clock_violations() {
    let t0 = std::time::Instant::now();
    let epoch = SystemTime::now();
    // A justified suppression is accepted:
    let ok = Instant::now(); // ccsim-lint: allow(wall-clock): progress reporting only
}

fn unwrap_violations(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("msg");
    // ccsim-lint: allow(unwrap): locally provable — fixture demonstrates suppression
    let ok = x.unwrap();
    x.unwrap_or_default()
}

pub fn corrupt_entry_for_test() {}

#[cfg(feature = "testing")]
pub fn corrupt_gated_for_test() {}

fn bad_allow_violations() {
    let a = 1; // ccsim-lint: allow(unwrap)
    let b = 2; // ccsim-lint: allow(nosuch): unknown rule
    let c = 3; // ccsim-lint: misformed directive
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_region() {
        let m = std::collections::HashMap::new();
        m.get(&1).unwrap();
        let t = std::time::Instant::now();
    }
}

fn lock_order_established(sim: &Sim) {
    let g1 = sim.stats.lock();
    let g2 = sim.cache.lock();
}

fn lock_order_conflict(sim: &Sim) {
    let g2 = sim.cache.lock();
    let g1 = sim.stats.lock();
}

fn guard_held_across_fanout(set: JobSet, stats: &Mutex<u64>) {
    let g = stats.lock();
    set.run();
}

fn guard_released_before_fanout(set: JobSet, stats: &Mutex<u64>) {
    let g = stats.lock();
    drop(g);
    set.run();
}

fn guard_scoped_before_fanout(set: JobSet, stats: &Mutex<u64>) {
    {
        let _g = stats.lock();
    }
    set.run_checked();
}

fn unbounded_retry_violation() {
    loop {
        if retry() {
            break;
        }
    }
}

fn bounded_retry_ok(n: u32) {
    for attempt in 0..n {
        retry_once(attempt);
    }
    while busy() {}
    // ccsim-lint: allow(unbounded-retry): NACK streaks capped by max_consecutive_nacks
    loop {
        if retry() {
            break;
        }
    }
}
