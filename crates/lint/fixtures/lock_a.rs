//! Seeded lock-order-global violation, file A of two. `enqueue` acquires
//! `Pipeline.queue` and then — still holding it — calls `flush_stats`,
//! whose lock closure acquires `Pipeline.stats`. File B acquires the same
//! two locks in the opposite order, closing a workspace-wide cycle that
//! neither file exhibits alone.

pub struct Pipeline {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<Stats>,
}

impl Pipeline {
    pub fn enqueue(&self, item: u64) {
        let mut q = self.queue.lock();
        q.push(item);
        self.flush_stats();
    }

    pub fn flush_stats(&self) {
        let mut s = self.stats.lock();
        s.flushes += 1;
    }
}
