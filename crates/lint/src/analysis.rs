//! Pass 2: static analysis of access traces (`ccsim analyze`).
//!
//! Two analyses share one O(events) pass over a captured [`Trace`], with no
//! timing, network, or thread machinery involved:
//!
//! 1. **Paper-taxonomy classifier** — an idealized infinite-cache pass over
//!    the access stream labels every block with its sharing pattern
//!    (private, read-shared, producer-consumer, load-store, migratory — the
//!    latter a strict subset of load-store — plus an orthogonal
//!    false-sharing-candidate label from per-node word footprints) and
//!    counts the stream's inherent global actions. These depend only on the
//!    access stream, not on cache geometry or protocol.
//!
//! 2. **Exact coherence replay** — a timing-free re-execution of the
//!    engine's coherence orchestration (same `Hierarchy`, `Directory`,
//!    `ccsim_core::rules`, `LsOracle`, and `FalseSharing`, called in the
//!    same order as `Machine::{load,write,load_exclusive}`, minus all
//!    latency/network/invariant logic). Trace events are recorded in
//!    execution order under the engine lock, so replaying them in order
//!    reproduces the exact coherence-operation sequence: the resulting
//!    LS-oracle, silent-store, and directory counters equal the capturing
//!    run's bit for bit. This is the independent cross-check of the
//!    engine's LS counters, and `ls_writes` from it is the static upper
//!    bound on ownership transactions the LS protocol can eliminate for
//!    this trace and geometry (`eliminated_ls <= ls_writes` always).
//!
//! Faults, NACKs, retries, and busy-block bounces affect only timing in the
//! engine, never coherence state or oracle counts, so omitting them keeps
//! the replay exact.

use ccsim_cache::{Hierarchy, LineState, Probe};
use ccsim_core::rules::{self, LocalReadExcl, LocalStore};
use ccsim_core::{DirStats, Directory, ReadStep, WriteStep};
use ccsim_engine::invariants::{copy_state, line_state};
use ccsim_engine::oracle::{FalseSharing, LsOracle};
use ccsim_engine::{Component, Trace, TraceOp};
use ccsim_mem::pages;
use ccsim_stats::AnalysisSummary;
use ccsim_types::{Addr, BlockAddr, MachineConfig, NodeId};
use ccsim_util::FxHashMap;

/// Why the replay asks the home for ownership (mirrors the engine's private
/// `Acquire` enum).
#[derive(Clone, Copy)]
enum Acq {
    Store(Component),
    ReadExclusive,
}

/// Timing-free mirror of the engine's coherence orchestration.
struct Replay {
    cfg: MachineConfig,
    caches: Vec<Hierarchy>,
    dirs: Vec<Directory>,
    oracle: LsOracle,
    fs: FalseSharing,
    silent_stores: u64,
}

impl Replay {
    fn new(cfg: MachineConfig) -> Replay {
        Replay {
            caches: (0..cfg.nodes).map(|_| Hierarchy::new(&cfg)).collect(),
            dirs: (0..cfg.nodes)
                .map(|_| Directory::new(cfg.protocol))
                .collect(),
            oracle: LsOracle::new(cfg.block_bytes()),
            fs: FalseSharing::new(cfg.nodes, cfg.block_bytes()),
            silent_stores: 0,
            cfg,
        }
    }

    fn home(&self, addr: Addr) -> NodeId {
        pages::home_node(addr, self.cfg.page_bytes, self.cfg.nodes)
    }

    /// Mirror of `Machine::fill`: install a block, resolve the L2 victim.
    fn fill(&mut self, p: NodeId, block: BlockAddr, state: LineState) {
        if let Some(ev) = self.caches[p.idx()].fill(block, state) {
            let vhome = self.home(ev.block.addr());
            self.dirs[vhome.idx()].replacement(ev.block, p);
            self.fs.on_replaced(ev.block, p);
        }
    }

    /// Mirror of `Machine::owner_state`.
    fn owner_state(&self, owner: NodeId, block: BlockAddr) -> (bool, bool) {
        let copy = self.caches[owner.idx()].state(block);
        copy.and_then(|s| rules::owner_report(copy_state(s)))
            .unwrap_or_else(|| {
                panic!("directory believes {owner} owns {block}, cache says {copy:?}")
            })
    }

    /// Mirror of `Machine::load` (the coherence-visible part).
    fn load(&mut self, p: NodeId, addr: Addr) {
        let block = addr.block(self.cfg.block_bytes());
        match self.caches[p.idx()].probe(block) {
            Probe::L1(_) | Probe::L2(_) => {}
            Probe::Miss => self.global_read(p, addr, block),
        }
    }

    /// Mirror of `Machine::global_read`.
    fn global_read(&mut self, p: NodeId, addr: Addr, block: BlockAddr) {
        let home = self.home(addr);
        self.oracle.global_read(block, p);
        self.fs.on_miss(block, addr, p);
        match self.dirs[home.idx()].read(block, p) {
            ReadStep::Memory { grant, .. } => {
                // Memory data is clean; `None` is the DSI tear-off grant —
                // data consumed without caching.
                if let Some(s) = rules::read_fill_state(grant, false) {
                    self.fill(p, block, line_state(s));
                }
            }
            ReadStep::Forward { owner } => {
                let (wrote, dirty) = self.owner_state(owner, block);
                let res = self.dirs[home.idx()].read_forward_result(block, p, wrote, dirty);
                match rules::owner_next_state(res.owner_action) {
                    Some(s) => {
                        self.caches[owner.idx()].set_state(block, line_state(s));
                    }
                    None => {
                        self.caches[owner.idx()].invalidate(block);
                        self.fs.on_invalidated(block, owner);
                    }
                }
                let state = rules::read_fill_state(res.grant, res.requester_dirty)
                    // ccsim-lint: allow(unwrap): same invariant the engine relies on — forwarded reads never grant tear-off
                    .expect("forwarded reads never grant tear-off");
                self.fill(p, block, line_state(state));
            }
        }
    }

    /// Mirror of `Machine::write` (the coherence-visible part).
    fn store(&mut self, p: NodeId, addr: Addr, comp: Component) {
        let block = addr.block(self.cfg.block_bytes());
        self.fs.on_store(block, addr, p);
        let copy = match self.caches[p.idx()].probe(block) {
            Probe::L1(s) | Probe::L2(s) => Some(copy_state(s)),
            Probe::Miss => None,
        };
        match rules::store_probe(copy) {
            LocalStore::DirtyHit => {}
            LocalStore::Silent => {
                self.silent_stores += 1;
                self.caches[p.idx()].set_state(block, LineState::Modified);
                self.oracle.global_write(block, p, comp, true);
            }
            LocalStore::Acquire { has_copy } => {
                self.global_acquire(p, addr, block, has_copy, Acq::Store(comp));
            }
        }
    }

    /// Mirror of `Machine::load_exclusive` (the coherence-visible part).
    fn load_exclusive(&mut self, p: NodeId, addr: Addr) {
        let block = addr.block(self.cfg.block_bytes());
        let copy = match self.caches[p.idx()].probe(block) {
            Probe::L1(s) | Probe::L2(s) => Some(copy_state(s)),
            Probe::Miss => None,
        };
        match rules::read_exclusive_probe(copy) {
            LocalReadExcl::Hit => {}
            LocalReadExcl::Acquire { has_copy } => {
                self.global_acquire(p, addr, block, has_copy, Acq::ReadExclusive);
            }
        }
    }

    /// Mirror of `Machine::global_acquire`.
    fn global_acquire(
        &mut self,
        p: NodeId,
        addr: Addr,
        block: BlockAddr,
        has_copy: bool,
        purpose: Acq,
    ) {
        let home = self.home(addr);
        match purpose {
            Acq::Store(comp) => {
                self.oracle.global_write(block, p, comp, false);
            }
            Acq::ReadExclusive => self.oracle.global_read(block, p),
        }
        let mut data_dirty = false;
        match self.dirs[home.idx()].write(block, p) {
            WriteStep::Memory {
                invalidate,
                data_needed,
            } => {
                if data_needed {
                    self.fs.on_miss(block, addr, p);
                }
                for s in invalidate {
                    self.caches[s.idx()].invalidate(block);
                    self.fs.on_invalidated(block, s);
                }
            }
            WriteStep::Forward { owner } => {
                let (_, dirty) = self.owner_state(owner, block);
                data_dirty = dirty;
                self.dirs[home.idx()].write_forward_result(block, p, dirty);
                self.caches[owner.idx()].invalidate(block);
                self.fs.on_invalidated(block, owner);
                self.fs.on_miss(block, addr, p);
            }
        }
        let acq = match purpose {
            Acq::Store(_) => rules::AcquirePurpose::Store,
            Acq::ReadExclusive => rules::AcquirePurpose::ReadExclusive,
        };
        let final_state = line_state(rules::acquire_final_state(acq, data_dirty));
        if has_copy {
            self.caches[p.idx()].set_state(block, final_state);
        } else {
            self.fill(p, block, final_state);
        }
    }

    fn dir_stats(&self) -> DirStats {
        let mut s = DirStats::default();
        for d in &self.dirs {
            s.merge(d.stats());
        }
        s
    }
}

/// Per-block observation state for the idealized (infinite-cache) pass.
struct BlockObs {
    /// Per node: word-footprint masks (stores count as accesses too).
    accessed_words: Vec<u64>,
    written_words: Vec<u64>,
    reads: Vec<u64>,
    writes: Vec<u64>,
    /// Idealized MESI: clean sharers + at most one owner (`dirty = false`
    /// is the exclusive-clean state a load-exclusive installs).
    sharers: Vec<bool>,
    owner: Option<(usize, bool)>,
    /// Idealized LS oracle (same update rules as `LsOracle`).
    last: Option<(usize, bool)>,
    prev_seq: Option<usize>,
    ls_writes: u64,
    migratory_writes: u64,
}

impl BlockObs {
    fn new(nodes: usize) -> BlockObs {
        BlockObs {
            accessed_words: vec![0; nodes],
            written_words: vec![0; nodes],
            reads: vec![0; nodes],
            writes: vec![0; nodes],
            sharers: vec![false; nodes],
            owner: None,
            last: None,
            prev_seq: None,
            ls_writes: 0,
            migratory_writes: 0,
        }
    }

    fn holds(&self, p: usize) -> bool {
        self.sharers[p] || matches!(self.owner, Some((q, _)) if q == p)
    }
}

/// Aggregate counters of the idealized pass.
#[derive(Default)]
struct IdealTotals {
    global_reads: u64,
    global_writes: u64,
    ls_writes: u64,
    migratory_writes: u64,
}

struct Ideal {
    nodes: usize,
    block_bytes: u64,
    blocks: FxHashMap<BlockAddr, BlockObs>,
    totals: IdealTotals,
}

impl Ideal {
    fn new(nodes: usize, block_bytes: u64) -> Ideal {
        Ideal {
            nodes,
            block_bytes,
            blocks: FxHashMap::default(),
            totals: IdealTotals::default(),
        }
    }

    /// `LsOracle::global_read` over the idealized action stream.
    fn ideal_read(obs: &mut BlockObs, totals: &mut IdealTotals, p: usize) {
        totals.global_reads += 1;
        obs.last = Some((p, true));
    }

    /// `LsOracle::global_write` over the idealized action stream.
    fn ideal_write(obs: &mut BlockObs, totals: &mut IdealTotals, p: usize) {
        let is_ls = obs.last == Some((p, true));
        let is_mig = is_ls && matches!(obs.prev_seq, Some(q) if q != p);
        if is_ls {
            obs.prev_seq = Some(p);
            obs.ls_writes += 1;
            totals.ls_writes += 1;
        }
        if is_mig {
            obs.migratory_writes += 1;
            totals.migratory_writes += 1;
        }
        obs.last = Some((p, false));
        totals.global_writes += 1;
    }

    fn load(&mut self, p: usize, addr: Addr) {
        let b = addr.block(self.block_bytes);
        let mask = b.word_mask(addr, self.block_bytes);
        let totals = &mut self.totals;
        let n = self.nodes;
        let obs = self.blocks.entry(b).or_insert_with(|| BlockObs::new(n));
        obs.accessed_words[p] |= mask;
        obs.reads[p] += 1;
        if !obs.holds(p) {
            Self::ideal_read(obs, totals, p);
            if let Some((q, _)) = obs.owner.take() {
                obs.sharers[q] = true;
            }
            obs.sharers[p] = true;
        }
    }

    fn store(&mut self, p: usize, addr: Addr) {
        let b = addr.block(self.block_bytes);
        let mask = b.word_mask(addr, self.block_bytes);
        let totals = &mut self.totals;
        let n = self.nodes;
        let obs = self.blocks.entry(b).or_insert_with(|| BlockObs::new(n));
        obs.accessed_words[p] |= mask;
        obs.written_words[p] |= mask;
        obs.writes[p] += 1;
        match obs.owner {
            Some((q, true)) if q == p => {} // local dirty hit
            _ => {
                // Exclusive-clean owner stores count as global write actions
                // too (the eliminated acquisition), like the engine oracle.
                Self::ideal_write(obs, totals, p);
                obs.sharers.iter_mut().for_each(|s| *s = false);
                obs.owner = Some((p, true));
            }
        }
    }

    fn load_exclusive(&mut self, p: usize, addr: Addr) {
        let b = addr.block(self.block_bytes);
        let mask = b.word_mask(addr, self.block_bytes);
        let totals = &mut self.totals;
        let n = self.nodes;
        let obs = self.blocks.entry(b).or_insert_with(|| BlockObs::new(n));
        obs.accessed_words[p] |= mask;
        obs.reads[p] += 1;
        match obs.owner {
            Some((q, _)) if q == p => {} // already exclusive
            _ => {
                Self::ideal_read(obs, totals, p);
                obs.sharers.iter_mut().for_each(|s| *s = false);
                obs.owner = Some((p, false));
            }
        }
    }
}

/// Pattern labels aggregated over all blocks.
#[derive(Default)]
struct PatternCounts {
    private: u64,
    read_shared: u64,
    producer_consumer: u64,
    load_store: u64,
    migratory: u64,
    irregular: u64,
    false_sharing_candidates: u64,
}

fn classify(blocks: &FxHashMap<BlockAddr, BlockObs>) -> PatternCounts {
    let mut c = PatternCounts::default();
    for obs in blocks.values() {
        let accessors: Vec<usize> = (0..obs.reads.len())
            .filter(|&n| obs.reads[n] + obs.writes[n] > 0)
            .collect();
        let writers = accessors.iter().filter(|&&n| obs.writes[n] > 0).count();
        if accessors.len() <= 1 {
            c.private += 1;
        } else if writers == 0 {
            c.read_shared += 1;
        } else if obs.ls_writes > 0 {
            // Load-store block; migratory is the strict subset whose
            // sequences move between processors.
            c.load_store += 1;
            if obs.migratory_writes > 0 {
                c.migratory += 1;
            }
        } else if writers == 1 {
            c.producer_consumer += 1;
        } else {
            c.irregular += 1;
        }
        // Orthogonal: written and foreign-accessed word footprints are
        // disjoint — all coherence on this block is per-word useless at
        // this block size.
        if accessors.len() >= 2 && writers >= 1 {
            let disjoint = accessors.iter().all(|&a| {
                accessors
                    .iter()
                    .all(|&b| a == b || obs.written_words[a] & obs.accessed_words[b] == 0)
            });
            if disjoint {
                c.false_sharing_candidates += 1;
            }
        }
    }
    c
}

/// Analyze a captured trace under a machine geometry/protocol. The exact
/// counters in the result match what the engine reports when (re)playing
/// the same trace under the same config.
pub fn analyze(cfg: &MachineConfig, trace: &Trace) -> Result<AnalysisSummary, String> {
    cfg.validate()?;
    if cfg.nodes < trace.procs() {
        return Err(format!(
            "trace uses {} processors, machine has {}",
            trace.procs(),
            cfg.nodes
        ));
    }
    let mut replay = Replay::new(*cfg);
    let mut ideal = Ideal::new(cfg.nodes as usize, cfg.block_bytes());
    let mut comp = vec![Component::App; trace.procs() as usize];
    let mut accesses = 0u64;
    for e in trace.events() {
        let p = e.proc as usize;
        let id = NodeId(e.proc);
        match e.op {
            TraceOp::Load(a) => {
                accesses += 1;
                ideal.load(p, a);
                replay.load(id, a);
            }
            TraceOp::Store(a, _) => {
                accesses += 1;
                ideal.store(p, a);
                replay.store(id, a, comp[p]);
            }
            TraceOp::LoadExclusive(a) => {
                accesses += 1;
                ideal.load_exclusive(p, a);
                replay.load_exclusive(id, a);
            }
            TraceOp::Busy(_) => {}
            TraceOp::SetComponent(c) => comp[p] = c,
        }
    }
    let patterns = classify(&ideal.blocks);
    let oracle = replay.oracle.stats().total();
    let dir = replay.dir_stats();
    Ok(AnalysisSummary {
        protocol: cfg.protocol.kind.label().to_string(),
        nodes: cfg.nodes,
        block_bytes: cfg.block_bytes(),
        events: trace.len() as u64,
        accesses,
        blocks: ideal.blocks.len() as u64,
        private_blocks: patterns.private,
        read_shared_blocks: patterns.read_shared,
        producer_consumer_blocks: patterns.producer_consumer,
        load_store_blocks: patterns.load_store,
        migratory_blocks: patterns.migratory,
        irregular_blocks: patterns.irregular,
        false_sharing_candidates: patterns.false_sharing_candidates,
        ideal_global_reads: ideal.totals.global_reads,
        ideal_global_writes: ideal.totals.global_writes,
        ideal_ls_writes: ideal.totals.ls_writes,
        ideal_migratory_writes: ideal.totals.migratory_writes,
        global_reads: dir.global_reads,
        global_writes: oracle.global_writes,
        ls_writes: oracle.ls_writes,
        migratory_writes: oracle.migratory_writes,
        eliminated: oracle.eliminated,
        eliminated_ls: oracle.eliminated_ls,
        eliminated_migratory: oracle.eliminated_migratory,
        silent_stores: replay.silent_stores,
        ls_upper_bound: oracle.ls_writes,
        false_sharing_fraction: replay.fs.stats().false_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::{replay, Trace, TraceEvent};
    use ccsim_types::ProtocolKind;

    fn cfg(kind: ProtocolKind) -> MachineConfig {
        MachineConfig::splash_baseline(kind)
    }

    fn ev(proc: u16, op: TraceOp) -> TraceEvent {
        TraceEvent { proc, op }
    }

    fn trace(procs: u16, events: Vec<TraceEvent>) -> Trace {
        Trace::from_events(procs, events).expect("valid test trace")
    }

    /// Addresses far enough apart to live on distinct blocks at any of the
    /// standard geometries.
    fn a(i: u64) -> Addr {
        Addr(i * 4096)
    }

    #[test]
    fn exact_counters_match_engine_on_a_toy_trace() {
        // P0 runs two LS sequences on block 0; P1 interleaves one on the
        // same block (migratory hand-off); block 1 is read-shared.
        let t = trace(
            2,
            vec![
                ev(0, TraceOp::Load(a(0))),
                ev(0, TraceOp::Store(a(0), 1)),
                ev(1, TraceOp::Load(a(0))),
                ev(1, TraceOp::Store(a(0), 2)),
                ev(0, TraceOp::Load(a(0))),
                ev(0, TraceOp::Store(a(0), 3)),
                ev(0, TraceOp::Load(a(1))),
                ev(1, TraceOp::Load(a(1))),
            ],
        );
        for kind in [ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls] {
            let c = cfg(kind);
            let engine = replay(c, &t, &[]);
            let s = analyze(&c, &t).unwrap();
            let o = engine.oracle.total();
            assert_eq!(s.global_writes, o.global_writes, "{kind:?}");
            assert_eq!(s.ls_writes, o.ls_writes, "{kind:?}");
            assert_eq!(s.migratory_writes, o.migratory_writes, "{kind:?}");
            assert_eq!(s.eliminated, o.eliminated, "{kind:?}");
            assert_eq!(s.eliminated_ls, o.eliminated_ls, "{kind:?}");
            assert_eq!(s.silent_stores, engine.machine.silent_stores, "{kind:?}");
            assert_eq!(s.global_reads, engine.dir.global_reads, "{kind:?}");
            assert!(s.eliminated_ls <= s.ls_upper_bound, "{kind:?}");
        }
    }

    #[test]
    fn ideal_counts_see_through_finite_caches() {
        // All three sequences are LS in the stream; under the idealized
        // infinite cache nothing is ever replaced.
        let t = trace(
            2,
            vec![
                ev(0, TraceOp::Load(a(0))),
                ev(0, TraceOp::Store(a(0), 1)),
                ev(1, TraceOp::Load(a(0))),
                ev(1, TraceOp::Store(a(0), 2)),
                ev(0, TraceOp::Load(a(0))),
                ev(0, TraceOp::Store(a(0), 3)),
            ],
        );
        let s = analyze(&cfg(ProtocolKind::Ls), &t).unwrap();
        assert_eq!(s.ideal_global_writes, 3);
        assert_eq!(s.ideal_ls_writes, 3);
        assert_eq!(s.ideal_migratory_writes, 2);
        assert_eq!(s.load_store_blocks, 1);
        assert_eq!(s.migratory_blocks, 1);
    }

    #[test]
    fn block_labels_cover_the_taxonomy() {
        let t = trace(
            2,
            vec![
                // Block 0: private (only P0 touches it).
                ev(0, TraceOp::Load(a(0))),
                // Block 1: read-shared (both read, nobody writes).
                ev(0, TraceOp::Load(a(1))),
                ev(1, TraceOp::Load(a(1))),
                // Block 2: producer-consumer (P0 writes blind, P1 reads) —
                // no load before the store, so never an LS sequence.
                ev(0, TraceOp::Store(a(2), 1)),
                ev(1, TraceOp::Load(a(2))),
                ev(0, TraceOp::Store(a(2), 2)),
                ev(1, TraceOp::Load(a(2))),
                // Block 3: load-store, not migratory (only P0 sequences,
                // P1 just reads once in between).
                ev(0, TraceOp::Load(a(3))),
                ev(0, TraceOp::Store(a(3), 1)),
                ev(1, TraceOp::Load(a(3))),
                ev(0, TraceOp::Load(a(3))),
                ev(0, TraceOp::Store(a(3), 2)),
                // Block 4: irregular (both write blind — no sequences, two
                // writers).
                ev(0, TraceOp::Store(a(4), 1)),
                ev(1, TraceOp::Store(a(4), 2)),
            ],
        );
        let s = analyze(&cfg(ProtocolKind::Baseline), &t).unwrap();
        assert_eq!(s.blocks, 5);
        assert_eq!(s.private_blocks, 1);
        assert_eq!(s.read_shared_blocks, 1);
        assert_eq!(s.producer_consumer_blocks, 1);
        assert_eq!(s.load_store_blocks, 1);
        assert_eq!(s.migratory_blocks, 0);
        assert_eq!(s.irregular_blocks, 1);
    }

    #[test]
    fn false_sharing_candidate_requires_disjoint_word_footprints() {
        let block_bytes = cfg(ProtocolKind::Baseline).block_bytes();
        assert!(block_bytes >= 16, "need two distinct words");
        // Same block, different words: P0 writes word 0, P1 reads word 1.
        let t = trace(
            2,
            vec![
                ev(0, TraceOp::Store(Addr(0), 1)),
                ev(1, TraceOp::Load(Addr(8))),
            ],
        );
        let s = analyze(&cfg(ProtocolKind::Baseline), &t).unwrap();
        assert_eq!(s.false_sharing_candidates, 1);
        // Overlapping words: not a candidate.
        let t = trace(
            2,
            vec![
                ev(0, TraceOp::Store(Addr(0), 1)),
                ev(1, TraceOp::Load(Addr(0))),
            ],
        );
        let s = analyze(&cfg(ProtocolKind::Baseline), &t).unwrap();
        assert_eq!(s.false_sharing_candidates, 0);
    }

    #[test]
    fn load_exclusive_pairs_count_like_the_engine() {
        let t = trace(
            1,
            vec![
                ev(0, TraceOp::LoadExclusive(a(0))),
                ev(0, TraceOp::Store(a(0), 1)),
            ],
        );
        for kind in [ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls] {
            let c = cfg(kind);
            let engine = replay(c, &t, &[]);
            let s = analyze(&c, &t).unwrap();
            let o = engine.oracle.total();
            assert_eq!(s.global_writes, o.global_writes, "{kind:?}");
            assert_eq!(s.eliminated, o.eliminated, "{kind:?}");
            assert_eq!(s.silent_stores, engine.machine.silent_stores, "{kind:?}");
        }
    }

    #[test]
    fn analyze_rejects_too_few_nodes() {
        let t = trace(64, vec![ev(63, TraceOp::Load(a(0)))]);
        let c = cfg(ProtocolKind::Ls);
        assert!(c.nodes < 64);
        assert!(analyze(&c, &t).is_err());
    }
}
