//! `ccsim-lint`: zero-dependency static analysis for the workspace.
//!
//! Two passes, surfaced as the `ccsim lint` and `ccsim analyze`
//! subcommands:
//!
//! - [`source`] (pass 1) lints the workspace's Rust sources with a
//!   hand-rolled token scanner ([`lexer`]) for determinism and
//!   race-hazard laws: no `RandomState`-hashed maps or sets outside tests,
//!   no wall-clock reads in simulator crates, no `unwrap`/`expect` on the
//!   protocol paths of `crates/core` and `crates/engine`, and
//!   `testing`-feature hygiene for corruption hooks. Violations are
//!   suppressible only via justified `// ccsim-lint: allow(<rule>): <why>`
//!   comments.
//! - [`analysis`] (pass 2) statically classifies a captured access trace
//!   per the paper's sharing-pattern taxonomy and replays its coherence
//!   consequences without timing, yielding counters that exactly match the
//!   engine's LS oracle — an independent check of the simulator, exported
//!   as [`ccsim_stats::AnalysisSummary`].

pub mod analysis;
pub mod lexer;
pub mod source;

pub use analysis::analyze;
pub use source::{explain, lint_file, lint_workspace, Diagnostic, LintConfig, RULES};
