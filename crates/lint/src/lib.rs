//! `ccsim-lint`: zero-dependency static analysis for the workspace.
//!
//! Two passes, surfaced as the `ccsim lint` and `ccsim analyze`
//! subcommands:
//!
//! - [`source`] (pass 1) lints the workspace's Rust sources for
//!   determinism and race-hazard laws. It is a three-layer semantic
//!   analyzer: a hand-rolled token scanner ([`lexer`]), a lossy
//!   recursive-descent parser ([`parse`] → [`ast`]) that recovers item
//!   structure and full expression trees, and a workspace pass
//!   ([`resolve`] → [`callgraph`] → [`taint`]) that builds a symbol table
//!   and approximate call graph to run interprocedural rules: global
//!   lock-order cycle detection, nondeterminism taint tracking from
//!   sources (wall clock, `RandomState`, unvetted env reads) into
//!   determinism sinks (canonical JSON, cache keys, event logs), and
//!   panic-path reachability from the replay-commit and
//!   directory-mutation entry points. Violations are suppressible only
//!   via justified `// ccsim-lint: allow(<rule>): <why>` comments.
//!   [`sarif`] renders diagnostics as SARIF 2.1.0 for code-scanning UIs.
//! - [`analysis`] (pass 2) statically classifies a captured access trace
//!   per the paper's sharing-pattern taxonomy and replays its coherence
//!   consequences without timing, yielding counters that exactly match the
//!   engine's LS oracle — an independent check of the simulator, exported
//!   as [`ccsim_stats::AnalysisSummary`].

pub mod analysis;
pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod resolve;
pub mod sarif;
pub mod source;
pub mod taint;

pub use analysis::analyze;
pub use source::{explain, lint_file, lint_sources, lint_workspace, Diagnostic, LintConfig, RULES};
