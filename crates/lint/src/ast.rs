//! A lossy-but-faithful Rust AST for the semantic lint passes.
//!
//! The shape is deliberately smaller than real Rust: types, generics, and
//! patterns are reduced to what the rules need (names, binding lists, line
//! numbers), and macro invocation bodies are opaque (`MacroCall` records the
//! name and skips the tokens — see DESIGN.md §6e for the soundness caveats
//! that follow). What *is* kept is kept faithfully: item structure, `use` /
//! `mod` nesting, attributes with their cfg gates, and full expression trees
//! for function bodies including closures, control flow, and call/method/
//! field/index chains — everything the call graph, taint, and lock-order
//! passes walk.
//!
//! Every node carries the 1-based source line it starts on so diagnostics
//! pin exact locations. The `render` functions produce a stable, indented
//! s-expression-like text used by the golden snapshot tests.

/// One parsed source file.
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    /// Inner (`#![...]`) attributes at file scope.
    pub inner_attrs: Vec<Attr>,
    pub items: Vec<Item>,
    /// Parse errors. Empty on every workspace file (pinned by the parser
    /// self-check test); non-empty means the parser lost sync and recovered.
    pub errors: Vec<ParseError>,
}

#[derive(Clone, Debug)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

/// An attribute (`#[...]` or `#![...]`), reduced to its rendered token text
/// plus the two classifications the rules care about.
#[derive(Clone, Debug)]
pub struct Attr {
    pub line: u32,
    /// Rendered token text of the bracket body, e.g. `cfg(test)`.
    pub text: String,
    /// Marks test-only code: `#[test]`, `#[cfg(test)]`, `feature = "testing"`.
    pub testish: bool,
}

#[derive(Clone, Debug)]
pub struct Item {
    pub attrs: Vec<Attr>,
    /// Line of the item keyword (not its attributes).
    pub line: u32,
    pub kind: ItemKind,
}

#[derive(Clone, Debug)]
pub enum ItemKind {
    /// `mod name;` (items `None`) or `mod name { ... }`.
    Mod {
        name: String,
        items: Option<Vec<Item>>,
    },
    /// `use` tree, rendered as flat text (`std::sync::{Arc, Mutex}`).
    Use {
        tree: String,
    },
    Fn(FnDef),
    /// `impl Ty { .. }` / `impl Trait for Ty { .. }`. `ty` is the base type
    /// name with generics stripped (`Machine`, not `Machine<'a, B>`).
    Impl {
        ty: String,
        trait_name: Option<String>,
        items: Vec<Item>,
    },
    Trait {
        name: String,
        items: Vec<Item>,
    },
    Struct {
        name: String,
    },
    Enum {
        name: String,
    },
    Union {
        name: String,
    },
    /// `const NAME: T = init;` — `init` kept so string constants (env var
    /// names) can be resolved by the taint pass. `None` in trait position.
    Const {
        name: String,
        init: Option<Expr>,
    },
    Static {
        name: String,
        init: Option<Expr>,
    },
    TypeAlias {
        name: String,
    },
    /// `macro_rules! name { ... }` — body skipped.
    MacroDef {
        name: String,
    },
    /// Item-position macro invocation, body skipped.
    MacroCall {
        name: String,
    },
    /// `extern "C" { ... }` foreign block.
    ExternBlock {
        items: Vec<Item>,
    },
    /// `extern crate name;`
    ExternCrate {
        name: String,
    },
}

#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parameter binding names in order. A receiver is recorded as `self`;
    /// destructuring patterns contribute every bound name.
    pub params: Vec<String>,
    /// `None` for bodiless trait/extern declarations.
    pub body: Option<Block>,
}

#[derive(Clone, Debug, Default)]
pub struct Block {
    pub line: u32,
    pub stmts: Vec<Stmt>,
}

#[derive(Clone, Debug)]
pub enum Stmt {
    Let {
        line: u32,
        /// Names bound by the pattern (`let (a, b) = ..` binds both).
        binds: Vec<String>,
        init: Option<Expr>,
        /// `let .. else { .. }` diverging block.
        else_block: Option<Block>,
    },
    /// Expression statement. `semi: false` on the last statement of a block
    /// makes it the block's value (tail expression).
    Expr {
        expr: Expr,
        semi: bool,
    },
    Item(Item),
}

#[derive(Clone, Debug)]
pub enum LitKind {
    Str(String),
    Num(String),
}

/// A match arm. Patterns are reduced to their bound names.
#[derive(Clone, Debug)]
pub struct Arm {
    pub line: u32,
    pub binds: Vec<String>,
    pub guard: Option<Box<Expr>>,
    pub body: Expr,
}

#[derive(Clone, Debug)]
pub enum Expr {
    /// Possibly-qualified path: `x`, `self.y` is *not* a path (see `Field`),
    /// `ccsim_util::FxHashMap` has segs `["ccsim_util", "FxHashMap"]`.
    Path {
        line: u32,
        segs: Vec<String>,
    },
    Lit {
        line: u32,
        kind: LitKind,
    },
    Call {
        line: u32,
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    MethodCall {
        line: u32,
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
    },
    Field {
        line: u32,
        base: Box<Expr>,
        name: String,
    },
    Index {
        line: u32,
        base: Box<Expr>,
        index: Box<Expr>,
    },
    /// Macro invocation in expression position; arguments are opaque.
    MacroCall {
        line: u32,
        name: String,
    },
    StructLit {
        line: u32,
        path: Vec<String>,
        /// `(field_name, value)`; shorthand `Foo { x }` yields `("x", Path x)`.
        fields: Vec<(String, Expr)>,
        /// `..base` functional-update expression.
        rest: Option<Box<Expr>>,
    },
    Closure {
        line: u32,
        params: Vec<String>,
        body: Box<Expr>,
    },
    Block(Block),
    If {
        line: u32,
        /// Names bound by an `if let` pattern (empty for a plain `if`).
        binds: Vec<String>,
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match {
        line: u32,
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
    },
    While {
        line: u32,
        binds: Vec<String>,
        cond: Box<Expr>,
        body: Block,
    },
    Loop {
        line: u32,
        body: Block,
    },
    For {
        line: u32,
        binds: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    /// `lhs op rhs` for binary operators (`+`, `==`, `&&`, ...).
    Binary {
        line: u32,
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Prefix `-x`, `!x`, `*x`, `&x`, `&mut x` (op `-`/`!`/`*`/`&`).
    Unary {
        line: u32,
        op: char,
        expr: Box<Expr>,
    },
    /// `lhs = rhs` or compound `lhs += rhs` (op `"="`, `"+="`, ...).
    Assign {
        line: u32,
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Range {
        line: u32,
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    /// `expr?`
    Try {
        line: u32,
        expr: Box<Expr>,
    },
    /// `expr as T` — the type is dropped.
    Cast {
        line: u32,
        expr: Box<Expr>,
    },
    Return {
        line: u32,
        expr: Option<Box<Expr>>,
    },
    Break {
        line: u32,
        expr: Option<Box<Expr>>,
    },
    Continue {
        line: u32,
    },
    Tuple {
        line: u32,
        elems: Vec<Expr>,
    },
    Array {
        line: u32,
        elems: Vec<Expr>,
    },
    /// A construct the parser recognized but does not model (e.g. `..` in a
    /// position it cannot classify). Never produced for workspace code.
    Unknown {
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Range { line, .. }
            | Expr::Try { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line, .. }
            | Expr::Continue { line }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::Block(b) => b.line,
        }
    }
}

// ---------------------------------------------------------------------------
// Pre-order traversal for the fact-gathering passes.
// ---------------------------------------------------------------------------

/// Visit every expression in `b` in pre-order (approximating source/execution
/// order). Nested items inside the block are *not* entered — they are
/// separate declarations in the workspace table.
pub fn walk_block<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Pre-order visit of `e` and all subexpressions (including closure bodies).
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Path { .. }
        | Expr::Lit { .. }
        | Expr::MacroCall { .. }
        | Expr::Continue { .. }
        | Expr::Unknown { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::StructLit { fields, rest, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
            if let Some(r) = rest {
                walk_expr(r, f);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Block(b) => walk_block(b, f),
        Expr::If {
            cond, then, els, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::Loop { body, .. } => walk_block(body, f),
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            walk_expr(expr, f)
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
        Expr::Return { expr, .. } | Expr::Break { expr, .. } => {
            if let Some(e) = expr {
                walk_expr(e, f);
            }
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for e in elems {
                walk_expr(e, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stable rendering for golden snapshot tests.
// ---------------------------------------------------------------------------

impl SourceFile {
    pub fn render(&self) -> String {
        let mut out = String::from("file\n");
        for a in &self.inner_attrs {
            out.push_str(&format!("  inner-attr[{}] {}\n", a.line, a.text));
        }
        for item in &self.items {
            render_item(item, 1, &mut out);
        }
        for e in &self.errors {
            out.push_str(&format!("  error[{}] {}\n", e.line, e.msg));
        }
        out
    }
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_item(item: &Item, depth: usize, out: &mut String) {
    for a in &item.attrs {
        pad(depth, out);
        let gate = if a.testish { " (testish)" } else { "" };
        out.push_str(&format!("attr[{}] {}{}\n", a.line, a.text, gate));
    }
    pad(depth, out);
    match &item.kind {
        ItemKind::Mod { name, items } => {
            out.push_str(&format!("mod[{}] {}\n", item.line, name));
            if let Some(items) = items {
                for it in items {
                    render_item(it, depth + 1, out);
                }
            }
        }
        ItemKind::Use { tree } => out.push_str(&format!("use[{}] {}\n", item.line, tree)),
        ItemKind::Fn(f) => {
            out.push_str(&format!(
                "fn[{}] {}({})\n",
                f.line,
                f.name,
                f.params.join(", ")
            ));
            if let Some(b) = &f.body {
                render_block(b, depth + 1, out);
            }
        }
        ItemKind::Impl {
            ty,
            trait_name,
            items,
        } => {
            match trait_name {
                Some(t) => out.push_str(&format!("impl[{}] {} for {}\n", item.line, t, ty)),
                None => out.push_str(&format!("impl[{}] {}\n", item.line, ty)),
            }
            for it in items {
                render_item(it, depth + 1, out);
            }
        }
        ItemKind::Trait { name, items } => {
            out.push_str(&format!("trait[{}] {}\n", item.line, name));
            for it in items {
                render_item(it, depth + 1, out);
            }
        }
        ItemKind::Struct { name } => out.push_str(&format!("struct[{}] {}\n", item.line, name)),
        ItemKind::Enum { name } => out.push_str(&format!("enum[{}] {}\n", item.line, name)),
        ItemKind::Union { name } => out.push_str(&format!("union[{}] {}\n", item.line, name)),
        ItemKind::Const { name, init } => {
            out.push_str(&format!("const[{}] {}\n", item.line, name));
            if let Some(e) = init {
                render_expr(e, depth + 1, out);
            }
        }
        ItemKind::Static { name, init } => {
            out.push_str(&format!("static[{}] {}\n", item.line, name));
            if let Some(e) = init {
                render_expr(e, depth + 1, out);
            }
        }
        ItemKind::TypeAlias { name } => out.push_str(&format!("type[{}] {}\n", item.line, name)),
        ItemKind::MacroDef { name } => {
            out.push_str(&format!("macro-def[{}] {}\n", item.line, name))
        }
        ItemKind::MacroCall { name } => {
            out.push_str(&format!("macro-item[{}] {}!\n", item.line, name))
        }
        ItemKind::ExternBlock { items } => {
            out.push_str(&format!("extern-block[{}]\n", item.line));
            for it in items {
                render_item(it, depth + 1, out);
            }
        }
        ItemKind::ExternCrate { name } => {
            out.push_str(&format!("extern-crate[{}] {}\n", item.line, name))
        }
    }
}

fn render_block(b: &Block, depth: usize, out: &mut String) {
    pad(depth, out);
    out.push_str(&format!("block[{}]\n", b.line));
    for s in &b.stmts {
        match s {
            Stmt::Let {
                line,
                binds,
                init,
                else_block,
            } => {
                pad(depth + 1, out);
                out.push_str(&format!("let[{}] {}\n", line, binds.join(", ")));
                if let Some(e) = init {
                    render_expr(e, depth + 2, out);
                }
                if let Some(b) = else_block {
                    pad(depth + 2, out);
                    out.push_str("else\n");
                    render_block(b, depth + 2, out);
                }
            }
            Stmt::Expr { expr, semi } => {
                pad(depth + 1, out);
                out.push_str(if *semi { "semi\n" } else { "tail\n" });
                render_expr(expr, depth + 2, out);
            }
            Stmt::Item(it) => render_item(it, depth + 1, out),
        }
    }
}

fn render_expr(e: &Expr, depth: usize, out: &mut String) {
    pad(depth, out);
    match e {
        Expr::Path { line, segs } => out.push_str(&format!("path[{}] {}\n", line, segs.join("::"))),
        Expr::Lit { line, kind } => match kind {
            LitKind::Str(s) => out.push_str(&format!("str[{}] {:?}\n", line, s)),
            LitKind::Num(n) => out.push_str(&format!("num[{}] {}\n", line, n)),
        },
        Expr::Call { line, callee, args } => {
            out.push_str(&format!("call[{}]\n", line));
            render_expr(callee, depth + 1, out);
            for a in args {
                render_expr(a, depth + 1, out);
            }
        }
        Expr::MethodCall {
            line,
            recv,
            method,
            args,
        } => {
            out.push_str(&format!("method[{}] .{}\n", line, method));
            render_expr(recv, depth + 1, out);
            for a in args {
                render_expr(a, depth + 1, out);
            }
        }
        Expr::Field { line, base, name } => {
            out.push_str(&format!("field[{}] .{}\n", line, name));
            render_expr(base, depth + 1, out);
        }
        Expr::Index { line, base, index } => {
            out.push_str(&format!("index[{}]\n", line));
            render_expr(base, depth + 1, out);
            render_expr(index, depth + 1, out);
        }
        Expr::MacroCall { line, name } => out.push_str(&format!("macro[{}] {}!\n", line, name)),
        Expr::StructLit {
            line,
            path,
            fields,
            rest,
        } => {
            out.push_str(&format!("struct-lit[{}] {}\n", line, path.join("::")));
            for (name, val) in fields {
                pad(depth + 1, out);
                out.push_str(&format!("field-init {}\n", name));
                render_expr(val, depth + 2, out);
            }
            if let Some(r) = rest {
                pad(depth + 1, out);
                out.push_str("rest\n");
                render_expr(r, depth + 2, out);
            }
        }
        Expr::Closure { line, params, body } => {
            out.push_str(&format!("closure[{}] |{}|\n", line, params.join(", ")));
            render_expr(body, depth + 1, out);
        }
        Expr::Block(b) => {
            out.push_str("block-expr\n");
            render_block(b, depth + 1, out);
        }
        Expr::If {
            line,
            binds,
            cond,
            then,
            els,
        } => {
            if binds.is_empty() {
                out.push_str(&format!("if[{}]\n", line));
            } else {
                out.push_str(&format!("if-let[{}] {}\n", line, binds.join(", ")));
            }
            render_expr(cond, depth + 1, out);
            render_block(then, depth + 1, out);
            if let Some(e) = els {
                pad(depth + 1, out);
                out.push_str("else\n");
                render_expr(e, depth + 2, out);
            }
        }
        Expr::Match {
            line,
            scrutinee,
            arms,
        } => {
            out.push_str(&format!("match[{}]\n", line));
            render_expr(scrutinee, depth + 1, out);
            for arm in arms {
                pad(depth + 1, out);
                out.push_str(&format!("arm[{}] {}\n", arm.line, arm.binds.join(", ")));
                if let Some(g) = &arm.guard {
                    pad(depth + 2, out);
                    out.push_str("guard\n");
                    render_expr(g, depth + 3, out);
                }
                render_expr(&arm.body, depth + 2, out);
            }
        }
        Expr::While {
            line,
            binds,
            cond,
            body,
        } => {
            if binds.is_empty() {
                out.push_str(&format!("while[{}]\n", line));
            } else {
                out.push_str(&format!("while-let[{}] {}\n", line, binds.join(", ")));
            }
            render_expr(cond, depth + 1, out);
            render_block(body, depth + 1, out);
        }
        Expr::Loop { line, body } => {
            out.push_str(&format!("loop[{}]\n", line));
            render_block(body, depth + 1, out);
        }
        Expr::For {
            line,
            binds,
            iter,
            body,
        } => {
            out.push_str(&format!("for[{}] {}\n", line, binds.join(", ")));
            render_expr(iter, depth + 1, out);
            render_block(body, depth + 1, out);
        }
        Expr::Binary { line, op, lhs, rhs } => {
            out.push_str(&format!("binary[{}] {}\n", line, op));
            render_expr(lhs, depth + 1, out);
            render_expr(rhs, depth + 1, out);
        }
        Expr::Unary { line, op, expr } => {
            out.push_str(&format!("unary[{}] {}\n", line, op));
            render_expr(expr, depth + 1, out);
        }
        Expr::Assign { line, op, lhs, rhs } => {
            out.push_str(&format!("assign[{}] {}\n", line, op));
            render_expr(lhs, depth + 1, out);
            render_expr(rhs, depth + 1, out);
        }
        Expr::Range { line, lo, hi } => {
            out.push_str(&format!("range[{}]\n", line));
            if let Some(e) = lo {
                render_expr(e, depth + 1, out);
            }
            if let Some(e) = hi {
                render_expr(e, depth + 1, out);
            }
        }
        Expr::Try { line, expr } => {
            out.push_str(&format!("try[{}]\n", line));
            render_expr(expr, depth + 1, out);
        }
        Expr::Cast { line, expr } => {
            out.push_str(&format!("cast[{}]\n", line));
            render_expr(expr, depth + 1, out);
        }
        Expr::Return { line, expr } => {
            out.push_str(&format!("return[{}]\n", line));
            if let Some(e) = expr {
                render_expr(e, depth + 1, out);
            }
        }
        Expr::Break { line, expr } => {
            out.push_str(&format!("break[{}]\n", line));
            if let Some(e) = expr {
                render_expr(e, depth + 1, out);
            }
        }
        Expr::Continue { line } => out.push_str(&format!("continue[{}]\n", line)),
        Expr::Tuple { line, elems } => {
            out.push_str(&format!("tuple[{}]\n", line));
            for e in elems {
                render_expr(e, depth + 1, out);
            }
        }
        Expr::Array { line, elems } => {
            out.push_str(&format!("array[{}]\n", line));
            for e in elems {
                render_expr(e, depth + 1, out);
            }
        }
        Expr::Unknown { line } => out.push_str(&format!("unknown[{}]\n", line)),
    }
}
