//! Pass 1: source lints over the workspace — token stream and semantic.
//!
//! Every rule here guards a project law that the run cache, the fault-soak
//! oracles, and the model checker's counterexample replay all depend on:
//! bit-for-bit determinism and fail-loud protocol paths. The token rules
//! (`randomstate`, `wall-clock`, `unwrap`, …) scan each file's lexed stream;
//! the semantic rules (`lock-order`, `guard-across-fanout`,
//! `lock-order-global`, `determinism-taint`, `panic-path`) run on the parsed
//! ASTs of *all* files at once, through the [`crate::resolve`] symbol table,
//! the [`crate::callgraph`] approximate call graph, and the [`crate::taint`]
//! dataflow pass. Comments, strings, and test code never trigger false
//! positives.
//!
//! Suppression is explicit only: a `// ccsim-lint: allow(<rule>): <why>`
//! comment on the offending line, the line directly above it, or stacked
//! with other allow comments directly above it; the justification text is
//! mandatory — a bare `allow` is itself a violation (`bad-allow`). Two
//! extensions for the interprocedural rules: an `allow(unwrap)` also covers
//! the `panic-path` finding at the same site, and an `allow(panic-path)`
//! placed on a function's attributes/header line covers every panic site in
//! that function.

use crate::ast::{Block, Expr, SourceFile, Stmt};
use crate::callgraph::{CallGraph, Event};
use crate::lexer::{lex, Allow, Lexed, Tok, Token};
use crate::parse::parse;
use crate::resolve::{FnDecl, Workspace};
use crate::taint;
use ccsim_util::{Json, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Rule identifiers, in reporting order.
pub const RULE_RANDOMSTATE: &str = "randomstate";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_TESTING_GATE: &str = "testing-gate";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_GUARD_FANOUT: &str = "guard-across-fanout";
pub const RULE_LOCK_ORDER_GLOBAL: &str = "lock-order-global";
pub const RULE_DETERMINISM_TAINT: &str = "determinism-taint";
pub const RULE_PANIC_PATH: &str = "panic-path";
pub const RULE_UNBOUNDED_RETRY: &str = "unbounded-retry";
pub const RULE_DEBUG_RESIDUE: &str = "debug-residue";
pub const RULE_BAD_ALLOW: &str = "bad-allow";

/// Static description of one rule, for `--explain`.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: RULE_RANDOMSTATE,
        summary: "no RandomState-hashed HashMap/HashSet outside tests",
        explain: "std::collections::HashMap and HashSet default to RandomState, which \
seeds SipHash from the OS at process start. Iteration order then differs \
between runs, and anything derived from it (message order, float summation \
order, cache keys) breaks bit-for-bit determinism — the property the run \
cache, fault-soak oracles, and counterexample replay all assume. Use \
ccsim_util::FxHashMap / FxHashSet (or any explicit deterministic hasher — a \
third HashMap / second HashSet type parameter is accepted), or a sorted \
structure. Test code (#[test], #[cfg(test)]) is exempt.",
    },
    RuleInfo {
        id: RULE_WALL_CLOCK,
        summary: "no Instant::now/SystemTime::now in simulator crates",
        explain: "Simulated time must come from the engine clock; reading the host's \
wall clock inside simulator code either leaks nondeterminism into results or \
silently measures the wrong thing. Bench and harness timing code is \
allowlisted (crates/bench, crates/harness measure real elapsed time on \
purpose). Anywhere else, annotate a deliberate wall-clock read (e.g. \
progress reporting) with ccsim-lint: allow(wall-clock) and a justification.",
    },
    RuleInfo {
        id: RULE_UNWRAP,
        summary: "no unwrap()/expect() on protocol paths (crates/core, crates/engine)",
        explain: "A panic inside the directory or the machine aborts a simulation with \
no structured report, which defeats the invariant checker and the fail-safe \
harness. Non-test code in crates/core and crates/engine must return \
structured errors, or — where the invariant is locally provable — use an \
expect whose message states the invariant, annotated with ccsim-lint: \
allow(unwrap) and a one-line proof sketch.",
    },
    RuleInfo {
        id: RULE_TESTING_GATE,
        summary: "corruption/mutation hooks must be behind #[cfg(feature = \"testing\")]",
        explain: "Functions that deliberately corrupt simulator state (corrupt_* / \
*_for_test) exist so mutation tests can prove the checkers have teeth. If one \
is compiled into a normal build it becomes a latent footgun callable from \
release code. Every such hook must sit behind #[cfg(feature = \"testing\")] \
(or #[cfg(test)]).",
    },
    RuleInfo {
        id: RULE_LOCK_ORDER,
        summary: "lock acquisition order must be consistent across a file",
        explain: "Two locks taken in opposite orders on two code paths can deadlock the \
moment both paths run concurrently — exactly what the JobSet worker pool and \
the per-processor simulation threads do. The rule records, within each \
function, the order in which named lock receivers are acquired (every \
`.lock()` on a dotted receiver path such as `self.stats`), and reports any \
receiver pair observed in both orders anywhere in the same file. Keep one \
global order, or narrow one guard's scope so the two locks are never held \
together.",
    },
    RuleInfo {
        id: RULE_GUARD_FANOUT,
        summary: "no lock guard held across a JobSet fan-out",
        explain: "JobSet::run / run_with / run_checked / run_checked_with (and the \
run_protocols helper) block the calling thread until a pool of worker threads \
has drained every job. A guard bound by `let g = ....lock()` that is still \
live at such a call is held for the entire fan-out: any worker touching the \
same lock deadlocks the pool, and even when none does, the guard serializes \
unrelated work behind an accident of scoping. Copy what you need out of the \
guard and release it — an explicit drop(g) or a narrower block — before \
fanning out.",
    },
    RuleInfo {
        id: RULE_LOCK_ORDER_GLOBAL,
        summary: "lock acquisitions must not form a cycle across the workspace call graph",
        explain: "The per-file `lock-order` rule only sees a conflict when both orders \
appear in one file. This rule builds the workspace-wide acquisition graph \
instead: within every function it records which locks may still be held when \
another lock is acquired — directly, or inside any function the code reaches \
through the (approximate, name-resolved) call graph — and reports every cycle \
in that graph. A cycle means two executions can each hold one lock while \
waiting for the other: a deadlock that needs nothing beyond scheduling. The \
diagnostic carries the full witness path — each edge with its file, line, and \
function, including the call hop that imported a callee's locks. Break the \
cycle by reordering acquisitions or narrowing a guard's scope. Two-lock \
cycles confined to a single file stay the per-file `lock-order` rule's \
report, not this one's.",
    },
    RuleInfo {
        id: RULE_DETERMINISM_TAINT,
        summary: "nondeterministic values must not flow into determinism sinks",
        explain: "The token rules catch nondeterminism at its source; this rule follows \
the value. A field-insensitive dataflow pass propagates taint from \
nondeterminism sources (wall-clock reads, `RandomState` construction, \
thread/process identity, environment reads whose variable name is not a \
CCSIM_-prefixed literal) through assignments, returns, and workspace call \
edges into determinism sinks: the run/serve cache keys, canonical JSON \
export, the event emitter, and the fnv1a64 hasher. A nondeterministic value \
reaching any of those breaks bit-for-bit reproducibility of run keys and \
exported results. The diagnostic sits at the source site and names the sink \
and the call path; annotate the source site with ccsim-lint: \
allow(determinism-taint) when the flow is deliberate (e.g. bench wall-time \
columns), or cut the flow. Known gap: taint routed exclusively through a \
macro body (e.g. `format!`) is invisible — macro arguments are opaque to the \
parser.",
    },
    RuleInfo {
        id: RULE_PANIC_PATH,
        summary: "no reachable panic on replay-commit or directory-mutation paths",
        explain: "`unwrap` sees one call site at a time; this rule asks what the commit \
entry points actually reach. Starting from the replay-commit entry \
(`ReplayState::apply`) and every directory mutation (`Directory` and \
`DirTable` `read`/`write`/`replacement`/`read_forward_result`/\
`write_forward_result`), it walks the approximate call graph and reports \
every potential panic site — `.unwrap()`, `.expect(..)`, panic-family \
macros, and `[..]` indexing — in reachable protocol-crate code, each with \
its entry → site call chain as a witness. A panic on these paths aborts a \
simulation mid-commit with no structured report. Return errors instead, or \
justify: a site-level allow(unwrap) also covers the panic-path finding at \
the same site, and an allow(panic-path) on the function's attribute/header \
lines covers every site in that function. `assert!`/`debug_assert!` are \
deliberately not flagged — they are the safety net, not an accident.",
    },
    RuleInfo {
        id: RULE_UNBOUNDED_RETRY,
        summary: "bare `loop` retries in crates/engine and crates/network need a documented bound",
        explain: "The engine's request path and the recovery transport re-issue messages \
until they get through; a retry loop whose termination argument lives only in \
the author's head is how a lossy interconnect turns into a hang. A bare \
`loop {}` has no structural bound — only `break` ends it — so inside \
crates/engine/src and crates/network/src every one must state its bound \
(capped backoff, bounded fault streaks, scheduler progress) in a ccsim-lint: \
allow(unbounded-retry) justification on the loop. `for`/`while` loops carry \
their bound in the header and are exempt.",
    },
    RuleInfo {
        id: RULE_DEBUG_RESIDUE,
        summary: "no todo!/unimplemented!/dbg!/eprintln! on protocol paths",
        explain: "The protocol crates (crates/core, crates/engine, crates/model) are the \
paths the parametric verifier, the model checker, and the engine replay all \
prove things about. A todo!() or unimplemented!() there is a reachable panic \
that a rule mutation or a rare interleaving can detonate in release builds; \
dbg!() and eprintln! are leftover print-debugging that pollutes CLI/harness \
output (several gates parse stdout/stderr) and can hide behind a hot path. \
Test code (#[test], #[cfg(test)], #[cfg(feature = \"testing\")]) is exempt. \
A deliberate operator-facing diagnostic must carry ccsim-lint: \
allow(debug-residue) with a justification.",
    },
    RuleInfo {
        id: RULE_BAD_ALLOW,
        summary: "allow directives must name a known rule and carry a justification",
        explain: "Suppressions are part of the audit trail: ccsim-lint: allow(<rule>): \
<why> must parse, reference a rule this linter knows, and include a non-empty \
justification. A malformed or bare allow is reported instead of silently \
suppressing (or silently failing to suppress) a diagnostic.",
    },
];

/// Look up the long-form explanation for a rule id.
pub fn explain(rule: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == rule)
}

fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("file", Json::Str(self.file.clone())),
            ("line", Json::U64(u64::from(self.line))),
            ("rule", Json::Str(self.rule.to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// Scoping knobs. `workspace()` encodes this repository's layout; tests use
/// `all_rules()` to lint fixture sources with every rule in force.
pub struct LintConfig {
    /// Path prefixes where the `unwrap` rule applies (protocol paths).
    pub unwrap_scope: Vec<String>,
    /// Path prefixes where the `wall-clock` rule is suspended (code that
    /// legitimately measures host time).
    pub wall_clock_allowlist: Vec<String>,
    /// Path prefixes where the `unbounded-retry` rule applies (retry-prone
    /// request/transport code).
    pub retry_scope: Vec<String>,
    /// Path prefixes where the `debug-residue` rule applies (protocol paths
    /// the checkers prove things about).
    pub debug_residue_scope: Vec<String>,
    /// Entry points of the `panic-path` reachability walk: `Ty::method`
    /// qualified names, or bare names for free functions.
    pub panic_entries: Vec<String>,
    /// Path prefixes where reachable panic sites are reported.
    pub panic_scope: Vec<String>,
}

impl LintConfig {
    /// The configuration `ccsim lint` runs with.
    pub fn workspace() -> Self {
        LintConfig {
            unwrap_scope: vec!["crates/core/src/".into(), "crates/engine/src/".into()],
            wall_clock_allowlist: vec!["crates/bench/".into(), "crates/harness/".into()],
            retry_scope: vec!["crates/engine/src/".into(), "crates/network/src/".into()],
            debug_residue_scope: vec![
                "crates/core/src/".into(),
                "crates/engine/src/".into(),
                "crates/model/src/".into(),
            ],
            panic_entries: [
                "ReplayState::apply",
                "Directory::read",
                "Directory::write",
                "Directory::replacement",
                "Directory::read_forward_result",
                "Directory::write_forward_result",
                "DirTable::read",
                "DirTable::write",
                "DirTable::replacement",
                "DirTable::read_forward_result",
                "DirTable::write_forward_result",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            panic_scope: vec!["crates/core/src/".into(), "crates/engine/src/".into()],
        }
    }

    /// Every rule applies to every file — used to exercise fixtures. The
    /// `panic-path` walk starts from any function named `commit_frame`, the
    /// fixture stand-in for the replay-commit entry.
    pub fn all_rules() -> Self {
        LintConfig {
            unwrap_scope: vec![String::new()],
            wall_clock_allowlist: Vec::new(),
            retry_scope: vec![String::new()],
            debug_residue_scope: vec![String::new()],
            panic_entries: vec!["commit_frame".into()],
            panic_scope: vec![String::new()],
        }
    }

    fn unwrap_applies(&self, file: &str) -> bool {
        self.unwrap_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn wall_clock_applies(&self, file: &str) -> bool {
        !self
            .wall_clock_allowlist
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn retry_applies(&self, file: &str) -> bool {
        self.retry_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn debug_residue_applies(&self, file: &str) -> bool {
        self.debug_residue_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn panic_applies(&self, file: &str) -> bool {
        self.panic_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }
}

/// Lint one file's source text. `file` is the workspace-relative path used
/// both for scoping decisions and in diagnostics. Interprocedural rules see
/// only this one file — use [`lint_sources`] for cross-file analysis.
pub fn lint_file(file: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    lint_sources(&[(file.to_string(), src.to_string())], cfg)
}

/// A justified, known-rule allow with its resolved coverage. `target` is the
/// first non-allow line at or below the comment: a stack of allow comments
/// directly above a statement all cover that statement.
struct AllowTarget<'a> {
    allow: &'a Allow,
    target: u32,
}

fn resolve_allow_targets(allows: &[Allow]) -> Vec<AllowTarget<'_>> {
    let lines: BTreeSet<u32> = allows.iter().map(|a| a.line).collect();
    allows
        .iter()
        .filter(|a| known_rule(&a.rule) && !a.justification.is_empty())
        .map(|a| {
            let mut target = a.line + 1;
            while lines.contains(&target) {
                target += 1;
            }
            AllowTarget { allow: a, target }
        })
        .collect()
}

/// Does an allow for `allow_rule` suppress a diagnostic of `diag_rule` at
/// the same site? Identity, plus: `unwrap` allows carry over to `panic-path`
/// (same site, same justification — the reachability finding adds the chain,
/// not a new obligation).
fn allow_covers_rule(allow_rule: &str, diag_rule: &str) -> bool {
    allow_rule == diag_rule || (diag_rule == RULE_PANIC_PATH && allow_rule == RULE_UNWRAP)
}

/// Lint a set of sources as one workspace: per-file token rules, then the
/// semantic rules (AST + symbol table + call graph + taint) across all
/// files together. `files` holds `(workspace-relative path, source text)`;
/// diagnostics come back grouped in input file order, sorted by line.
pub fn lint_sources(files: &[(String, String)], cfg: &LintConfig) -> Vec<Diagnostic> {
    let lexed: Vec<Lexed> = files.iter().map(|(_, src)| lex(src)).collect();
    let asts: Vec<(String, SourceFile)> = files
        .iter()
        .zip(&lexed)
        .map(|((path, _), lx)| (path.clone(), parse(&lx.tokens)))
        .collect();
    let mut diags = Vec::new();

    // Layer 1: token rules, file by file.
    for ((file, _), lx) in files.iter().zip(&lexed) {
        let toks = &lx.tokens;
        let exempt = exempt_mask(toks);
        rule_randomstate(file, toks, &exempt, &mut diags);
        if cfg.wall_clock_applies(file) {
            rule_wall_clock(file, toks, &exempt, &mut diags);
        }
        if cfg.unwrap_applies(file) {
            rule_unwrap(file, toks, &exempt, &mut diags);
        }
        rule_testing_gate(file, toks, &exempt, &mut diags);
        if cfg.retry_applies(file) {
            rule_unbounded_retry(file, toks, &exempt, &mut diags);
        }
        if cfg.debug_residue_applies(file) {
            rule_debug_residue(file, toks, &exempt, &mut diags);
        }
    }

    // Layers 2+3: the semantic rules over the whole input set.
    let ws = Workspace::build(&asts);
    let cg = CallGraph::build(&ws);
    let allow_targets: BTreeMap<&str, Vec<AllowTarget>> = files
        .iter()
        .zip(&lexed)
        .map(|((file, _), lx)| (file.as_str(), resolve_allow_targets(&lx.allows)))
        .collect();
    rule_lock_order(&ws, &cg, &mut diags);
    rule_guard_fanout(&ws, &cg, &mut diags);
    rule_lock_order_global(&ws, &cg, &mut diags);
    rule_determinism_taint(&ws, cfg, &mut diags);
    rule_panic_path(&ws, &cg, cfg, &allow_targets, &mut diags);

    // Suppression: a justified allow for a covering rule on the diagnostic's
    // line, or targeting it from (a stack of) comment lines directly above.
    diags.retain(|d| {
        let Some(allows) = allow_targets.get(d.file.as_str()) else {
            return true;
        };
        !allows.iter().any(|a| {
            allow_covers_rule(&a.allow.rule, d.rule)
                && (a.allow.line == d.line || a.target == d.line)
        })
    });

    // Malformed / unknown / unjustified allows are findings themselves.
    for ((file, _), lx) in files.iter().zip(&lexed) {
        for a in &lx.allows {
            if a.rule.is_empty() {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: a.line,
                    rule: RULE_BAD_ALLOW,
                    message: "malformed directive — expected `ccsim-lint: allow(<rule>): <why>`"
                        .to_string(),
                });
            } else if !known_rule(&a.rule) {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: a.line,
                    rule: RULE_BAD_ALLOW,
                    message: format!("unknown rule `{}` in allow directive", a.rule),
                });
            } else if a.justification.is_empty() {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: a.line,
                    rule: RULE_BAD_ALLOW,
                    message: format!(
                        "allow({}) without a justification — state why the suppression is sound",
                        a.rule
                    ),
                });
            }
        }
    }

    let rank: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, (p, _))| (p.as_str(), i))
        .collect();
    diags.sort_by(|a, b| {
        (rank.get(a.file.as_str()), a.line, a.rule).cmp(&(
            rank.get(b.file.as_str()),
            b.line,
            b.rule,
        ))
    });
    diags
}

/// Enumerate the Rust sources `ccsim lint` covers: `src/**/*.rs` of the root
/// package and `crates/*/src/**/*.rs`, sorted for deterministic output.
/// Test directories (`tests/`, `benches/`, `examples/`) are intentionally
/// outside the walk — the rules only bind library/binary code.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs(&member.join("src"), &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every workspace source file under `root` as one unit, so the
/// interprocedural rules see cross-crate call edges.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(lint_sources(&sources, cfg))
}

// ---------------------------------------------------------------------------
// Exempt regions: #[test] / #[cfg(test)] / #[cfg(feature = "testing")] items.
// ---------------------------------------------------------------------------

fn is_sym(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Sym(s), .. }) if *s == c)
}

fn is_ident(toks: &[Token], i: usize, name: &str) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

/// Index of the matching close bracket for the open bracket at `open`,
/// counting only that bracket pair (token streams are balanced per kind).
fn match_bracket(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if let Tok::Sym(s) = toks[i].tok {
            if s == oc {
                depth += 1;
            } else if s == cc {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    toks.len() - 1
}

/// Does an attribute body mark test-only code? True for a standalone `test`
/// ident (covers `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`, and
/// attr macros like `#[tokio::test]`) unless wrapped in `not(...)`, and for
/// `feature = "testing"`.
pub(crate) fn attr_is_testish(toks: &[Token]) -> bool {
    for k in 0..toks.len() {
        if let Tok::Ident(name) = &toks[k].tok {
            if name == "test" {
                let negated = k >= 2
                    && matches!(&toks[k - 2].tok, Tok::Ident(n) if n == "not")
                    && matches!(toks[k - 1].tok, Tok::Sym('('));
                if !negated {
                    return true;
                }
            }
            if name == "feature"
                && matches!(
                    toks.get(k + 1),
                    Some(Token {
                        tok: Tok::Sym('='),
                        ..
                    })
                )
                && matches!(toks.get(k + 2), Some(Token { tok: Tok::Str(s), .. }) if s == "testing")
            {
                return true;
            }
        }
    }
    false
}

/// Find the end of the item starting at `from` (past its attributes): the
/// matching `}` of the first top-level brace, or the first top-level `;`.
fn item_end(toks: &[Token], from: usize) -> usize {
    let mut i = from;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Sym('#') => {
                // A further attribute on the same item: jump past it.
                let open = if is_sym(toks, i + 1, '!') {
                    i + 2
                } else {
                    i + 1
                };
                if is_sym(toks, open, '[') {
                    i = match_bracket(toks, open, '[', ']') + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Sym(';') => return i,
            Tok::Sym('{') => return match_bracket(toks, i, '{', '}'),
            Tok::Sym('(') => i = match_bracket(toks, i, '(', ')') + 1,
            Tok::Sym('[') => i = match_bracket(toks, i, '[', ']') + 1,
            _ => i += 1,
        }
    }
    toks.len().saturating_sub(1)
}

/// Per-token mask: true where the token belongs to a test-exempt item.
fn exempt_mask(toks: &[Token]) -> Vec<bool> {
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if is_sym(toks, i, '#') {
            let inner = is_sym(toks, i + 1, '!');
            let open = if inner { i + 2 } else { i + 1 };
            if is_sym(toks, open, '[') {
                let close = match_bracket(toks, open, '[', ']');
                if attr_is_testish(&toks[open + 1..close]) {
                    if inner {
                        // `#![cfg(test)]`: the whole file is test-only.
                        mask.iter_mut().for_each(|m| *m = true);
                        return mask;
                    }
                    let end = item_end(toks, close + 1).min(n - 1);
                    mask[i..=end].iter_mut().for_each(|m| *m = true);
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// After `HashMap`/`HashSet` at `i`, does a generic-argument list supply a
/// custom hasher (3rd param for maps, 2nd for sets)? Handles turbofish and
/// skips `->` so `Fn() -> T` inside a parameter never closes the list early.
fn names_custom_hasher(toks: &[Token], i: usize, is_map: bool) -> bool {
    let mut j = i + 1;
    if is_sym(toks, j, ':') && is_sym(toks, j + 1, ':') && is_sym(toks, j + 2, '<') {
        j += 2; // turbofish `HashMap::<...>`
    }
    if !is_sym(toks, j, '<') {
        return false;
    }
    let mut depth = 0i32;
    let mut top_commas = 0u32;
    let mut k = j;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Sym('<') => depth += 1,
            // `->` return-type arrows are not closing angle brackets.
            Tok::Sym('>') if !(k > 0 && matches!(toks[k - 1].tok, Tok::Sym('-'))) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Sym('(') => {
                k = match_bracket(toks, k, '(', ')');
            }
            Tok::Sym('[') => {
                k = match_bracket(toks, k, '[', ']');
            }
            Tok::Sym(',') if depth == 1 => top_commas += 1,
            _ => {}
        }
        k += 1;
    }
    let needed = if is_map { 2 } else { 1 };
    top_commas >= needed
}

fn rule_randomstate(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let is_map = name == "HashMap";
        if !is_map && name != "HashSet" {
            continue;
        }
        if names_custom_hasher(toks, i, is_map) {
            continue;
        }
        // `HashMap::with_hasher(..)` / `with_capacity_and_hasher(..)` name a
        // hasher explicitly even without generics spelled out.
        if is_sym(toks, i + 1, ':')
            && is_sym(toks, i + 2, ':')
            && matches!(toks.get(i + 3), Some(Token { tok: Tok::Ident(m), .. }) if m.contains("hasher"))
        {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_RANDOMSTATE,
            message: format!(
                "`{name}` defaults to RandomState — use `ccsim_util::Fx{name}` or name a \
deterministic hasher"
            ),
        });
    }
}

fn rule_wall_clock(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        if is_sym(toks, i + 1, ':') && is_sym(toks, i + 2, ':') && is_ident(toks, i + 3, "now") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: toks[i].line,
                rule: RULE_WALL_CLOCK,
                message: format!(
                    "`{name}::now()` reads the host wall clock — simulated time must come \
from the engine clock"
                ),
            });
        }
    }
}

fn rule_debug_residue(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !matches!(name.as_str(), "todo" | "unimplemented" | "dbg" | "eprintln") {
            continue;
        }
        // A macro invocation is ident `!` followed by a delimiter — this
        // keeps `a != b` with an unlucky identifier from matching.
        if !is_sym(toks, i + 1, '!') {
            continue;
        }
        let delim =
            is_sym(toks, i + 2, '(') || is_sym(toks, i + 2, '[') || is_sym(toks, i + 2, '{');
        if !delim {
            continue;
        }
        let what = match name.as_str() {
            "todo" | "unimplemented" => "is a reachable panic on a protocol path",
            _ => "is leftover print-debugging on a protocol path",
        };
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_DEBUG_RESIDUE,
            message: format!("`{name}!` {what} — remove it or justify with an allow"),
        });
    }
}

fn rule_unwrap(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !is_sym(toks, i, '.') {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
            ..
        }) = toks.get(i + 1)
        else {
            continue;
        };
        if i + 1 < exempt.len() && exempt[i + 1] {
            continue;
        }
        let is_unwrap = name == "unwrap";
        if (is_unwrap || name == "expect") && is_sym(toks, i + 2, '(') {
            let call = if is_unwrap {
                ".unwrap()"
            } else {
                ".expect(..)"
            };
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: RULE_UNWRAP,
                message: format!(
                    "`{call}` on a protocol path — return a structured error, or justify an \
invariant-message expect with an allow comment"
                ),
            });
        }
    }
}

fn rule_testing_gate(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, ex) in exempt.iter().enumerate() {
        if *ex || !is_ident(toks, i, "fn") {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
            ..
        }) = toks.get(i + 1)
        else {
            continue;
        };
        if name.starts_with("corrupt_") || name.ends_with("_for_test") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: RULE_TESTING_GATE,
                message: format!(
                    "corruption hook `fn {name}` must be gated behind \
`#[cfg(feature = \"testing\")]`"
                ),
            });
        }
    }
}

/// Locks with no stable cross-site identity — receivers that go through a
/// call result (`s.get().lock()`) name a fresh object each time, so they
/// carry no ordering information.
fn nameable_lock(lock: &str) -> bool {
    !lock.contains("()") && !lock.contains('?')
}

/// Per-file lock acquisition order, rebuilt on the call-graph's per-function
/// event streams. Within each function the [`Event::Acquire`] sequence (in
/// AST pre-order, closures folded in) is the acquisition order; any receiver
/// pair observed in both orders anywhere in the same file is a conflict.
fn rule_lock_order(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    // Per file: (first, second) → line where that order was first seen.
    let mut seen: BTreeMap<(&str, String, String), u32> = BTreeMap::new();
    let mut flagged: BTreeSet<(&str, String, String)> = BTreeSet::new();
    for f in &ws.fns {
        if f.test_only {
            continue;
        }
        let seq: Vec<(&String, u32)> = cg.facts[f.id]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { line, lock } if nameable_lock(lock) => Some((lock, *line)),
                _ => None,
            })
            .collect();
        // Every ordered pair of distinct receivers is an observation that the
        // first is (possibly) held while the second is acquired.
        for a in 0..seq.len() {
            for b in (a + 1)..seq.len() {
                let (first, _) = &seq[a];
                let (second, line2) = &seq[b];
                if first == second {
                    continue;
                }
                let fwd = (f.file.as_str(), (*first).clone(), (*second).clone());
                let rev = (f.file.as_str(), (*second).clone(), (*first).clone());
                if let Some(&prev_line) = seen.get(&rev) {
                    if flagged.insert(rev.clone()) {
                        out.push(Diagnostic {
                            file: f.file.clone(),
                            line: *line2,
                            rule: RULE_LOCK_ORDER,
                            message: format!(
                                "`{first}` then `{second}` conflicts with the \
`{second}` → `{first}` acquisition order established on line {prev_line} — \
keep one global lock order to rule out deadlock"
                            ),
                        });
                    }
                } else {
                    seen.entry(fwd).or_insert(*line2);
                }
            }
        }
    }
}

/// Blocking fan-out entry points: `JobSet` methods plus the free
/// `run_protocols` helper. Bare `run` only counts as a method call
/// (`.run(..)`) so free functions named `run` elsewhere stay quiet.
const FANOUT_CALLS: &[&str] = &["run", "run_with", "run_checked", "run_checked_with"];

/// Does evaluating this expression yield a live lock guard? `m.lock()` does,
/// as does `.unwrap()`/`.expect(..)` chained onto one, a call to a function
/// that returns one (workspace fixpoint in `guard_fns`), and a block/if/match
/// whose value position yields one. A deref (`*m.lock()`) copies data out —
/// the temporary guard dies at the statement's end, so it does not.
fn yields_guard(e: &Expr, ws: &Workspace, guard_fns: &BTreeSet<usize>) -> bool {
    match e {
        Expr::MethodCall {
            recv, method, args, ..
        } => match method.as_str() {
            "lock" if args.is_empty() => true,
            "unwrap" | "expect" => yields_guard(recv, ws, guard_fns),
            _ => ws
                .named(method)
                .iter()
                .any(|id| guard_fns.contains(id) && ws.fns[*id].has_self()),
        },
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => segs
                .last()
                .map(|name| ws.named(name).iter().any(|id| guard_fns.contains(id)))
                .unwrap_or(false),
            _ => false,
        },
        Expr::Try { expr, .. } => yields_guard(expr, ws, guard_fns),
        Expr::Block(b) => block_tail(b).is_some_and(|t| yields_guard(t, ws, guard_fns)),
        Expr::If { then, els, .. } => {
            block_tail(then).is_some_and(|t| yields_guard(t, ws, guard_fns))
                || els.as_ref().is_some_and(|e| yields_guard(e, ws, guard_fns))
        }
        Expr::Match { arms, .. } => arms.iter().any(|a| yields_guard(&a.body, ws, guard_fns)),
        _ => false,
    }
}

fn block_tail(b: &Block) -> Option<&Expr> {
    match b.stmts.last() {
        Some(Stmt::Expr { expr, semi: false }) => Some(expr),
        _ => None,
    }
}

/// Workspace functions whose return value is (or contains) a lock guard —
/// the helper-escape channel the token-based rule missed. Bounded fixpoint:
/// a function joins the set when its tail expression or any `return` yields
/// a guard given the current set.
fn guard_returning_fns(ws: &Workspace) -> BTreeSet<usize> {
    let mut guard_fns = BTreeSet::new();
    for _ in 0..8 {
        let mut changed = false;
        for f in &ws.fns {
            if guard_fns.contains(&f.id) {
                continue;
            }
            let Some(body) = &f.body else { continue };
            let mut returns_guard =
                block_tail(body).is_some_and(|t| yields_guard(t, ws, &guard_fns));
            if !returns_guard {
                crate::ast::walk_block(body, &mut |e| {
                    if let Expr::Return { expr: Some(r), .. } = e {
                        if yields_guard(r, ws, &guard_fns) {
                            returns_guard = true;
                        }
                    }
                });
            }
            if returns_guard {
                guard_fns.insert(f.id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    guard_fns
}

/// What the post-guard scan is looking for, in source order.
enum GuardEvent {
    /// `drop(<name>)` — the guard is explicitly released.
    Drop,
    /// A blocking fan-out call: line and callee label.
    Fanout(u32, String),
}

/// Collect guard-relevant events from an expression tree in pre-order
/// (approximating evaluation order).
fn guard_events(e: &Expr, name: &str, out: &mut Vec<GuardEvent>) {
    if let Expr::Call { callee, args, .. } = e {
        if let Expr::Path { segs, .. } = callee.as_ref() {
            let f = segs.last().map(String::as_str).unwrap_or("");
            if f == "drop"
                && matches!(args.as_slice(), [Expr::Path { segs, .. }] if segs.len() == 1 && segs[0] == name)
            {
                out.push(GuardEvent::Drop);
                return;
            }
            if f == "run_protocols" {
                out.push(GuardEvent::Fanout(e.line(), "run_protocols".to_string()));
            }
        }
    }
    if let Expr::MethodCall { line, method, .. } = e {
        if FANOUT_CALLS.contains(&method.as_str()) {
            out.push(GuardEvent::Fanout(*line, method.clone()));
        }
    }
    each_child(e, &mut |c| guard_events(c, name, out));
}

/// Visit the direct child expressions of `e` in source order, entering
/// nested blocks (but not nested `fn` items — those are their own
/// functions).
fn each_child<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    let block = |b: &'a Block, f: &mut dyn FnMut(&'a Expr)| {
        for s in &b.stmts {
            match s {
                Stmt::Let { init, .. } => {
                    if let Some(i) = init {
                        f(i);
                    }
                }
                Stmt::Expr { expr, .. } => f(expr),
                Stmt::Item(_) => {}
            }
        }
    };
    match e {
        Expr::Call { callee, args, .. } => {
            f(callee);
            args.iter().for_each(f);
        }
        Expr::MethodCall { recv, args, .. } => {
            f(recv);
            args.iter().for_each(f);
        }
        Expr::Field { base, .. } => f(base),
        Expr::Index { base, index, .. } => {
            f(base);
            f(index);
        }
        Expr::StructLit { fields, rest, .. } => {
            fields.iter().for_each(|(_, v)| f(v));
            if let Some(r) = rest {
                f(r);
            }
        }
        Expr::Closure { body, .. } => f(body),
        Expr::Block(b) => block(b, f),
        Expr::If {
            cond, then, els, ..
        } => {
            f(cond);
            block(then, f);
            if let Some(e) = els {
                f(e);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            f(scrutinee);
            for a in arms {
                if let Some(g) = &a.guard {
                    f(g);
                }
                f(&a.body);
            }
        }
        Expr::While { cond, body, .. } => {
            f(cond);
            block(body, f);
        }
        Expr::Loop { body, .. } => block(body, f),
        Expr::For { iter, body, .. } => {
            f(iter);
            block(body, f);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => f(expr),
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                f(e);
            }
            if let Some(e) = hi {
                f(e);
            }
        }
        Expr::Return { expr, .. } | Expr::Break { expr, .. } => {
            if let Some(e) = expr {
                f(e);
            }
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => elems.iter().for_each(f),
        Expr::Path { .. }
        | Expr::Lit { .. }
        | Expr::MacroCall { .. }
        | Expr::Continue { .. }
        | Expr::Unknown { .. } => {}
    }
}

/// Nested blocks directly inside an expression, without descending into the
/// blocks themselves (the caller recurses).
fn expr_blocks<'a>(e: &'a Expr, out: &mut Vec<&'a Block>) {
    match e {
        Expr::Block(b) | Expr::Loop { body: b, .. } => out.push(b),
        Expr::If {
            cond, then, els, ..
        } => {
            expr_blocks(cond, out);
            out.push(then);
            if let Some(e) = els {
                expr_blocks(e, out);
            }
        }
        Expr::While { cond, body, .. } => {
            expr_blocks(cond, out);
            out.push(body);
        }
        Expr::For { iter, body, .. } => {
            expr_blocks(iter, out);
            out.push(body);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            expr_blocks(scrutinee, out);
            for a in arms {
                expr_blocks(&a.body, out);
            }
        }
        Expr::Closure { body, .. } => expr_blocks(body, out),
        _ => each_child(e, &mut |c| expr_blocks(c, out)),
    }
}

/// Guard-across-fan-out, rebuilt on the AST. A guard is a single-name `let`
/// whose initializer yields a lock guard — including through a
/// guard-returning helper function, the escape the token scan could not see.
/// The guard is live to the end of its enclosing block unless `drop(name)`
/// releases it; any fan-out call in that window is a report.
fn rule_guard_fanout(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let _ = cg;
    let guard_fns = guard_returning_fns(ws);
    for f in &ws.fns {
        if f.test_only {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut blocks: Vec<&Block> = vec![body];
        while let Some(b) = blocks.pop() {
            for (i, s) in b.stmts.iter().enumerate() {
                // Queue nested blocks for their own guard scans.
                match s {
                    Stmt::Let {
                        init, else_block, ..
                    } => {
                        if let Some(e) = init {
                            expr_blocks(e, &mut blocks);
                        }
                        if let Some(eb) = else_block {
                            blocks.push(eb);
                        }
                    }
                    Stmt::Expr { expr, .. } => expr_blocks(expr, &mut blocks),
                    Stmt::Item(_) => {}
                }
                let Stmt::Let {
                    line: let_line,
                    binds,
                    init: Some(init),
                    ..
                } = s
                else {
                    continue;
                };
                let [name] = binds.as_slice() else { continue };
                if !yields_guard(init, ws, &guard_fns) {
                    continue;
                }
                // Scan the rest of the enclosing block in source order.
                let mut events = Vec::new();
                'scan: for later in &b.stmts[i + 1..] {
                    match later {
                        Stmt::Let { init, .. } => {
                            if let Some(e) = init {
                                guard_events(e, name, &mut events);
                            }
                        }
                        Stmt::Expr { expr, .. } => guard_events(expr, name, &mut events),
                        Stmt::Item(_) => {}
                    }
                    // The first drop or fan-out decides the guard's fate —
                    // one report per guard is enough.
                    if let Some(ev) = events.first() {
                        if let GuardEvent::Fanout(line, call) = ev {
                            out.push(Diagnostic {
                                file: f.file.clone(),
                                line: *line,
                                rule: RULE_GUARD_FANOUT,
                                message: format!(
                                    "lock guard `{name}` (acquired on line {let_line}) is \
still held across `{call}(..)` — the fan-out blocks on worker threads, so \
drop the guard first"
                                ),
                            });
                        }
                        break 'scan;
                    }
                }
            }
        }
    }
}

/// One edge of the workspace lock graph: `held` is still held when `then` is
/// acquired, at `file:line` inside `in_fn` (possibly through a call into
/// `via`).
#[derive(Clone, Debug)]
struct LockEdge {
    file: String,
    line: u32,
    in_fn: String,
    via: Option<String>,
}

/// Workspace-wide lock-order cycles. Edges come from two observations per
/// function: a lock acquired while an earlier-acquired lock is still
/// (conservatively) held, and a call made under a held lock into a function
/// whose transitive closure acquires further locks. Any cycle in the
/// resulting graph is a potential deadlock; cycles confined to one file with
/// only two locks are left to the per-file `lock-order` rule.
fn rule_lock_order_global(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let closure = cg.locks_closure(ws);
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for f in &ws.fns {
        if f.test_only {
            continue;
        }
        let mut held: Vec<&String> = Vec::new();
        for ev in &cg.facts[f.id].events {
            match ev {
                Event::Acquire { line, lock } => {
                    if nameable_lock(lock) {
                        for h in &held {
                            if *h != lock {
                                edges
                                    .entry(((*h).clone(), lock.clone()))
                                    .or_insert_with(|| LockEdge {
                                        file: f.file.clone(),
                                        line: *line,
                                        in_fn: f.qual_name(),
                                        via: None,
                                    });
                            }
                        }
                        if !held.contains(&lock) {
                            held.push(lock);
                        }
                    }
                }
                Event::Call { line, callees } => {
                    if held.is_empty() {
                        continue;
                    }
                    for &c in callees {
                        if ws.fns[c].test_only {
                            continue;
                        }
                        for l in &closure[c] {
                            if !nameable_lock(l) {
                                continue;
                            }
                            for h in &held {
                                if *h != l {
                                    edges.entry(((*h).clone(), l.clone())).or_insert_with(|| {
                                        LockEdge {
                                            file: f.file.clone(),
                                            line: *line,
                                            in_fn: f.qual_name(),
                                            via: Some(ws.fns[c].qual_name()),
                                        }
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Successor map, then one shortest witness cycle per distinct cycle,
    // anchored at its lexicographically smallest lock.
    let mut succ: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (from, to) in edges.keys().map(|(a, b)| (a, b)) {
        succ.entry(from).or_default().push(to);
    }
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        // BFS from `start` back to itself.
        let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut cycle: Option<Vec<&String>> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in succ.get(u).map_or(&[][..], |s| s.as_slice()) {
                if v == start {
                    let mut path = vec![u];
                    while let Some(&p) = prev.get(path.last().unwrap()) {
                        path.push(p);
                    }
                    path.reverse();
                    cycle = Some(path); // start, ..., u
                    break 'bfs;
                }
                if v != start && !prev.contains_key(v) && u != v {
                    prev.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        let Some(cycle) = cycle else { continue };
        // Anchor: only report each cycle once, from its smallest lock.
        if cycle.iter().any(|n| *n < start) {
            continue;
        }
        let key: Vec<String> = {
            let mut k: Vec<String> = cycle.iter().map(|s| (*s).clone()).collect();
            k.sort();
            k
        };
        if !reported.insert(key) {
            continue;
        }
        let edge_infos: Vec<(&String, &String, &LockEdge)> = (0..cycle.len())
            .map(|i| {
                let from = cycle[i];
                let to = cycle[(i + 1) % cycle.len()];
                (from, to, &edges[&(from.clone(), to.clone())])
            })
            .collect();
        let files: BTreeSet<&str> = edge_infos.iter().map(|(_, _, e)| e.file.as_str()).collect();
        if cycle.len() == 2 && files.len() == 1 {
            continue; // the per-file lock-order rule owns this one
        }
        let witness: Vec<String> = edge_infos
            .iter()
            .map(|(from, to, e)| match &e.via {
                Some(callee) => format!(
                    "`{from}` → `{to}` at {}:{} (in `{}`, via call to `{}`)",
                    e.file, e.line, e.in_fn, callee
                ),
                None => format!(
                    "`{from}` → `{to}` at {}:{} (in `{}`)",
                    e.file, e.line, e.in_fn
                ),
            })
            .collect();
        let (_, first_to, first_edge) = &edge_infos[0];
        out.push(Diagnostic {
            file: first_edge.file.clone(),
            line: first_edge.line,
            rule: RULE_LOCK_ORDER_GLOBAL,
            message: format!(
                "acquiring `{first_to}` while holding `{start}` completes a workspace-wide \
lock cycle: {} — keep one global acquisition order to rule out deadlock",
                witness.join("; ")
            ),
        });
    }
}

/// Nondeterminism-taint flows, one diagnostic per (source site, sink name)
/// pair with the shortest witness chain found. Sources inside the wall-clock
/// allowlist (bench/harness measure host time on purpose) are skipped when
/// the source *is* the wall clock; other source kinds there still count.
fn rule_determinism_taint(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let ta = taint::analyze(ws);
    // (source site, sink name) → index of the shortest-chain flow. The
    // fixpoint records one flow per distinct chain and sink site, so the
    // same pair can appear many times.
    let mut best: BTreeMap<(usize, u32, &str), usize> = BTreeMap::new();
    for (i, flow) in ta.flows.iter().enumerate() {
        let src = &ta.sources[flow.src];
        let key = (src.fn_id, src.line, ta.sinks[flow.sink].name.as_str());
        best.entry(key)
            .and_modify(|b| {
                if flow.chain.len() < ta.flows[*b].chain.len() {
                    *b = i;
                }
            })
            .or_insert(i);
    }
    for &i in best.values() {
        let flow = &ta.flows[i];
        let src = &ta.sources[flow.src];
        let sink = &ta.sinks[flow.sink];
        let src_fn = &ws.fns[src.fn_id];
        let sink_fn = &ws.fns[sink.fn_id];
        if src.kind.contains("wall clock") && !cfg.wall_clock_applies(&src_fn.file) {
            continue;
        }
        let path = if flow.chain.len() > 1 {
            format!(" via `{}`", flow.chain.join("` → `"))
        } else {
            String::new()
        };
        out.push(Diagnostic {
            file: src_fn.file.clone(),
            line: src.line,
            rule: RULE_DETERMINISM_TAINT,
            message: format!(
                "{} flows into determinism sink `{}` ({}:{}){path} — nondeterminism here \
breaks bit-for-bit reproducibility of keys and exported results",
                src.kind, sink.name, sink_fn.file, sink.line
            ),
        });
    }
}

/// Is a panic-path diagnostic inside `f` covered by a fn-level allow — one
/// whose comment stack targets the function's attribute/header lines?
fn fn_level_panic_allow(allows: &[AllowTarget], f: &FnDecl) -> bool {
    allows
        .iter()
        .any(|a| a.allow.rule == RULE_PANIC_PATH && a.target >= f.span_start && a.target <= f.line)
}

/// Every potential panic site reachable from the configured entry points,
/// reported with its call chain. Test-only code is outside the walk, and
/// only files in `panic_scope` are reported (the walk itself crosses any
/// file).
fn rule_panic_path(
    ws: &Workspace,
    cg: &CallGraph,
    cfg: &LintConfig,
    allow_targets: &BTreeMap<&str, Vec<AllowTarget>>,
    out: &mut Vec<Diagnostic>,
) {
    let mut entries: Vec<usize> = Vec::new();
    for e in &cfg.panic_entries {
        let ids = if e.contains("::") {
            ws.qualified(e)
        } else {
            ws.named(e)
        };
        entries.extend(ids.iter().copied().filter(|&id| !ws.fns[id].test_only));
    }
    if entries.is_empty() {
        return;
    }
    let parent = cg.reach(ws, &entries);
    for f in &ws.fns {
        if f.test_only || parent[f.id].is_none() || !cfg.panic_applies(&f.file) {
            continue;
        }
        if cg.facts[f.id].panics.is_empty() {
            continue;
        }
        let no_allows = Vec::new();
        let allows = allow_targets.get(f.file.as_str()).unwrap_or(&no_allows);
        if fn_level_panic_allow(allows, f) {
            continue;
        }
        let chain = cg.chain(ws, &parent, f.id);
        let entry = chain.first().cloned().unwrap_or_else(|| f.qual_name());
        let path = chain.join("` → `");
        let mut sites: Vec<_> = cg.facts[f.id].panics.iter().collect();
        sites.dedup_by_key(|s| s.line); // e.g. nested indexing on one line
        for site in sites {
            out.push(Diagnostic {
                file: f.file.clone(),
                line: site.line,
                rule: RULE_PANIC_PATH,
                message: format!(
                    "{} can panic and is reachable from commit entry `{entry}` \
(call chain `{path}`) — return a structured error or justify with an allow",
                    site.kind.describe()
                ),
            });
        }
    }
}

fn rule_unbounded_retry(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] || !is_ident(toks, i, "loop") {
            continue;
        }
        // Only the statement form `loop {` — `loop` as an identifier (a
        // field or variable named loop is not even legal Rust, but labels
        // like `'retry: loop` still hit this arm via the following `{`).
        if !is_sym(toks, i + 1, '{') {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_UNBOUNDED_RETRY,
            message: "bare `loop` on a retry-prone path has no structural bound — cap the \
retries (bounded streaks, capped backoff) and state the bound in an allow \
comment"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn randomstate_flags_default_hasher_only() {
        let cfg = LintConfig::all_rules();
        let src = "
            use std::collections::HashMap;
            fn f() {
                let a: HashMap<u32, u32> = HashMap::new();
                let b: FxHashMap<u32, u32> = FxHashMap::default();
                let c: HashMap<u32, u32, BuildHasherDefault<FxHasher>> = HashMap::with_hasher(h);
                let d = HashSet::<(u32, u32)>::new();
            }
        ";
        let diags = lint_file("x.rs", src, &cfg);
        // `use ... HashMap`, annotation `HashMap<u32,u32>`, `HashMap::new`,
        // and the HashSet with only one generic param (the tuple is nested in
        // parens, so it is a single top-level param).
        assert!(
            diags.iter().all(|d| d.rule == RULE_RANDOMSTATE),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 4, "{diags:?}");
    }

    #[test]
    fn randomstate_accepts_type_aliases_with_custom_hashers() {
        let cfg = LintConfig::all_rules();
        let src = "pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn fn_arrows_inside_generics_do_not_close_the_list() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(m: HashMap<K, Box<dyn Fn(u8) -> u8>, S>) {}";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m = HashMap::new(); m.get(&1).unwrap(); }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(not(test))]
            fn f() { let m = std::collections::HashMap::new(); }
        ";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_RANDOMSTATE]);
    }

    #[test]
    fn debug_residue_flags_macros_with_exact_locations() {
        let cfg = LintConfig::workspace();
        let src = "fn f() {
    todo!();
    dbg!(x);
}
fn g(a: u8, b: u8) -> bool { eprintln!(\"g\"); a != b }
fn h() { unimplemented!() }
";
        let diags = lint_file("crates/core/src/x.rs", src, &cfg);
        let got: Vec<(&str, u32, &'static str)> = diags
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule))
            .collect();
        // `a != b` is ident-`!`-ident, not a macro — it must not match.
        assert_eq!(
            got,
            [
                ("crates/core/src/x.rs", 2, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 3, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 5, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 6, RULE_DEBUG_RESIDUE),
            ],
            "{diags:?}"
        );
        assert!(diags[0].message.contains("todo!"));
        assert!(diags[2].message.contains("eprintln!"));
    }

    #[test]
    fn debug_residue_is_scoped_to_protocol_crates() {
        let cfg = LintConfig::workspace();
        let src = "fn f() { eprintln!(\"progress\"); }";
        assert_eq!(
            rules_of(&lint_file("crates/model/src/x.rs", src, &cfg)),
            [RULE_DEBUG_RESIDUE]
        );
        assert_eq!(
            rules_of(&lint_file("crates/engine/src/x.rs", src, &cfg)),
            [RULE_DEBUG_RESIDUE]
        );
        // Non-protocol crates and the CLI may print to stderr freely.
        assert!(lint_file("crates/stats/src/x.rs", src, &cfg).is_empty());
        assert!(lint_file("src/bin/ccsim.rs", src, &cfg).is_empty());
    }

    #[test]
    fn debug_residue_exempts_tests_and_honors_allows() {
        let cfg = LintConfig::all_rules();
        let test_src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { dbg!(1); eprintln!(\"x\"); }
            }
        ";
        assert!(lint_file("x.rs", test_src, &cfg).is_empty());

        let allowed = "fn f() {
    // ccsim-lint: allow(debug-residue): one-shot operator warning, not debug residue
    eprintln!(\"warning: bad env var\");
}";
        assert!(lint_file("x.rs", allowed, &cfg).is_empty());

        let bare = "fn f() {
    // ccsim-lint: allow(debug-residue)
    eprintln!(\"warning\");
}";
        let diags = lint_file("x.rs", bare, &cfg);
        assert_eq!(rules_of(&diags), [RULE_BAD_ALLOW, RULE_DEBUG_RESIDUE]);
    }

    #[test]
    fn wall_clock_flags_now_calls_and_respects_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/model/src/x.rs", src, &cfg)),
            [RULE_WALL_CLOCK]
        );
        assert!(lint_file("crates/bench/src/x.rs", src, &cfg).is_empty());
        assert!(lint_file("crates/harness/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unwrap_rule_is_scoped_to_protocol_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/core/src/directory.rs", src, &cfg)),
            [RULE_UNWRAP]
        );
        assert!(lint_file("crates/stats/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unwrap_rule_ignores_unwrap_or_variants() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default().min(x.unwrap_or(3)) }";
        assert!(lint_file("crates/core/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_flags_bare_loops_in_scope_only() {
        let src = "fn f() { loop { step(); } }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/engine/src/machine.rs", src, &cfg)),
            [RULE_UNBOUNDED_RETRY]
        );
        assert_eq!(
            rules_of(&lint_file("crates/network/src/lib.rs", src, &cfg)),
            [RULE_UNBOUNDED_RETRY]
        );
        assert!(lint_file("crates/stats/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_accepts_header_bounded_loops() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f(n: u32) {
                for i in 0..n { step(i); }
                while n > 0 { step(n); }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_is_suppressed_by_a_justified_allow() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f() {
                // ccsim-lint: allow(unbounded-retry): backoff capped at 64 cycles
                loop { if step() { break; } }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_exempts_test_code() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { loop { break; } }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn testing_gate_flags_ungated_hooks_and_accepts_gated_ones() {
        let cfg = LintConfig::all_rules();
        let bad = "impl T { pub fn corrupt_entry_for_test(&mut self) {} }";
        assert_eq!(rules_of(&lint_file("x.rs", bad, &cfg)), [RULE_TESTING_GATE]);
        let good = "impl T {
            #[cfg(feature = \"testing\")]
            pub fn corrupt_entry_for_test(&mut self) {}
        }";
        assert!(lint_file("x.rs", good, &cfg).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_line_and_next_line() {
        let cfg = LintConfig::all_rules();
        let trailing = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(wall-clock): progress display only";
        assert!(lint_file("x.rs", trailing, &cfg).is_empty());
        let above = "// ccsim-lint: allow(wall-clock): progress display only\nfn f() { let t = Instant::now(); }";
        assert!(lint_file("x.rs", above, &cfg).is_empty());
    }

    #[test]
    fn bare_or_unknown_allow_is_reported_and_does_not_suppress() {
        let cfg = LintConfig::all_rules();
        let bare = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(wall-clock)";
        let mut rules = rules_of(&lint_file("x.rs", bare, &cfg));
        rules.sort_unstable();
        assert_eq!(rules, [RULE_BAD_ALLOW, RULE_WALL_CLOCK]);
        let unknown = "// ccsim-lint: allow(nosuch): whatever\n";
        assert_eq!(
            rules_of(&lint_file("x.rs", unknown, &cfg)),
            [RULE_BAD_ALLOW]
        );
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let cfg = LintConfig::all_rules();
        let src = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(unwrap): wrong rule";
        assert!(lint_file("x.rs", src, &cfg)
            .iter()
            .any(|d| d.rule == RULE_WALL_CLOCK));
    }

    #[test]
    fn lock_order_conflict_across_functions_is_flagged_once() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
            fn b(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
            fn c(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
        ";
        let diags = lint_file("x.rs", src, &cfg);
        // The conflicting pair is reported exactly once, at its first
        // out-of-order occurrence, even though `c` repeats it.
        assert_eq!(rules_of(&diags), [RULE_LOCK_ORDER], "{diags:?}");
        assert!(diags[0].message.contains("s.stats"), "{diags:?}");
        assert!(diags[0].message.contains("s.cache"), "{diags:?}");
    }

    #[test]
    fn lock_order_consistent_across_functions_is_clean() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
            fn b(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lock_order_ignores_unnameable_receivers_and_test_code() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.get().lock(); let y = s.cache.lock(); }
            #[cfg(test)]
            fn b(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn guard_held_across_fanout_is_flagged() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(set: JobSet, m: &Mutex<u64>) { let g = m.lock(); set.run(); }";
        let diags = lint_file("x.rs", src, &cfg);
        assert_eq!(rules_of(&diags), [RULE_GUARD_FANOUT], "{diags:?}");
        assert!(diags[0].message.contains('g'), "{diags:?}");
    }

    #[test]
    fn guard_released_before_fanout_is_clean() {
        let cfg = LintConfig::all_rules();
        let dropped = "fn f(set: JobSet, m: &Mutex<u64>) { let g = m.lock(); drop(g); set.run(); }";
        assert!(lint_file("x.rs", dropped, &cfg).is_empty());
        let scoped =
            "fn f(set: JobSet, m: &Mutex<u64>) { { let g = m.lock(); } set.run_checked(); }";
        assert!(lint_file("x.rs", scoped, &cfg).is_empty());
    }

    #[test]
    fn free_run_protocols_counts_as_a_fanout() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(m: &Mutex<u64>) { let g = m.lock(); let r = run_protocols(cfg, &s, ks); }";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_GUARD_FANOUT]);
    }

    #[test]
    fn bare_run_idents_are_not_fanouts() {
        let cfg = LintConfig::all_rules();
        // `run` as a variable, and `run(..)` as a free function, are fine —
        // only `.run(..)` method calls and `run_protocols(..)` fan out.
        let src = "fn f(m: &Mutex<u64>) { let g = m.lock(); let run = 3; run_sim(run); run(); }";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn typed_guard_bindings_are_still_tracked() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(set: JobSet, m: &Mutex<u64>) { let g: MutexGuard<u64> = m.lock(); set.run_with(2, mode, dir); }";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_GUARD_FANOUT]);
    }

    #[test]
    fn guard_escaping_through_a_helper_is_flagged() {
        let cfg = LintConfig::all_rules();
        // The token-based scan could not see this: the guard is acquired by
        // `hold`, not by a literal `.lock()` in `f`.
        let src = "
            fn hold(m: &Mutex<u64>) -> MutexGuard<u64> { m.lock() }
            fn f(set: JobSet, m: &Mutex<u64>) { let g = hold(m); set.run(); }
        ";
        let diags = lint_file("x.rs", src, &cfg);
        assert_eq!(rules_of(&diags), [RULE_GUARD_FANOUT], "{diags:?}");
        assert!(diags[0].message.contains("`g`"), "{diags:?}");
    }

    #[test]
    fn deref_of_a_lock_is_not_a_live_guard() {
        let cfg = LintConfig::all_rules();
        // `*m.lock()` copies the value out; the temporary guard dies at the
        // end of the statement, so the fan-out does not run under it.
        let src = "fn f(set: JobSet, m: &Mutex<u64>) { let v = *m.lock(); set.run(); }";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn panic_path_reports_the_call_chain_from_the_entry() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn commit_frame(v: &[u64], i: usize) -> u64 { step(v, i) }
            fn step(v: &[u64], i: usize) -> u64 { v[i] }
        ";
        let diags = lint_file("crates/core/src/x.rs", src, &cfg);
        assert_eq!(rules_of(&diags), [RULE_PANIC_PATH], "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(
            diags[0].message.contains("`commit_frame` → `step`"),
            "{diags:?}"
        );
    }

    #[test]
    fn panic_path_is_covered_by_an_unwrap_allow_at_the_site() {
        let cfg = LintConfig::all_rules();
        // An existing allow(unwrap) also covers the reachability finding at
        // the same site — it adds a chain, not a new obligation.
        let src = "
            fn commit_frame(v: &[u64]) -> u64 {
                // ccsim-lint: allow(unwrap): the slot was populated two lines up
                v.first().unwrap() + 1
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn fn_level_panic_path_allow_covers_the_whole_function() {
        let cfg = LintConfig::all_rules();
        let src = "
            // ccsim-lint: allow(panic-path): indices are bounded by construction
            fn commit_frame(v: &[u64], i: usize) -> u64 { v[i] + v[i + 1] }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
        // ...but only that function: a second reachable site still reports.
        let two = "
            // ccsim-lint: allow(panic-path): indices are bounded by construction
            fn commit_frame(v: &[u64], i: usize) -> u64 { helper(v, i) + v[i] }
            fn helper(v: &[u64], i: usize) -> u64 { v[i] }
        ";
        let diags = lint_file("x.rs", two, &cfg);
        assert_eq!(rules_of(&diags), [RULE_PANIC_PATH], "{diags:?}");
        assert_eq!(diags[0].line, 4, "{diags:?}");
    }

    #[test]
    fn stacked_allows_all_target_the_first_code_line_below() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f() {
                // ccsim-lint: allow(wall-clock): reporting only
                // ccsim-lint: allow(randomstate): fixture exercises both rules
                let (t, m) = (Instant::now(), HashMap::new());
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn determinism_taint_is_suppressed_at_the_source_site() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f() -> String {
                // ccsim-lint: allow(wall-clock): reporting only
                // ccsim-lint: allow(determinism-taint): lands in a comment field
                let t = Instant::now();
                to_json(t)
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for r in RULES {
            assert!(explain(r.id).is_some());
            assert!(!r.explain.is_empty());
        }
    }
}
