//! Pass 1: source lints over the workspace token stream.
//!
//! Every rule here guards a project law that the run cache, the fault-soak
//! oracles, and the model checker's counterexample replay all depend on:
//! bit-for-bit determinism and fail-loud protocol paths. Rules operate on the
//! `lexer` token stream, so comments, strings, and test code never trigger
//! false positives.
//!
//! Suppression is explicit only: a `// ccsim-lint: allow(<rule>): <why>`
//! comment on the offending line or the line directly above it, and the
//! justification text is mandatory — a bare `allow` is itself a violation
//! (`bad-allow`).

use crate::lexer::{lex, Allow, Tok, Token};
use ccsim_util::{Json, ToJson};
use std::path::{Path, PathBuf};

/// Rule identifiers, in reporting order.
pub const RULE_RANDOMSTATE: &str = "randomstate";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_TESTING_GATE: &str = "testing-gate";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_GUARD_FANOUT: &str = "guard-across-fanout";
pub const RULE_UNBOUNDED_RETRY: &str = "unbounded-retry";
pub const RULE_DEBUG_RESIDUE: &str = "debug-residue";
pub const RULE_BAD_ALLOW: &str = "bad-allow";

/// Static description of one rule, for `--explain`.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: RULE_RANDOMSTATE,
        summary: "no RandomState-hashed HashMap/HashSet outside tests",
        explain: "std::collections::HashMap and HashSet default to RandomState, which \
seeds SipHash from the OS at process start. Iteration order then differs \
between runs, and anything derived from it (message order, float summation \
order, cache keys) breaks bit-for-bit determinism — the property the run \
cache, fault-soak oracles, and counterexample replay all assume. Use \
ccsim_util::FxHashMap / FxHashSet (or any explicit deterministic hasher — a \
third HashMap / second HashSet type parameter is accepted), or a sorted \
structure. Test code (#[test], #[cfg(test)]) is exempt.",
    },
    RuleInfo {
        id: RULE_WALL_CLOCK,
        summary: "no Instant::now/SystemTime::now in simulator crates",
        explain: "Simulated time must come from the engine clock; reading the host's \
wall clock inside simulator code either leaks nondeterminism into results or \
silently measures the wrong thing. Bench and harness timing code is \
allowlisted (crates/bench, crates/harness measure real elapsed time on \
purpose). Anywhere else, annotate a deliberate wall-clock read (e.g. \
progress reporting) with ccsim-lint: allow(wall-clock) and a justification.",
    },
    RuleInfo {
        id: RULE_UNWRAP,
        summary: "no unwrap()/expect() on protocol paths (crates/core, crates/engine)",
        explain: "A panic inside the directory or the machine aborts a simulation with \
no structured report, which defeats the invariant checker and the fail-safe \
harness. Non-test code in crates/core and crates/engine must return \
structured errors, or — where the invariant is locally provable — use an \
expect whose message states the invariant, annotated with ccsim-lint: \
allow(unwrap) and a one-line proof sketch.",
    },
    RuleInfo {
        id: RULE_TESTING_GATE,
        summary: "corruption/mutation hooks must be behind #[cfg(feature = \"testing\")]",
        explain: "Functions that deliberately corrupt simulator state (corrupt_* / \
*_for_test) exist so mutation tests can prove the checkers have teeth. If one \
is compiled into a normal build it becomes a latent footgun callable from \
release code. Every such hook must sit behind #[cfg(feature = \"testing\")] \
(or #[cfg(test)]).",
    },
    RuleInfo {
        id: RULE_LOCK_ORDER,
        summary: "lock acquisition order must be consistent across a file",
        explain: "Two locks taken in opposite orders on two code paths can deadlock the \
moment both paths run concurrently — exactly what the JobSet worker pool and \
the per-processor simulation threads do. The rule records, within each \
function, the order in which named lock receivers are acquired (every \
`.lock()` on a dotted receiver path such as `self.stats`), and reports any \
receiver pair observed in both orders anywhere in the same file. Keep one \
global order, or narrow one guard's scope so the two locks are never held \
together.",
    },
    RuleInfo {
        id: RULE_GUARD_FANOUT,
        summary: "no lock guard held across a JobSet fan-out",
        explain: "JobSet::run / run_with / run_checked / run_checked_with (and the \
run_protocols helper) block the calling thread until a pool of worker threads \
has drained every job. A guard bound by `let g = ....lock()` that is still \
live at such a call is held for the entire fan-out: any worker touching the \
same lock deadlocks the pool, and even when none does, the guard serializes \
unrelated work behind an accident of scoping. Copy what you need out of the \
guard and release it — an explicit drop(g) or a narrower block — before \
fanning out.",
    },
    RuleInfo {
        id: RULE_UNBOUNDED_RETRY,
        summary: "bare `loop` retries in crates/engine and crates/network need a documented bound",
        explain: "The engine's request path and the recovery transport re-issue messages \
until they get through; a retry loop whose termination argument lives only in \
the author's head is how a lossy interconnect turns into a hang. A bare \
`loop {}` has no structural bound — only `break` ends it — so inside \
crates/engine/src and crates/network/src every one must state its bound \
(capped backoff, bounded fault streaks, scheduler progress) in a ccsim-lint: \
allow(unbounded-retry) justification on the loop. `for`/`while` loops carry \
their bound in the header and are exempt.",
    },
    RuleInfo {
        id: RULE_DEBUG_RESIDUE,
        summary: "no todo!/unimplemented!/dbg!/eprintln! on protocol paths",
        explain: "The protocol crates (crates/core, crates/engine, crates/model) are the \
paths the parametric verifier, the model checker, and the engine replay all \
prove things about. A todo!() or unimplemented!() there is a reachable panic \
that a rule mutation or a rare interleaving can detonate in release builds; \
dbg!() and eprintln! are leftover print-debugging that pollutes CLI/harness \
output (several gates parse stdout/stderr) and can hide behind a hot path. \
Test code (#[test], #[cfg(test)], #[cfg(feature = \"testing\")]) is exempt. \
A deliberate operator-facing diagnostic must carry ccsim-lint: \
allow(debug-residue) with a justification.",
    },
    RuleInfo {
        id: RULE_BAD_ALLOW,
        summary: "allow directives must name a known rule and carry a justification",
        explain: "Suppressions are part of the audit trail: ccsim-lint: allow(<rule>): \
<why> must parse, reference a rule this linter knows, and include a non-empty \
justification. A malformed or bare allow is reported instead of silently \
suppressing (or silently failing to suppress) a diagnostic.",
    },
];

/// Look up the long-form explanation for a rule id.
pub fn explain(rule: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == rule)
}

fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("file", Json::Str(self.file.clone())),
            ("line", Json::U64(u64::from(self.line))),
            ("rule", Json::Str(self.rule.to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// Scoping knobs. `workspace()` encodes this repository's layout; tests use
/// `all_rules()` to lint fixture sources with every rule in force.
pub struct LintConfig {
    /// Path prefixes where the `unwrap` rule applies (protocol paths).
    pub unwrap_scope: Vec<String>,
    /// Path prefixes where the `wall-clock` rule is suspended (code that
    /// legitimately measures host time).
    pub wall_clock_allowlist: Vec<String>,
    /// Path prefixes where the `unbounded-retry` rule applies (retry-prone
    /// request/transport code).
    pub retry_scope: Vec<String>,
    /// Path prefixes where the `debug-residue` rule applies (protocol paths
    /// the checkers prove things about).
    pub debug_residue_scope: Vec<String>,
}

impl LintConfig {
    /// The configuration `ccsim lint` runs with.
    pub fn workspace() -> Self {
        LintConfig {
            unwrap_scope: vec!["crates/core/src/".into(), "crates/engine/src/".into()],
            wall_clock_allowlist: vec!["crates/bench/".into(), "crates/harness/".into()],
            retry_scope: vec!["crates/engine/src/".into(), "crates/network/src/".into()],
            debug_residue_scope: vec![
                "crates/core/src/".into(),
                "crates/engine/src/".into(),
                "crates/model/src/".into(),
            ],
        }
    }

    /// Every rule applies to every file — used to exercise fixtures.
    pub fn all_rules() -> Self {
        LintConfig {
            unwrap_scope: vec![String::new()],
            wall_clock_allowlist: Vec::new(),
            retry_scope: vec![String::new()],
            debug_residue_scope: vec![String::new()],
        }
    }

    fn unwrap_applies(&self, file: &str) -> bool {
        self.unwrap_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn wall_clock_applies(&self, file: &str) -> bool {
        !self
            .wall_clock_allowlist
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn retry_applies(&self, file: &str) -> bool {
        self.retry_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn debug_residue_applies(&self, file: &str) -> bool {
        self.debug_residue_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }
}

/// Lint one file's source text. `file` is the workspace-relative path used
/// both for scoping decisions and in diagnostics.
pub fn lint_file(file: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let exempt = exempt_mask(toks);
    let mut diags = Vec::new();

    rule_randomstate(file, toks, &exempt, &mut diags);
    if cfg.wall_clock_applies(file) {
        rule_wall_clock(file, toks, &exempt, &mut diags);
    }
    if cfg.unwrap_applies(file) {
        rule_unwrap(file, toks, &exempt, &mut diags);
    }
    rule_testing_gate(file, toks, &exempt, &mut diags);
    rule_lock_order(file, toks, &exempt, &mut diags);
    rule_guard_fanout(file, toks, &exempt, &mut diags);
    if cfg.retry_applies(file) {
        rule_unbounded_retry(file, toks, &exempt, &mut diags);
    }
    if cfg.debug_residue_applies(file) {
        rule_debug_residue(file, toks, &exempt, &mut diags);
    }

    // Apply suppressions: a well-formed, justified allow for the matching
    // rule on the diagnostic's line or the line directly above.
    let effective: Vec<&Allow> = lexed
        .allows
        .iter()
        .filter(|a| known_rule(&a.rule) && !a.justification.is_empty())
        .collect();
    diags.retain(|d| {
        !effective
            .iter()
            .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line))
    });

    for a in &lexed.allows {
        if a.rule.is_empty() {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: RULE_BAD_ALLOW,
                message: "malformed directive — expected `ccsim-lint: allow(<rule>): <why>`"
                    .to_string(),
            });
        } else if !known_rule(&a.rule) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: RULE_BAD_ALLOW,
                message: format!("unknown rule `{}` in allow directive", a.rule),
            });
        } else if a.justification.is_empty() {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: RULE_BAD_ALLOW,
                message: format!(
                    "allow({}) without a justification — state why the suppression is sound",
                    a.rule
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Enumerate the Rust sources `ccsim lint` covers: `src/**/*.rs` of the root
/// package and `crates/*/src/**/*.rs`, sorted for deterministic output.
/// Test directories (`tests/`, `benches/`, `examples/`) are intentionally
/// outside the walk — the rules only bind library/binary code.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs(&member.join("src"), &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        diags.extend(lint_file(&rel, &src, cfg));
    }
    Ok(diags)
}

// ---------------------------------------------------------------------------
// Exempt regions: #[test] / #[cfg(test)] / #[cfg(feature = "testing")] items.
// ---------------------------------------------------------------------------

fn is_sym(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Sym(s), .. }) if *s == c)
}

fn is_ident(toks: &[Token], i: usize, name: &str) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

/// Index of the matching close bracket for the open bracket at `open`,
/// counting only that bracket pair (token streams are balanced per kind).
fn match_bracket(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if let Tok::Sym(s) = toks[i].tok {
            if s == oc {
                depth += 1;
            } else if s == cc {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    toks.len() - 1
}

/// Does an attribute body mark test-only code? True for a standalone `test`
/// ident (covers `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`, and
/// attr macros like `#[tokio::test]`) unless wrapped in `not(...)`, and for
/// `feature = "testing"`.
fn attr_is_testish(toks: &[Token]) -> bool {
    for k in 0..toks.len() {
        if let Tok::Ident(name) = &toks[k].tok {
            if name == "test" {
                let negated = k >= 2
                    && matches!(&toks[k - 2].tok, Tok::Ident(n) if n == "not")
                    && matches!(toks[k - 1].tok, Tok::Sym('('));
                if !negated {
                    return true;
                }
            }
            if name == "feature"
                && matches!(
                    toks.get(k + 1),
                    Some(Token {
                        tok: Tok::Sym('='),
                        ..
                    })
                )
                && matches!(toks.get(k + 2), Some(Token { tok: Tok::Str(s), .. }) if s == "testing")
            {
                return true;
            }
        }
    }
    false
}

/// Find the end of the item starting at `from` (past its attributes): the
/// matching `}` of the first top-level brace, or the first top-level `;`.
fn item_end(toks: &[Token], from: usize) -> usize {
    let mut i = from;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Sym('#') => {
                // A further attribute on the same item: jump past it.
                let open = if is_sym(toks, i + 1, '!') {
                    i + 2
                } else {
                    i + 1
                };
                if is_sym(toks, open, '[') {
                    i = match_bracket(toks, open, '[', ']') + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Sym(';') => return i,
            Tok::Sym('{') => return match_bracket(toks, i, '{', '}'),
            Tok::Sym('(') => i = match_bracket(toks, i, '(', ')') + 1,
            Tok::Sym('[') => i = match_bracket(toks, i, '[', ']') + 1,
            _ => i += 1,
        }
    }
    toks.len().saturating_sub(1)
}

/// Per-token mask: true where the token belongs to a test-exempt item.
fn exempt_mask(toks: &[Token]) -> Vec<bool> {
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if is_sym(toks, i, '#') {
            let inner = is_sym(toks, i + 1, '!');
            let open = if inner { i + 2 } else { i + 1 };
            if is_sym(toks, open, '[') {
                let close = match_bracket(toks, open, '[', ']');
                if attr_is_testish(&toks[open + 1..close]) {
                    if inner {
                        // `#![cfg(test)]`: the whole file is test-only.
                        mask.iter_mut().for_each(|m| *m = true);
                        return mask;
                    }
                    let end = item_end(toks, close + 1).min(n - 1);
                    mask[i..=end].iter_mut().for_each(|m| *m = true);
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// After `HashMap`/`HashSet` at `i`, does a generic-argument list supply a
/// custom hasher (3rd param for maps, 2nd for sets)? Handles turbofish and
/// skips `->` so `Fn() -> T` inside a parameter never closes the list early.
fn names_custom_hasher(toks: &[Token], i: usize, is_map: bool) -> bool {
    let mut j = i + 1;
    if is_sym(toks, j, ':') && is_sym(toks, j + 1, ':') && is_sym(toks, j + 2, '<') {
        j += 2; // turbofish `HashMap::<...>`
    }
    if !is_sym(toks, j, '<') {
        return false;
    }
    let mut depth = 0i32;
    let mut top_commas = 0u32;
    let mut k = j;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Sym('<') => depth += 1,
            // `->` return-type arrows are not closing angle brackets.
            Tok::Sym('>') if !(k > 0 && matches!(toks[k - 1].tok, Tok::Sym('-'))) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Sym('(') => {
                k = match_bracket(toks, k, '(', ')');
            }
            Tok::Sym('[') => {
                k = match_bracket(toks, k, '[', ']');
            }
            Tok::Sym(',') if depth == 1 => top_commas += 1,
            _ => {}
        }
        k += 1;
    }
    let needed = if is_map { 2 } else { 1 };
    top_commas >= needed
}

fn rule_randomstate(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let is_map = name == "HashMap";
        if !is_map && name != "HashSet" {
            continue;
        }
        if names_custom_hasher(toks, i, is_map) {
            continue;
        }
        // `HashMap::with_hasher(..)` / `with_capacity_and_hasher(..)` name a
        // hasher explicitly even without generics spelled out.
        if is_sym(toks, i + 1, ':')
            && is_sym(toks, i + 2, ':')
            && matches!(toks.get(i + 3), Some(Token { tok: Tok::Ident(m), .. }) if m.contains("hasher"))
        {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_RANDOMSTATE,
            message: format!(
                "`{name}` defaults to RandomState — use `ccsim_util::Fx{name}` or name a \
deterministic hasher"
            ),
        });
    }
}

fn rule_wall_clock(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        if is_sym(toks, i + 1, ':') && is_sym(toks, i + 2, ':') && is_ident(toks, i + 3, "now") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: toks[i].line,
                rule: RULE_WALL_CLOCK,
                message: format!(
                    "`{name}::now()` reads the host wall clock — simulated time must come \
from the engine clock"
                ),
            });
        }
    }
}

fn rule_debug_residue(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !matches!(name.as_str(), "todo" | "unimplemented" | "dbg" | "eprintln") {
            continue;
        }
        // A macro invocation is ident `!` followed by a delimiter — this
        // keeps `a != b` with an unlucky identifier from matching.
        if !is_sym(toks, i + 1, '!') {
            continue;
        }
        let delim =
            is_sym(toks, i + 2, '(') || is_sym(toks, i + 2, '[') || is_sym(toks, i + 2, '{');
        if !delim {
            continue;
        }
        let what = match name.as_str() {
            "todo" | "unimplemented" => "is a reachable panic on a protocol path",
            _ => "is leftover print-debugging on a protocol path",
        };
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_DEBUG_RESIDUE,
            message: format!("`{name}!` {what} — remove it or justify with an allow"),
        });
    }
}

fn rule_unwrap(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !is_sym(toks, i, '.') {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
        }) = toks.get(i + 1)
        else {
            continue;
        };
        if i + 1 < exempt.len() && exempt[i + 1] {
            continue;
        }
        let is_unwrap = name == "unwrap";
        if (is_unwrap || name == "expect") && is_sym(toks, i + 2, '(') {
            let call = if is_unwrap {
                ".unwrap()"
            } else {
                ".expect(..)"
            };
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: RULE_UNWRAP,
                message: format!(
                    "`{call}` on a protocol path — return a structured error, or justify an \
invariant-message expect with an allow comment"
                ),
            });
        }
    }
}

fn rule_testing_gate(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, ex) in exempt.iter().enumerate() {
        if *ex || !is_ident(toks, i, "fn") {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
        }) = toks.get(i + 1)
        else {
            continue;
        };
        if name.starts_with("corrupt_") || name.ends_with("_for_test") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: RULE_TESTING_GATE,
                message: format!(
                    "corruption hook `fn {name}` must be gated behind \
`#[cfg(feature = \"testing\")]`"
                ),
            });
        }
    }
}

/// The dotted receiver path of a `.lock(` call, given the index of the `.`
/// directly before `lock`: `self.stats.lock()` → `"self.stats"`. Returns
/// `None` for receivers with no stable name (call results, indexing,
/// parenthesized expressions) — those carry no cross-site order information.
fn receiver_path(toks: &[Token], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // toks[j] is the `.` whose receiver we are naming
    loop {
        let prev = j.checked_sub(1)?;
        let Token {
            tok: Tok::Ident(name),
            ..
        } = &toks[prev]
        else {
            return None;
        };
        parts.push(name.clone());
        if prev >= 1 && is_sym(toks, prev - 1, '.') {
            j = prev - 1;
        } else {
            break;
        }
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Is the token at `i` a lock acquisition — `<receiver>.lock(`?
fn is_lock_call(toks: &[Token], i: usize) -> bool {
    is_ident(toks, i, "lock") && i >= 1 && is_sym(toks, i - 1, '.') && is_sym(toks, i + 1, '(')
}

fn rule_lock_order(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    use std::collections::{BTreeMap, BTreeSet};
    // (first, second) → line where that acquisition order was first seen.
    let mut seen: BTreeMap<(String, String), u32> = BTreeMap::new();
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if exempt[i] || !is_ident(toks, i, "fn") {
            i += 1;
            continue;
        }
        // Find the function body (or the `;` of a bodiless trait method).
        let mut j = i + 1;
        while j < toks.len() && !matches!(toks[j].tok, Tok::Sym(';') | Tok::Sym('{')) {
            j += 1;
        }
        if j >= toks.len() || matches!(toks[j].tok, Tok::Sym(';')) {
            i = j + 1;
            continue;
        }
        let end = match_bracket(toks, j, '{', '}');
        // Acquisition sequence in body order. Closures and nested items are
        // deliberately folded into the enclosing function — the order still
        // describes one syntactic code path.
        let mut seq: Vec<(String, u32)> = Vec::new();
        for k in j..=end {
            if !exempt[k] && is_lock_call(toks, k) {
                if let Some(path) = receiver_path(toks, k - 1) {
                    seq.push((path, toks[k].line));
                }
            }
        }
        // Every ordered pair of distinct receivers is an observation that the
        // first is (possibly) held while the second is acquired.
        for a in 0..seq.len() {
            for b in (a + 1)..seq.len() {
                let (first, _) = &seq[a];
                let (second, line2) = &seq[b];
                if first == second {
                    continue;
                }
                let fwd = (first.clone(), second.clone());
                let rev = (second.clone(), first.clone());
                if let Some(&prev_line) = seen.get(&rev) {
                    if flagged.insert(rev.clone()) {
                        out.push(Diagnostic {
                            file: file.to_string(),
                            line: *line2,
                            rule: RULE_LOCK_ORDER,
                            message: format!(
                                "`{first}` then `{second}` conflicts with the \
`{second}` → `{first}` acquisition order established on line {prev_line} — \
keep one global lock order to rule out deadlock"
                            ),
                        });
                    }
                } else {
                    seen.entry(fwd).or_insert(*line2);
                }
            }
        }
        i = end + 1;
    }
}

/// Blocking fan-out entry points: `JobSet` methods plus the free
/// `run_protocols` helper. Bare `run` only counts as a method call
/// (`.run(`) so free functions named `run` elsewhere stay quiet.
const FANOUT_CALLS: &[&str] = &["run", "run_with", "run_checked", "run_checked_with"];

fn rule_guard_fanout(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    // Brace depth per token: a token's depth is the nesting level it sits at;
    // a `}` carries the depth *outside* the block it closes, so "depth drops
    // below the `let`'s depth" is exactly "the guard's block has ended".
    let mut depth = vec![0i32; toks.len()];
    let mut d = 0i32;
    for (k, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Sym('{') => {
                depth[k] = d;
                d += 1;
            }
            Tok::Sym('}') => {
                d -= 1;
                depth[k] = d;
            }
            _ => depth[k] = d,
        }
    }
    for i in 0..toks.len() {
        if exempt[i] || !is_ident(toks, i, "let") {
            continue;
        }
        // `let [mut] NAME [: Type] = <init> ;`
        let mut j = i + 1;
        if is_ident(toks, j, "mut") {
            j += 1;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line: let_line,
        }) = toks.get(j)
        else {
            continue;
        };
        // Skip an optional type ascription to reach the `=`.
        let mut eq = j + 1;
        while eq < toks.len() && !matches!(toks[eq].tok, Tok::Sym('=') | Tok::Sym(';')) {
            eq += 1;
        }
        if eq >= toks.len() || matches!(toks[eq].tok, Tok::Sym(';')) {
            continue;
        }
        // Find the statement-terminating `;`, skipping nested brackets.
        let mut k = eq + 1;
        let mut semi = None;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Sym('(') => k = match_bracket(toks, k, '(', ')'),
                Tok::Sym('[') => k = match_bracket(toks, k, '[', ']'),
                Tok::Sym('{') => k = match_bracket(toks, k, '{', '}'),
                Tok::Sym(';') => {
                    semi = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(semi) = semi else { continue };
        if !(eq + 1..semi).any(|k| is_lock_call(toks, k)) {
            continue;
        }
        // The guard is live from the `;` until its enclosing block closes or
        // an explicit `drop(name)` releases it.
        let live_depth = depth[i];
        let mut k = semi + 1;
        while k < toks.len() {
            if depth[k] < live_depth {
                break; // enclosing block closed — guard dropped
            }
            if is_ident(toks, k, "drop")
                && is_sym(toks, k + 1, '(')
                && matches!(toks.get(k + 2), Some(Token { tok: Tok::Ident(n), .. }) if n == name)
                && is_sym(toks, k + 3, ')')
            {
                break;
            }
            if let Tok::Ident(f) = &toks[k].tok {
                let is_method_fanout =
                    FANOUT_CALLS.contains(&f.as_str()) && k >= 1 && is_sym(toks, k - 1, '.');
                if (is_method_fanout || f == "run_protocols") && is_sym(toks, k + 1, '(') {
                    out.push(Diagnostic {
                        file: file.to_string(),
                        line: toks[k].line,
                        rule: RULE_GUARD_FANOUT,
                        message: format!(
                            "lock guard `{name}` (acquired on line {let_line}) is still held \
across `{f}(..)` — the fan-out blocks on worker threads, so drop the guard first"
                        ),
                    });
                    break; // one report per guard is enough
                }
            }
            k += 1;
        }
    }
}

fn rule_unbounded_retry(file: &str, toks: &[Token], exempt: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if exempt[i] || !is_ident(toks, i, "loop") {
            continue;
        }
        // Only the statement form `loop {` — `loop` as an identifier (a
        // field or variable named loop is not even legal Rust, but labels
        // like `'retry: loop` still hit this arm via the following `{`).
        if !is_sym(toks, i + 1, '{') {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_UNBOUNDED_RETRY,
            message: "bare `loop` on a retry-prone path has no structural bound — cap the \
retries (bounded streaks, capped backoff) and state the bound in an allow \
comment"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn randomstate_flags_default_hasher_only() {
        let cfg = LintConfig::all_rules();
        let src = "
            use std::collections::HashMap;
            fn f() {
                let a: HashMap<u32, u32> = HashMap::new();
                let b: FxHashMap<u32, u32> = FxHashMap::default();
                let c: HashMap<u32, u32, BuildHasherDefault<FxHasher>> = HashMap::with_hasher(h);
                let d = HashSet::<(u32, u32)>::new();
            }
        ";
        let diags = lint_file("x.rs", src, &cfg);
        // `use ... HashMap`, annotation `HashMap<u32,u32>`, `HashMap::new`,
        // and the HashSet with only one generic param (the tuple is nested in
        // parens, so it is a single top-level param).
        assert!(
            diags.iter().all(|d| d.rule == RULE_RANDOMSTATE),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 4, "{diags:?}");
    }

    #[test]
    fn randomstate_accepts_type_aliases_with_custom_hashers() {
        let cfg = LintConfig::all_rules();
        let src = "pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn fn_arrows_inside_generics_do_not_close_the_list() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(m: HashMap<K, Box<dyn Fn(u8) -> u8>, S>) {}";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m = HashMap::new(); m.get(&1).unwrap(); }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(not(test))]
            fn f() { let m = std::collections::HashMap::new(); }
        ";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_RANDOMSTATE]);
    }

    #[test]
    fn debug_residue_flags_macros_with_exact_locations() {
        let cfg = LintConfig::workspace();
        let src = "fn f() {
    todo!();
    dbg!(x);
}
fn g(a: u8, b: u8) -> bool { eprintln!(\"g\"); a != b }
fn h() { unimplemented!() }
";
        let diags = lint_file("crates/core/src/x.rs", src, &cfg);
        let got: Vec<(&str, u32, &'static str)> = diags
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule))
            .collect();
        // `a != b` is ident-`!`-ident, not a macro — it must not match.
        assert_eq!(
            got,
            [
                ("crates/core/src/x.rs", 2, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 3, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 5, RULE_DEBUG_RESIDUE),
                ("crates/core/src/x.rs", 6, RULE_DEBUG_RESIDUE),
            ],
            "{diags:?}"
        );
        assert!(diags[0].message.contains("todo!"));
        assert!(diags[2].message.contains("eprintln!"));
    }

    #[test]
    fn debug_residue_is_scoped_to_protocol_crates() {
        let cfg = LintConfig::workspace();
        let src = "fn f() { eprintln!(\"progress\"); }";
        assert_eq!(
            rules_of(&lint_file("crates/model/src/x.rs", src, &cfg)),
            [RULE_DEBUG_RESIDUE]
        );
        assert_eq!(
            rules_of(&lint_file("crates/engine/src/x.rs", src, &cfg)),
            [RULE_DEBUG_RESIDUE]
        );
        // Non-protocol crates and the CLI may print to stderr freely.
        assert!(lint_file("crates/stats/src/x.rs", src, &cfg).is_empty());
        assert!(lint_file("src/bin/ccsim.rs", src, &cfg).is_empty());
    }

    #[test]
    fn debug_residue_exempts_tests_and_honors_allows() {
        let cfg = LintConfig::all_rules();
        let test_src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { dbg!(1); eprintln!(\"x\"); }
            }
        ";
        assert!(lint_file("x.rs", test_src, &cfg).is_empty());

        let allowed = "fn f() {
    // ccsim-lint: allow(debug-residue): one-shot operator warning, not debug residue
    eprintln!(\"warning: bad env var\");
}";
        assert!(lint_file("x.rs", allowed, &cfg).is_empty());

        let bare = "fn f() {
    // ccsim-lint: allow(debug-residue)
    eprintln!(\"warning\");
}";
        let diags = lint_file("x.rs", bare, &cfg);
        assert_eq!(rules_of(&diags), [RULE_BAD_ALLOW, RULE_DEBUG_RESIDUE]);
    }

    #[test]
    fn wall_clock_flags_now_calls_and_respects_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/model/src/x.rs", src, &cfg)),
            [RULE_WALL_CLOCK]
        );
        assert!(lint_file("crates/bench/src/x.rs", src, &cfg).is_empty());
        assert!(lint_file("crates/harness/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unwrap_rule_is_scoped_to_protocol_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/core/src/directory.rs", src, &cfg)),
            [RULE_UNWRAP]
        );
        assert!(lint_file("crates/stats/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unwrap_rule_ignores_unwrap_or_variants() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default().min(x.unwrap_or(3)) }";
        assert!(lint_file("crates/core/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_flags_bare_loops_in_scope_only() {
        let src = "fn f() { loop { step(); } }";
        let cfg = LintConfig::workspace();
        assert_eq!(
            rules_of(&lint_file("crates/engine/src/machine.rs", src, &cfg)),
            [RULE_UNBOUNDED_RETRY]
        );
        assert_eq!(
            rules_of(&lint_file("crates/network/src/lib.rs", src, &cfg)),
            [RULE_UNBOUNDED_RETRY]
        );
        assert!(lint_file("crates/stats/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_accepts_header_bounded_loops() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f(n: u32) {
                for i in 0..n { step(i); }
                while n > 0 { step(n); }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_is_suppressed_by_a_justified_allow() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn f() {
                // ccsim-lint: allow(unbounded-retry): backoff capped at 64 cycles
                loop { if step() { break; } }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unbounded_retry_exempts_test_code() {
        let cfg = LintConfig::all_rules();
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { loop { break; } }
            }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn testing_gate_flags_ungated_hooks_and_accepts_gated_ones() {
        let cfg = LintConfig::all_rules();
        let bad = "impl T { pub fn corrupt_entry_for_test(&mut self) {} }";
        assert_eq!(rules_of(&lint_file("x.rs", bad, &cfg)), [RULE_TESTING_GATE]);
        let good = "impl T {
            #[cfg(feature = \"testing\")]
            pub fn corrupt_entry_for_test(&mut self) {}
        }";
        assert!(lint_file("x.rs", good, &cfg).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_line_and_next_line() {
        let cfg = LintConfig::all_rules();
        let trailing = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(wall-clock): progress display only";
        assert!(lint_file("x.rs", trailing, &cfg).is_empty());
        let above = "// ccsim-lint: allow(wall-clock): progress display only\nfn f() { let t = Instant::now(); }";
        assert!(lint_file("x.rs", above, &cfg).is_empty());
    }

    #[test]
    fn bare_or_unknown_allow_is_reported_and_does_not_suppress() {
        let cfg = LintConfig::all_rules();
        let bare = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(wall-clock)";
        let mut rules = rules_of(&lint_file("x.rs", bare, &cfg));
        rules.sort_unstable();
        assert_eq!(rules, [RULE_BAD_ALLOW, RULE_WALL_CLOCK]);
        let unknown = "// ccsim-lint: allow(nosuch): whatever\n";
        assert_eq!(
            rules_of(&lint_file("x.rs", unknown, &cfg)),
            [RULE_BAD_ALLOW]
        );
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let cfg = LintConfig::all_rules();
        let src = "fn f() { let t = Instant::now(); } // ccsim-lint: allow(unwrap): wrong rule";
        assert!(lint_file("x.rs", src, &cfg)
            .iter()
            .any(|d| d.rule == RULE_WALL_CLOCK));
    }

    #[test]
    fn lock_order_conflict_across_functions_is_flagged_once() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
            fn b(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
            fn c(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
        ";
        let diags = lint_file("x.rs", src, &cfg);
        // The conflicting pair is reported exactly once, at its first
        // out-of-order occurrence, even though `c` repeats it.
        assert_eq!(rules_of(&diags), [RULE_LOCK_ORDER], "{diags:?}");
        assert!(diags[0].message.contains("s.stats"), "{diags:?}");
        assert!(diags[0].message.contains("s.cache"), "{diags:?}");
    }

    #[test]
    fn lock_order_consistent_across_functions_is_clean() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
            fn b(s: &S) { let x = s.stats.lock(); let y = s.cache.lock(); }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lock_order_ignores_unnameable_receivers_and_test_code() {
        let cfg = LintConfig::all_rules();
        let src = "
            fn a(s: &S) { let x = s.get().lock(); let y = s.cache.lock(); }
            #[cfg(test)]
            fn b(s: &S) { let y = s.cache.lock(); let x = s.stats.lock(); }
        ";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn guard_held_across_fanout_is_flagged() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(set: JobSet, m: &Mutex<u64>) { let g = m.lock(); set.run(); }";
        let diags = lint_file("x.rs", src, &cfg);
        assert_eq!(rules_of(&diags), [RULE_GUARD_FANOUT], "{diags:?}");
        assert!(diags[0].message.contains('g'), "{diags:?}");
    }

    #[test]
    fn guard_released_before_fanout_is_clean() {
        let cfg = LintConfig::all_rules();
        let dropped = "fn f(set: JobSet, m: &Mutex<u64>) { let g = m.lock(); drop(g); set.run(); }";
        assert!(lint_file("x.rs", dropped, &cfg).is_empty());
        let scoped =
            "fn f(set: JobSet, m: &Mutex<u64>) { { let g = m.lock(); } set.run_checked(); }";
        assert!(lint_file("x.rs", scoped, &cfg).is_empty());
    }

    #[test]
    fn free_run_protocols_counts_as_a_fanout() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(m: &Mutex<u64>) { let g = m.lock(); let r = run_protocols(cfg, &s, ks); }";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_GUARD_FANOUT]);
    }

    #[test]
    fn bare_run_idents_are_not_fanouts() {
        let cfg = LintConfig::all_rules();
        // `run` as a variable, and `run(..)` as a free function, are fine —
        // only `.run(..)` method calls and `run_protocols(..)` fan out.
        let src = "fn f(m: &Mutex<u64>) { let g = m.lock(); let run = 3; run_sim(run); run(); }";
        assert!(lint_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn typed_guard_bindings_are_still_tracked() {
        let cfg = LintConfig::all_rules();
        let src = "fn f(set: JobSet, m: &Mutex<u64>) { let g: MutexGuard<u64> = m.lock(); set.run_with(2, mode, dir); }";
        assert_eq!(rules_of(&lint_file("x.rs", src, &cfg)), [RULE_GUARD_FANOUT]);
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for r in RULES {
            assert!(explain(r.id).is_some());
            assert!(!r.explain.is_empty());
        }
    }
}
