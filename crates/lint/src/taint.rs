//! Interprocedural nondeterminism taint: sources → assignments/returns/call
//! edges → determinism sinks.
//!
//! The lattice is a set of origins per variable: `Param(i)` (the value
//! depends on the i-th parameter) and `Src(s)` (the value carries
//! nondeterminism from registered source site `s`). Everything else is
//! bottom (deterministic). The analysis is field-insensitive — tainting any
//! part of a value taints the whole value — and flow order inside a body is
//! approximated by pre-order evaluation with monotone (`|=`) updates, so a
//! variable once tainted stays tainted.
//!
//! Per-function summaries carry the interprocedural facts:
//! - `ret_params`: the return value depends on parameter *i*;
//! - `ret_sources`: the return value carries source *s*;
//! - `param_sinks`: parameter *i* flows into sink *k* (directly or through
//!   callees), with the call chain for the witness message.
//!
//! Summaries are iterated to a bounded fixpoint over the whole workspace.
//! Unresolved calls (std, closures invoked via combinators) pass taint from
//! arguments to result, and an unresolved *method* call additionally taints
//! the receiver variable — the mutation approximation that catches
//! `buf.push(wall_clock_value)`. Macro arguments are invisible (opaque
//! bodies): a taint routed exclusively through `format!` is lost, which is
//! the documented false-negative class (DESIGN.md §6e).
//!
//! Sources: wall clock (`Instant::now`, `SystemTime::now`), `RandomState`
//! construction, thread identity (`thread::current`,
//! `available_parallelism`, `process::id`), and environment reads whose
//! variable name is not a `CCSIM_`-prefixed literal (string constants are
//! resolved through the workspace const table).
//!
//! Sinks: deterministic-output functions by name — `run_key`, `serve_key`,
//! `to_json`, `to_canonical_json`, `emit`, `fnv1a64`.

use crate::ast::{Block, Expr, LitKind, Stmt};
use crate::callgraph::{recv_root, resolve_method_call, resolve_path_call};
use crate::resolve::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Function names that feed determinism-critical output.
pub const SINKS: &[&str] = &[
    "run_key",
    "serve_key",
    "to_json",
    "to_canonical_json",
    "emit",
    "fnv1a64",
];

/// A registered nondeterminism source site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrcSite {
    pub fn_id: usize,
    pub line: u32,
    /// Human description, e.g. "wall clock (`Instant::now`)".
    pub kind: String,
}

/// A registered sink site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkSite {
    pub fn_id: usize,
    pub line: u32,
    pub name: String,
}

/// A source-to-sink flow with the sink-side call chain (qualified fn names,
/// outermost first, ending at the function containing the sink).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Flow {
    pub src: usize,
    pub sink: usize,
    pub chain: Vec<String>,
}

#[derive(Clone, Debug, Default)]
pub struct TaintAnalysis {
    pub sources: Vec<SrcSite>,
    pub sinks: Vec<SinkSite>,
    pub flows: Vec<Flow>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Origin {
    Param(usize),
    Src(usize),
}

type Origins = BTreeSet<Origin>;

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Summary {
    ret_params: BTreeSet<usize>,
    ret_sources: BTreeSet<usize>,
    /// (param index, sink id) → call chain from this fn to the sink's fn.
    param_sinks: BTreeMap<(usize, usize), Vec<String>>,
}

pub fn analyze(ws: &Workspace) -> TaintAnalysis {
    let mut st = State {
        ws,
        sources: Vec::new(),
        sinks: Vec::new(),
        flows: BTreeSet::new(),
        summaries: vec![Summary::default(); ws.fns.len()],
    };
    // Bounded fixpoint. Sites are registered on first encounter keyed by
    // (fn, line, text), so ids are stable across rounds.
    for round in 0..12 {
        let mut changed = false;
        for f in &ws.fns {
            if f.test_only || f.body.is_none() {
                continue;
            }
            let summary = st.eval_fn(f.id);
            if st.summaries[f.id] != summary {
                st.summaries[f.id] = summary;
                changed = true;
            }
        }
        if !changed && round > 0 {
            break;
        }
    }
    TaintAnalysis {
        sources: st.sources,
        sinks: st.sinks,
        flows: st.flows.into_iter().collect(),
    }
}

struct State<'w> {
    ws: &'w Workspace,
    sources: Vec<SrcSite>,
    sinks: Vec<SinkSite>,
    flows: BTreeSet<Flow>,
    summaries: Vec<Summary>,
}

impl State<'_> {
    fn src_id(&mut self, fn_id: usize, line: u32, kind: &str) -> usize {
        if let Some(i) = self
            .sources
            .iter()
            .position(|s| s.fn_id == fn_id && s.line == line && s.kind == kind)
        {
            return i;
        }
        self.sources.push(SrcSite {
            fn_id,
            line,
            kind: kind.to_string(),
        });
        self.sources.len() - 1
    }

    fn sink_id(&mut self, fn_id: usize, line: u32, name: &str) -> usize {
        if let Some(i) = self
            .sinks
            .iter()
            .position(|s| s.fn_id == fn_id && s.line == line && s.name == name)
        {
            return i;
        }
        self.sinks.push(SinkSite {
            fn_id,
            line,
            name: name.to_string(),
        });
        self.sinks.len() - 1
    }

    fn eval_fn(&mut self, fn_id: usize) -> Summary {
        let f = &self.ws.fns[fn_id];
        let body = f.body.clone().expect("checked by caller");
        let impl_ty = f.impl_ty.clone();
        let env = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), BTreeSet::from([Origin::Param(i)])))
            .collect();
        let mut ev = Eval {
            st: self,
            fn_id,
            impl_ty,
            env,
            ret: Origins::new(),
            summary: Summary::default(),
        };
        let tail = ev.block(&body);
        ev.ret.extend(tail);
        let ret = std::mem::take(&mut ev.ret);
        let mut summary = std::mem::take(&mut ev.summary);
        for o in ret {
            match o {
                Origin::Param(i) => {
                    summary.ret_params.insert(i);
                }
                Origin::Src(s) => {
                    summary.ret_sources.insert(s);
                }
            }
        }
        summary
    }
}

struct Eval<'a, 'w> {
    st: &'a mut State<'w>,
    fn_id: usize,
    impl_ty: Option<String>,
    env: BTreeMap<String, Origins>,
    ret: Origins,
    summary: Summary,
}

impl Eval<'_, '_> {
    fn qual(&self) -> String {
        self.st.ws.fns[self.fn_id].qual_name()
    }

    fn block(&mut self, b: &Block) -> Origins {
        let mut tail = Origins::new();
        for (i, s) in b.stmts.iter().enumerate() {
            match s {
                Stmt::Let {
                    binds,
                    init,
                    else_block,
                    ..
                } => {
                    let o = init.as_ref().map(|e| self.eval(e)).unwrap_or_default();
                    for bind in binds {
                        self.env.entry(bind.clone()).or_default().extend(o.clone());
                    }
                    if let Some(e) = else_block {
                        self.block(e);
                    }
                }
                Stmt::Expr { expr, semi } => {
                    let o = self.eval(expr);
                    if !semi && i + 1 == b.stmts.len() {
                        tail = o;
                    }
                }
                Stmt::Item(_) => {}
            }
        }
        tail
    }

    fn eval(&mut self, e: &Expr) -> Origins {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.env.get(&segs[0]).cloned().unwrap_or_default()
                } else {
                    Origins::new()
                }
            }
            Expr::Lit { .. } | Expr::Continue { .. } | Expr::Unknown { .. } => Origins::new(),
            Expr::MacroCall { .. } => Origins::new(), // opaque args: documented caveat
            Expr::Call { line, callee, args } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(kind) = self.source_kind(segs, args) {
                        let id = self.st.src_id(self.fn_id, *line, &kind);
                        return Origins::from([Origin::Src(id)]);
                    }
                    let arg_origins: Vec<Origins> = args.iter().map(|a| self.eval(a)).collect();
                    let name = segs.last().map(String::as_str).unwrap_or("");
                    if SINKS.contains(&name) {
                        return self.feed_sink(*line, name, &arg_origins);
                    }
                    let callees = resolve_path_call(self.st.ws, self.impl_ty.as_deref(), segs);
                    return self.through_call(&callees, &arg_origins);
                }
                let mut out = self.eval(callee);
                for a in args {
                    out.extend(self.eval(a));
                }
                out
            }
            Expr::MethodCall {
                line,
                recv,
                method,
                args,
            } => {
                let mut arg_origins = vec![self.eval(recv)];
                for a in args {
                    arg_origins.push(self.eval(a));
                }
                if SINKS.contains(&method.as_str()) {
                    return self.feed_sink(*line, method, &arg_origins);
                }
                let is_self = recv_root(recv) == Some("self");
                let callees =
                    resolve_method_call(self.st.ws, self.impl_ty.as_deref(), is_self, method);
                if callees.is_empty() {
                    // Unresolved method: taint passes through, and the
                    // receiver variable absorbs argument taint (mutation
                    // approximation for `buf.push(tainted)`).
                    let union: Origins = arg_origins.iter().flatten().copied().collect();
                    if let Some(root) = recv_root(recv) {
                        if self.env.contains_key(root) {
                            let arg_taint: Origins =
                                arg_origins[1..].iter().flatten().copied().collect();
                            self.env
                                .entry(root.to_string())
                                .or_default()
                                .extend(arg_taint);
                        }
                    }
                    return union;
                }
                self.through_call(&callees, &arg_origins)
            }
            Expr::Field { base, .. } => self.eval(base),
            Expr::Index { base, index, .. } => {
                let mut o = self.eval(base);
                o.extend(self.eval(index));
                o
            }
            Expr::StructLit { fields, rest, .. } => {
                let mut o = Origins::new();
                for (_, v) in fields {
                    o.extend(self.eval(v));
                }
                if let Some(r) = rest {
                    o.extend(self.eval(r));
                }
                o
            }
            // A closure's value carries whatever its body computes: calling
            // it through an unresolved combinator then unions it onward.
            Expr::Closure { body, .. } => self.eval(body),
            Expr::Block(b) => self.block(b),
            Expr::If {
                cond, then, els, ..
            } => {
                let mut o = self.eval(cond);
                o.extend(self.block(then));
                if let Some(e) = els {
                    o.extend(self.eval(e));
                }
                o
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let scrut = self.eval(scrutinee);
                let mut o = scrut.clone();
                for arm in arms {
                    // Arm bindings inherit the scrutinee's taint.
                    for b in &arm.binds {
                        self.env.entry(b.clone()).or_default().extend(scrut.clone());
                    }
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    o.extend(self.eval(&arm.body));
                }
                o
            }
            Expr::While { cond, body, .. } => {
                let mut o = self.eval(cond);
                o.extend(self.block(body));
                o
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::For {
                binds, iter, body, ..
            } => {
                let it = self.eval(iter);
                for b in binds {
                    self.env.entry(b.clone()).or_default().extend(it.clone());
                }
                let mut o = it;
                o.extend(self.block(body));
                o
            }
            Expr::Binary { lhs, rhs, .. } => {
                let mut o = self.eval(lhs);
                o.extend(self.eval(rhs));
                o
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
                self.eval(expr)
            }
            Expr::Assign { lhs, rhs, .. } => {
                let o = self.eval(rhs);
                if let Some(root) = recv_root(lhs) {
                    self.env
                        .entry(root.to_string())
                        .or_default()
                        .extend(o.clone());
                }
                o
            }
            Expr::Range { lo, hi, .. } => {
                let mut o = Origins::new();
                if let Some(e) = lo {
                    o.extend(self.eval(e));
                }
                if let Some(e) = hi {
                    o.extend(self.eval(e));
                }
                o
            }
            Expr::Return { expr, .. } => {
                if let Some(e) = expr {
                    let o = self.eval(e);
                    self.ret.extend(o);
                }
                Origins::new()
            }
            Expr::Break { expr, .. } => expr.as_ref().map(|e| self.eval(e)).unwrap_or_default(),
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                let mut o = Origins::new();
                for e in elems {
                    o.extend(self.eval(e));
                }
                o
            }
        }
    }

    /// All origins in `arg_origins` reach the sink at `line`; sources become
    /// flows, params become summary facts. Returns the union (a key derived
    /// from a tainted value is itself tainted).
    fn feed_sink(&mut self, line: u32, name: &str, arg_origins: &[Origins]) -> Origins {
        let sink = self.st.sink_id(self.fn_id, line, name);
        let here = vec![self.qual()];
        let union: Origins = arg_origins.iter().flatten().copied().collect();
        for o in &union {
            match o {
                Origin::Src(s) => {
                    self.st.flows.insert(Flow {
                        src: *s,
                        sink,
                        chain: here.clone(),
                    });
                }
                Origin::Param(i) => {
                    self.summary
                        .param_sinks
                        .entry((*i, sink))
                        .or_insert_with(|| here.clone());
                }
            }
        }
        union
    }

    /// Propagate through a resolved call: callee summaries translate
    /// argument origins into result origins and sink flows.
    fn through_call(&mut self, callees: &[usize], arg_origins: &[Origins]) -> Origins {
        if callees.is_empty() {
            return arg_origins.iter().flatten().copied().collect();
        }
        let mut out = Origins::new();
        for &c in callees {
            let summary = self.st.summaries[c].clone();
            for s in &summary.ret_sources {
                out.insert(Origin::Src(*s));
            }
            for i in &summary.ret_params {
                if let Some(o) = arg_origins.get(*i) {
                    out.extend(o.iter().copied());
                }
            }
            for ((i, sink), chain) in &summary.param_sinks {
                let Some(origins) = arg_origins.get(*i) else {
                    continue;
                };
                for o in origins {
                    match o {
                        Origin::Src(s) => {
                            let mut full = vec![self.qual()];
                            full.extend(chain.iter().cloned());
                            self.st.flows.insert(Flow {
                                src: *s,
                                sink: *sink,
                                chain: full,
                            });
                        }
                        Origin::Param(p) => {
                            let mut full = vec![self.qual()];
                            full.extend(chain.iter().cloned());
                            self.summary.param_sinks.entry((*p, *sink)).or_insert(full);
                        }
                    }
                }
            }
        }
        out
    }

    /// Classify a path call as a nondeterminism source.
    fn source_kind(&self, segs: &[String], args: &[Expr]) -> Option<String> {
        let n = segs.len();
        let last = segs.last()?.as_str();
        let prev = if n >= 2 { segs[n - 2].as_str() } else { "" };
        match (prev, last) {
            ("Instant", "now") => return Some("wall clock (`Instant::now`)".into()),
            ("SystemTime", "now") => return Some("wall clock (`SystemTime::now`)".into()),
            ("RandomState", "new") | ("RandomState", "default") => {
                return Some("randomized hasher (`RandomState`)".into())
            }
            ("thread", "current") => return Some("thread identity (`thread::current`)".into()),
            ("process", "id") => return Some("process id (`process::id`)".into()),
            (_, "available_parallelism") => {
                return Some("host parallelism (`available_parallelism`)".into())
            }
            ("env", "var") | ("env", "var_os") => {}
            _ => return None,
        }
        // Environment read: vetted iff the variable name is a literal (or a
        // resolvable string constant) with the CCSIM_ prefix.
        let name = match args.first() {
            Some(Expr::Lit {
                kind: LitKind::Str(s),
                ..
            }) => Some(s.clone()),
            Some(Expr::Path { segs, .. }) if segs.len() == 1 => {
                self.st.ws.str_consts.get(&segs[0]).cloned()
            }
            _ => None,
        };
        match name {
            Some(n) if n.starts_with("CCSIM_") => None,
            Some(n) => Some(format!("environment read (`{}`)", n)),
            None => Some("environment read (dynamic variable name)".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> (Workspace, TaintAnalysis) {
        let ast = parse(&lex(src).tokens);
        let ws = Workspace::build(&[("crates/x/src/lib.rs".to_string(), ast)]);
        let ta = analyze(&ws);
        (ws, ta)
    }

    #[test]
    fn direct_source_to_sink_flow() {
        let (ws, ta) = run(
            "fn f() { let t = Instant::now(); emit_key(t); }\nfn emit_key(x: u64) { fnv1a64(x); }",
        );
        assert_eq!(ta.flows.len(), 1);
        let f = &ta.flows[0];
        assert_eq!(ta.sources[f.src].kind, "wall clock (`Instant::now`)");
        assert_eq!(ta.sinks[f.sink].name, "fnv1a64");
        assert_eq!(f.chain, vec!["f".to_string(), "emit_key".to_string()]);
        let _ = ws;
    }

    #[test]
    fn taint_through_return_value_of_helper() {
        let (_, ta) = run(
            "fn wall_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }\nfn export() { let t = wall_ms(); run_key(t); }",
        );
        assert_eq!(ta.flows.len(), 1);
        assert_eq!(ta.flows[0].chain, vec!["export".to_string()]);
    }

    #[test]
    fn ccsim_env_reads_are_vetted() {
        let (_, ta) = run(
            "const E: &str = \"CCSIM_THREADS\";\nfn f() { let a = std::env::var(E); let b = std::env::var(\"CCSIM_MODE\"); run_key(a); run_key(b); }",
        );
        assert!(ta.flows.is_empty(), "{:?}", ta.flows);
    }

    #[test]
    fn foreign_env_reads_are_sources() {
        let (_, ta) = run("fn f() { let a = std::env::var(\"HOME\"); run_key(a); }");
        assert_eq!(ta.flows.len(), 1);
        assert!(ta.sources[ta.flows[0].src].kind.contains("HOME"));
    }

    #[test]
    fn mutation_approximation_taints_receiver() {
        let (_, ta) = run(
            "fn f() { let mut buf = Vec::new(); buf.push(SystemTime::now()); serve_key(buf); }",
        );
        assert_eq!(ta.flows.len(), 1);
        assert_eq!(ta.sinks[ta.flows[0].sink].name, "serve_key");
    }

    #[test]
    fn test_only_code_is_not_analyzed() {
        let (_, ta) = run("#[cfg(test)]\nmod t { fn f() { run_key(Instant::now()); } }");
        assert!(ta.flows.is_empty());
    }

    #[test]
    fn to_json_sink_catches_tainted_receiver() {
        let (_, ta) = run("fn f() { let t = Instant::now(); let _ = t.to_json(); }");
        assert_eq!(ta.flows.len(), 1);
        assert_eq!(ta.sinks[ta.flows[0].sink].name, "to_json");
    }

    #[test]
    fn deterministic_data_does_not_flow() {
        let (_, ta) = run("fn f(n: u64) { run_key(n + 1); }");
        assert!(ta.flows.is_empty());
    }
}
