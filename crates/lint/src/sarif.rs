//! SARIF 2.1.0 rendering for lint diagnostics.
//!
//! Emits the minimal static-analysis interchange document that GitHub code
//! scanning (and other SARIF viewers) accept: one run, one driver named
//! `ccsim-lint`, the full rule table with short/full descriptions, and one
//! `result` per diagnostic with a physical location. Built on
//! [`ccsim_util::Json`] — no external serializer.

use crate::source::{Diagnostic, RULES};
use ccsim_util::Json;

/// Render `diags` as a SARIF 2.1.0 log (pretty-printed JSON text).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let rules: Vec<Json> = RULES
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::Str(r.id.to_string())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::Str(r.summary.to_string()))]),
                ),
                (
                    "fullDescription",
                    Json::obj(vec![("text", Json::Str(r.explain.to_string()))]),
                ),
                (
                    "defaultConfiguration",
                    Json::obj(vec![("level", Json::Str("error".to_string()))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let rule_index = RULES
                .iter()
                .position(|r| r.id == d.rule)
                .map_or(Json::Null, |i| Json::U64(i as u64));
            Json::obj(vec![
                ("ruleId", Json::Str(d.rule.to_string())),
                ("ruleIndex", rule_index),
                ("level", Json::Str("error".to_string())),
                (
                    "message",
                    Json::obj(vec![("text", Json::Str(d.message.clone()))]),
                ),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![
                                    ("uri", Json::Str(d.file.clone())),
                                    ("uriBaseId", Json::Str("SRCROOT".to_string())),
                                ]),
                            ),
                            (
                                "region",
                                Json::obj(vec![("startLine", Json::U64(u64::from(d.line)))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        (
            "$schema",
            Json::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
        ),
        ("version", Json::Str("2.1.0".to_string())),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::Str("ccsim-lint".to_string())),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                (
                    "originalUriBaseIds",
                    Json::obj(vec![(
                        "SRCROOT",
                        Json::obj(vec![("uri", Json::Str("file:///".to_string()))]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ]);
    doc.pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/directory.rs".to_string(),
            line: 42,
            rule: "lock-order-global",
            message: "cycle".to_string(),
        }
    }

    #[test]
    fn sarif_document_round_trips_and_pins_schema() {
        let text = to_sarif(&[diag()]);
        let j = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            j.get("version").unwrap().as_str().unwrap(),
            "2.1.0",
            "{}",
            text
        );
        let run = &j.get("runs").unwrap().as_arr().unwrap()[0];
        let results = run.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str().unwrap(),
            "lock-order-global"
        );
        let loc = &results[0].get("locations").unwrap().as_arr().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str()
                .unwrap(),
            "crates/core/src/directory.rs"
        );
        assert_eq!(
            phys.get("region").unwrap().get("startLine").unwrap(),
            &Json::U64(42)
        );
    }

    #[test]
    fn every_rule_appears_in_the_driver_table() {
        let text = to_sarif(&[]);
        let j = Json::parse(&text).unwrap();
        let run = &j.get("runs").unwrap().as_arr().unwrap()[0];
        let rules = run
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rules.len(), RULES.len());
    }
}
