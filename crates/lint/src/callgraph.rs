//! Approximate workspace call graph plus the per-function facts the
//! interprocedural rules consume.
//!
//! Resolution is name-based (no type inference — see DESIGN.md §6e):
//!
//! - a path call `Ty::f(..)` (or `Self::f(..)`) resolves to the workspace
//!   functions with that exact qualified name;
//! - a module-path or bare call `m::f(..)` / `f(..)` resolves to free
//!   functions named `f`;
//! - a method call `recv.f(..)` resolves to every workspace method named `f`
//!   — narrowed to the caller's own impl when the receiver is `self` and the
//!   impl defines `f`, and dropped entirely for [`STD_COMMON`] names (which
//!   would otherwise wire every `.len()` to every container in the repo).
//!
//! Over-approximation (spurious edges from name collisions) makes the
//! panic-path and lock-order rules conservative; the `STD_COMMON` cutoff is
//! the one deliberate under-approximation, and it only hides panics inside
//! workspace functions that shadow ubiquitous std names.

use crate::ast::{walk_block, Expr};
use crate::resolve::{FnDecl, Workspace};

/// Method names so ubiquitous in std that name-matching them would wire the
/// whole workspace together. Method calls with these names resolve to
/// nothing unless the receiver is `self` and the caller's impl defines them.
pub const STD_COMMON: &[&str] = &[
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "remove",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "zip",
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    Unwrap,
    Expect,
    PanicMacro,
    Index,
}

impl PanicKind {
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(..)`",
            PanicKind::PanicMacro => "an explicit panic macro",
            PanicKind::Index => "a bounds-checked index (`[..]`)",
        }
    }
}

#[derive(Clone, Debug)]
pub struct PanicSite {
    pub line: u32,
    pub kind: PanicKind,
}

/// One ordered event in a function body: a lock acquisition or a call (with
/// its resolved callees). Pre-order walk order approximates execution order.
#[derive(Clone, Debug)]
pub enum Event {
    Acquire { line: u32, lock: String },
    Call { line: u32, callees: Vec<usize> },
}

/// Per-function facts plus the resolved out-edges.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// `(line, callee_id, label)` for every resolved call; `label` is the
    /// rendered call text (`Machine.step(..)`) for witness chains.
    pub calls: Vec<(u32, usize, String)>,
    /// Ordered acquire/call events for the global lock-order rule.
    pub events: Vec<Event>,
    pub panics: Vec<PanicSite>,
}

#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Indexed by `FnDecl::id`.
    pub facts: Vec<FnFacts>,
}

/// Panic macros: diverging by design. Assertions are deliberately excluded —
/// they are the codebase's safety net, not an accident to lint away.
fn is_panic_macro(name: &str) -> bool {
    matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
}

/// Render the receiver chain of a lock acquisition as a stable lock name:
/// `self.inner.lock()` in `impl Machine` → `Machine.inner`;
/// `shared.slots[i].lock()` → `shared.slots[_]`.
pub fn lock_name(recv: &Expr, impl_ty: Option<&str>) -> String {
    fn go(e: &Expr, impl_ty: Option<&str>, out: &mut String) {
        match e {
            Expr::Path { segs, .. } => {
                let joined = segs.join("::");
                if joined == "self" {
                    out.push_str(impl_ty.unwrap_or("self"));
                } else {
                    out.push_str(&joined);
                }
            }
            Expr::Field { base, name, .. } => {
                go(base, impl_ty, out);
                out.push('.');
                out.push_str(name);
            }
            Expr::Index { base, .. } => {
                go(base, impl_ty, out);
                out.push_str("[_]");
            }
            Expr::MethodCall { recv, method, .. } => {
                go(recv, impl_ty, out);
                out.push('.');
                out.push_str(method);
                out.push_str("()");
            }
            Expr::Call { callee, .. } => {
                go(callee, impl_ty, out);
                out.push_str("()");
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
                go(expr, impl_ty, out)
            }
            _ => out.push('?'),
        }
    }
    let mut s = String::new();
    go(recv, impl_ty, &mut s);
    s
}

/// Leftmost root of a receiver chain (`self.pool.lock()` → `self`).
pub fn recv_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } => segs.first().map(String::as_str),
        Expr::Field { base, .. }
        | Expr::Index { base, .. }
        | Expr::MethodCall { recv: base, .. } => recv_root(base),
        Expr::Call { callee, .. } => recv_root(callee),
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            recv_root(expr)
        }
        _ => None,
    }
}

/// Resolve a path call `segs(..)` made from a function in `impl_ty`.
pub fn resolve_path_call(ws: &Workspace, impl_ty: Option<&str>, segs: &[String]) -> Vec<usize> {
    let Some(last) = segs.last() else {
        return Vec::new();
    };
    if segs.len() >= 2 {
        let prev = &segs[segs.len() - 2];
        let ty = if prev == "Self" {
            impl_ty.map(str::to_string)
        } else if prev.starts_with(|c: char| c.is_ascii_uppercase()) {
            Some(prev.clone())
        } else {
            None
        };
        if let Some(ty) = ty {
            return ws.qualified(&format!("{}::{}", ty, last)).to_vec();
        }
    }
    // Bare or module-qualified call: free functions only.
    ws.named(last)
        .iter()
        .copied()
        .filter(|&id| ws.fns[id].impl_ty.is_none())
        .collect()
}

/// Resolve a method call `recv.name(..)` made from a function in `impl_ty`.
pub fn resolve_method_call(
    ws: &Workspace,
    impl_ty: Option<&str>,
    recv_is_self: bool,
    name: &str,
) -> Vec<usize> {
    if recv_is_self {
        if let Some(ty) = impl_ty {
            let own = ws.qualified(&format!("{}::{}", ty, name));
            if !own.is_empty() {
                return own.to_vec();
            }
        }
    }
    if STD_COMMON.contains(&name) {
        return Vec::new();
    }
    ws.named(name)
        .iter()
        .copied()
        .filter(|&id| ws.fns[id].has_self())
        .collect()
}

impl CallGraph {
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut facts = Vec::with_capacity(ws.fns.len());
        for f in &ws.fns {
            facts.push(gather(ws, f));
        }
        CallGraph { facts }
    }

    /// BFS over call edges from `entries`, skipping test-only functions.
    /// Returns, for each function, `Some((parent, call_line))` on the
    /// shortest path from an entry (entries point to themselves).
    pub fn reach(&self, ws: &Workspace, entries: &[usize]) -> Vec<Option<(usize, u32)>> {
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; ws.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if parent[e].is_none() {
                parent[e] = Some((e, ws.fns[e].line));
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            for (line, v, _) in &self.facts[u].calls {
                if parent[*v].is_none() && !ws.fns[*v].test_only {
                    parent[*v] = Some((u, *line));
                    queue.push_back(*v);
                }
            }
        }
        parent
    }

    /// Reconstruct the entry → `target` chain of qualified names.
    pub fn chain(
        &self,
        ws: &Workspace,
        parent: &[Option<(usize, u32)>],
        target: usize,
    ) -> Vec<String> {
        let mut names = Vec::new();
        let mut cur = target;
        let mut hops = 0;
        while let Some((p, _)) = parent[cur] {
            names.push(ws.fns[cur].qual_name());
            if p == cur || hops > 64 {
                break;
            }
            cur = p;
            hops += 1;
        }
        names.reverse();
        names
    }

    /// Locks acquired by each function or anything it (transitively) calls.
    pub fn locks_closure(&self, ws: &Workspace) -> Vec<Vec<String>> {
        let n = ws.fns.len();
        let mut locks: Vec<Vec<String>> = vec![Vec::new(); n];
        for (id, fx) in self.facts.iter().enumerate() {
            for ev in &fx.events {
                if let Event::Acquire { lock, .. } = ev {
                    if !locks[id].contains(lock) {
                        locks[id].push(lock.clone());
                    }
                }
            }
        }
        // Bounded fixpoint: propagate callee locks up to callers.
        for _ in 0..n.max(8) {
            let mut changed = false;
            for (id, fx) in self.facts.iter().enumerate() {
                for (_, callee, _) in &fx.calls {
                    let add: Vec<String> = locks[*callee]
                        .iter()
                        .filter(|l| !locks[id].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        locks[id].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        locks
    }
}

fn gather(ws: &Workspace, f: &FnDecl) -> FnFacts {
    let mut fx = FnFacts::default();
    let Some(body) = &f.body else {
        return fx;
    };
    let impl_ty = f.impl_ty.as_deref();
    walk_block(body, &mut |e| match e {
        Expr::Call { line, callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let callees = resolve_path_call(ws, impl_ty, segs);
                if !callees.is_empty() {
                    let label = format!("{}(..)", segs.join("::"));
                    for &c in &callees {
                        fx.calls.push((*line, c, label.clone()));
                    }
                    fx.events.push(Event::Call {
                        line: *line,
                        callees,
                    });
                }
            }
        }
        Expr::MethodCall {
            line,
            recv,
            method,
            args,
            ..
        } => {
            if method == "lock" && args.is_empty() {
                fx.events.push(Event::Acquire {
                    line: *line,
                    lock: lock_name(recv, impl_ty),
                });
            } else {
                match method.as_str() {
                    "unwrap" => fx.panics.push(PanicSite {
                        line: *line,
                        kind: PanicKind::Unwrap,
                    }),
                    "expect" => fx.panics.push(PanicSite {
                        line: *line,
                        kind: PanicKind::Expect,
                    }),
                    _ => {}
                }
                let is_self = recv_root(recv) == Some("self");
                let callees = resolve_method_call(ws, impl_ty, is_self, method);
                if !callees.is_empty() {
                    let label = format!("{}.{}(..)", lock_name(recv, impl_ty), method);
                    for &c in &callees {
                        fx.calls.push((*line, c, label.clone()));
                    }
                    fx.events.push(Event::Call {
                        line: *line,
                        callees,
                    });
                }
            }
        }
        Expr::MacroCall { line, name, .. } if is_panic_macro(name) => {
            fx.panics.push(PanicSite {
                line: *line,
                kind: PanicKind::PanicMacro,
            });
        }
        Expr::Index { line, .. } => {
            fx.panics.push(PanicSite {
                line: *line,
                kind: PanicKind::Index,
            });
        }
        _ => {}
    });
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn build(src: &str) -> (Workspace, CallGraph) {
        let ast = parse(&lex(src).tokens);
        let ws = Workspace::build(&[("crates/x/src/lib.rs".to_string(), ast)]);
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn id(ws: &Workspace, name: &str) -> usize {
        ws.named(name)[0]
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let (ws, cg) =
            build("fn a() { b(); C::go(); }\nfn b() {}\nstruct C;\nimpl C { fn go() {} }");
        let a = id(&ws, "a");
        let targets: Vec<usize> = cg.facts[a].calls.iter().map(|c| c.1).collect();
        assert_eq!(targets, vec![id(&ws, "b"), id(&ws, "go")]);
    }

    #[test]
    fn self_method_calls_prefer_own_impl() {
        let (ws, cg) = build(
            "struct A; struct B;\nimpl A { fn f(&self) { self.g() } fn g(&self) {} }\nimpl B { fn g(&self) {} }",
        );
        let f = id(&ws, "f");
        assert_eq!(cg.facts[f].calls.len(), 1);
        assert_eq!(ws.fns[cg.facts[f].calls[0].1].qual_name(), "A::g");
    }

    #[test]
    fn std_common_methods_do_not_resolve_cross_type() {
        let (ws, cg) = build(
            "struct A;\nimpl A { fn f(&self, v: Vec<u32>) { v.len(); v.step(); } }\nstruct B;\nimpl B { fn len(&self) {} fn step(&self) {} }",
        );
        let f = id(&ws, "f");
        let names: Vec<String> = cg.facts[f]
            .calls
            .iter()
            .map(|c| ws.fns[c.1].qual_name())
            .collect();
        assert_eq!(names, vec!["B::step"]); // len blocked, step wired
    }

    #[test]
    fn panic_sites_are_collected_with_kinds() {
        let (ws, cg) = build(
            "fn f(v: Vec<u32>, i: usize) -> u32 { let x = v.first().unwrap(); if i > 9 { panic!(\"no\") } v[i] + x }",
        );
        let f = id(&ws, "f");
        let kinds: Vec<PanicKind> = cg.facts[f].panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PanicKind::Unwrap, PanicKind::PanicMacro, PanicKind::Index]
        );
    }

    #[test]
    fn reach_skips_test_only_fns_and_builds_chains() {
        let (ws, cg) = build(
            "fn entry() { mid() }\nfn mid() { deep() }\nfn deep() {}\n#[cfg(test)]\nmod t { pub fn probe() {} }",
        );
        let entry = id(&ws, "entry");
        let parent = cg.reach(&ws, &[entry]);
        let deep = id(&ws, "deep");
        let probe = id(&ws, "probe");
        assert!(parent[deep].is_some());
        assert!(parent[probe].is_none());
        assert_eq!(
            cg.chain(&ws, &parent, deep),
            vec!["entry".to_string(), "mid".to_string(), "deep".to_string()]
        );
    }

    #[test]
    fn lock_events_use_impl_qualified_names() {
        let (ws, cg) = build(
            "struct M { inner: Mutex<u32> }\nimpl M { fn f(&self) { let g = self.inner.lock().unwrap(); drop(g); } }",
        );
        let f = id(&ws, "f");
        let locks: Vec<&str> = cg.facts[f]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { lock, .. } => Some(lock.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(locks, vec!["M.inner"]);
    }

    #[test]
    fn locks_closure_propagates_through_calls() {
        let (ws, cg) = build(
            "struct M { a: Mutex<u32> }\nimpl M { fn outer(&self) { self.helper() } fn helper(&self) { let _g = self.a.lock().unwrap(); } }",
        );
        let locks = cg.locks_closure(&ws);
        assert_eq!(locks[id(&ws, "outer")], vec!["M.a".to_string()]);
    }
}
