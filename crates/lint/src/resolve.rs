//! Workspace resolution: a flat symbol table over every parsed source file.
//!
//! This is the middle layer of the semantic lint: [`crate::parse`] turns each
//! file into an AST, `resolve` flattens the item trees of *all* files into a
//! single list of function declarations ([`FnDecl`]) with enough context for
//! name-based call resolution — the qualified name (`Ty::method` for inherent
//! and trait impls), the module's test-ness, and the body. It also collects
//! every `const NAME: &str = "...";` string constant so the taint pass can
//! resolve `env::var(SOME_CONST)` back to the literal environment-variable
//! name.
//!
//! Resolution here is deliberately approximate (no type inference, no import
//! tracking): names are matched workspace-wide. DESIGN.md §6e spells out the
//! soundness consequences.

use crate::ast::{Attr, Block, Expr, Item, ItemKind, LitKind, SourceFile, Stmt};
use std::collections::BTreeMap;

/// One function declaration anywhere in the workspace.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// Index into [`Workspace::fns`].
    pub id: usize,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Enclosing `impl` base type (`Machine` for `impl Machine` and
    /// `impl Trait for Machine`), `None` for free functions.
    pub impl_ty: Option<String>,
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// First line of the declaration including its attributes — fn-level
    /// `ccsim-lint: allow(...)` comments anchor here.
    pub span_start: u32,
    /// Parameter binding names; a receiver appears as leading `self`.
    pub params: Vec<String>,
    pub body: Option<Block>,
    /// Inside `#[cfg(test)]` / `#[test]` / `feature = "testing"` code, or a
    /// `tests/` / `fixtures/` file: interprocedural rules skip these.
    pub test_only: bool,
}

impl FnDecl {
    /// `Ty::name` for methods, bare `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.impl_ty {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }

    pub fn has_self(&self) -> bool {
        self.params.first().is_some_and(|p| p == "self")
    }
}

/// The flattened workspace: every function, indexed for name lookup, plus
/// the string-constant table.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnDecl>,
    /// Bare function name → ids (free functions and methods alike).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Ty::name` → ids.
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// `const NAME: &str = "LIT";` anywhere in the workspace → `NAME → LIT`.
    pub str_consts: BTreeMap<String, String>,
}

impl Workspace {
    pub fn build(files: &[(String, SourceFile)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, ast) in files {
            let file_test_only = path.starts_with("tests/")
                || path.contains("/tests/")
                || path.contains("/fixtures/");
            for item in &ast.items {
                ws.walk_item(path, item, None, file_test_only);
            }
        }
        let mut by_name = BTreeMap::new();
        let mut by_qual = BTreeMap::new();
        for f in &ws.fns {
            by_name
                .entry(f.name.clone())
                .or_insert_with(Vec::new)
                .push(f.id);
            by_qual
                .entry(f.qual_name())
                .or_insert_with(Vec::new)
                .push(f.id);
        }
        ws.by_name = by_name;
        ws.by_qual = by_qual;
        ws
    }

    /// Ids of functions named `name` (any impl).
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Ids of functions with qualified name `Ty::name`.
    pub fn qualified(&self, qual: &str) -> &[usize] {
        self.by_qual.get(qual).map_or(&[], |v| v.as_slice())
    }

    fn walk_item(&mut self, file: &str, item: &Item, impl_ty: Option<&str>, test_only: bool) {
        let test_only = test_only || item.attrs.iter().any(|a| a.testish);
        match &item.kind {
            ItemKind::Fn(f) => {
                let id = self.fns.len();
                self.fns.push(FnDecl {
                    id,
                    file: file.to_string(),
                    impl_ty: impl_ty.map(str::to_string),
                    name: f.name.clone(),
                    line: f.line,
                    span_start: span_start(&item.attrs, f.line),
                    params: f.params.clone(),
                    body: f.body.clone(),
                    test_only,
                });
                if let Some(b) = &f.body {
                    self.walk_block_items(file, b, test_only);
                }
            }
            ItemKind::Mod {
                items: Some(items), ..
            } => {
                for it in items {
                    self.walk_item(file, it, None, test_only);
                }
            }
            ItemKind::Impl { ty, items, .. } => {
                for it in items {
                    self.walk_item(file, it, Some(ty), test_only);
                }
            }
            ItemKind::Trait { name, items } => {
                // Default trait methods get the trait name as their type.
                for it in items {
                    self.walk_item(file, it, Some(name), test_only);
                }
            }
            ItemKind::Const { name, init } | ItemKind::Static { name, init } => {
                if let Some(Expr::Lit {
                    kind: LitKind::Str(s),
                    ..
                }) = init
                {
                    self.str_consts.insert(name.clone(), s.clone());
                }
            }
            ItemKind::ExternBlock { items } => {
                for it in items {
                    self.walk_item(file, it, None, test_only);
                }
            }
            _ => {}
        }
    }

    /// Nested `fn` items inside bodies still become declarations.
    fn walk_block_items(&mut self, file: &str, b: &Block, test_only: bool) {
        for s in &b.stmts {
            if let Stmt::Item(it) = s {
                self.walk_item(file, it, None, test_only);
            }
        }
    }
}

fn span_start(attrs: &[Attr], fn_line: u32) -> u32 {
    attrs
        .iter()
        .map(|a| a.line)
        .min()
        .unwrap_or(fn_line)
        .min(fn_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn ws(src: &str) -> Workspace {
        let ast = parse(&lex(src).tokens);
        Workspace::build(&[("crates/x/src/lib.rs".to_string(), ast)])
    }

    #[test]
    fn methods_get_qualified_names() {
        let w = ws("struct A; impl A { fn go(&self) {} }\nfn free() {}");
        assert_eq!(w.fns.len(), 2);
        assert_eq!(w.fns[0].qual_name(), "A::go");
        assert!(w.fns[0].has_self());
        assert_eq!(w.fns[1].qual_name(), "free");
        assert_eq!(w.qualified("A::go"), &[0]);
        assert_eq!(w.named("go"), &[0]);
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_test_only() {
        let w = ws("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n#[test]\nfn t() {}");
        let by: BTreeMap<_, _> = w
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.test_only))
            .collect();
        assert!(!by["live"]);
        assert!(by["helper"]);
        assert!(by["t"]);
    }

    #[test]
    fn string_consts_are_collected() {
        let w = ws("const ENV: &str = \"CCSIM_CHAOS_THREADS\";\nstatic OTHER: &str = \"x\";");
        assert_eq!(w.str_consts["ENV"], "CCSIM_CHAOS_THREADS");
        assert_eq!(w.str_consts["OTHER"], "x");
    }

    #[test]
    fn span_start_covers_attribute_lines() {
        let w = ws("#[inline]\n#[cold]\nfn f() {}");
        assert_eq!(w.fns[0].line, 3);
        assert_eq!(w.fns[0].span_start, 1);
    }

    #[test]
    fn trait_default_methods_qualify_under_the_trait() {
        let w = ws("trait T { fn d(&self) { self.r() } fn r(&self); }");
        assert_eq!(w.fns[0].qual_name(), "T::d");
        assert!(w.fns[1].body.is_none());
    }
}
