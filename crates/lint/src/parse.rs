//! Pass 0.5: a zero-dependency recursive-descent parser over the lexer's
//! token stream, producing the lossy AST in [`crate::ast`].
//!
//! Design constraints, in order:
//! 1. **Never fabricate structure.** Anything the parser is unsure about
//!    becomes `Unknown` or an opaque `MacroCall` — the semantic rules treat
//!    both conservatively.
//! 2. **Zero errors on the workspace.** The parser self-check test pins
//!    `errors.is_empty()` for every `.rs` file in this repository, so parse
//!    errors are a recovery path for fixtures and foreign code only.
//! 3. **Lossy where it is safe to be.** Types, generics, and lifetimes are
//!    skipped (with `<>` balancing guarded against `->`); patterns are
//!    reduced to their bound names; macro bodies are skipped entirely.
//!
//! Multi-character operators do not exist in the token stream (the lexer
//! emits punctuation one `Sym` at a time); the parser reconstructs them from
//! byte-column adjacency (`::` is two glued `:` tokens), which is also how
//! `a = = b` (never valid) and `a == b` stay distinguishable.

use crate::ast::*;
use crate::lexer::{Tok, Token};

/// Parse one file's token stream.
pub fn parse(toks: &[Token]) -> SourceFile {
    let mut p = Parser {
        toks,
        pos: 0,
        errors: Vec::new(),
    };
    let mut file = SourceFile::default();
    while !p.eof() {
        if p.at_sym('#') && p.nth_is_sym(1, '!') {
            if let Some(a) = p.parse_one_attr() {
                file.inner_attrs.push(a);
            }
            continue;
        }
        let before = p.pos;
        match p.parse_item() {
            Some(item) => file.items.push(item),
            None => {
                if p.pos == before {
                    p.bump(); // ensure progress past an unrecognized token
                }
            }
        }
    }
    file.errors = p.errors;
    file
}

/// All multi-character operators the parser reconstructs from adjacency,
/// longest first so munching prefers `..=` over `..`.
const OPS3: &[&str] = &["<<=", ">>=", "..="];
const OPS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "..",
];

/// Binary operator precedence (higher binds tighter). `=`/compound-assign
/// and `..` ranges are handled at their own levels, not here.
fn bin_prec(op: &str) -> Option<u8> {
    Some(match op {
        "||" => 1,
        "&&" => 2,
        "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
        "|" => 4,
        "^" => 5,
        "&" => 6,
        "<<" | ">>" => 7,
        "+" | "-" => 8,
        "*" | "/" | "%" => 9,
        _ => return None,
    })
}

fn is_assign_op(op: &str) -> bool {
    matches!(
        op,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    errors: Vec<ParseError>,
}

impl<'a> Parser<'a> {
    // -- token primitives ---------------------------------------------------

    fn eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn cur(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn nth(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + n)
    }

    fn line(&self) -> u32 {
        self.cur()
            .map_or(self.toks.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_sym(&self, c: char) -> bool {
        matches!(self.cur(), Some(Token { tok: Tok::Sym(s), .. }) if *s == c)
    }

    fn nth_is_sym(&self, n: usize, c: char) -> bool {
        matches!(self.nth(n), Some(Token { tok: Tok::Sym(s), .. }) if *s == c)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.cur(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    fn nth_is_kw(&self, n: usize, kw: &str) -> bool {
        matches!(self.nth(n), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.at_sym(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        if let Some(Token {
            tok: Tok::Ident(s), ..
        }) = self.cur()
        {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    fn error(&mut self, msg: &str) {
        let line = self.line();
        // Collapse runs of errors on one line — recovery often stumbles a few
        // tokens before resynchronizing.
        if self.errors.last().is_some_and(|e| e.line == line) {
            return;
        }
        self.errors.push(ParseError {
            line,
            msg: msg.to_string(),
        });
    }

    /// Display width of token `i` (0 for strings, whose source width is not
    /// recoverable — nothing ever needs to glue onto a string).
    fn width(t: &Token) -> u32 {
        match &t.tok {
            Tok::Ident(s) | Tok::Num(s) => s.len() as u32,
            Tok::Sym(_) => 1,
            Tok::Str(_) => 0,
        }
    }

    /// Is token `pos + n + 1` glued directly after token `pos + n`?
    fn glued(&self, n: usize) -> bool {
        match (self.nth(n), self.nth(n + 1)) {
            (Some(a), Some(b)) => {
                a.line == b.line && Self::width(a) > 0 && b.col == a.col + Self::width(a)
            }
            _ => false,
        }
    }

    /// Munch the longest operator starting at the cursor without consuming
    /// it. Returns the operator text (single symbols yield themselves).
    fn peek_op(&self) -> Option<String> {
        let Token {
            tok: Tok::Sym(a), ..
        } = self.cur()?
        else {
            return None;
        };
        let mut s = a.to_string();
        if self.glued(0) {
            if let Some(Token {
                tok: Tok::Sym(b), ..
            }) = self.nth(1)
            {
                s.push(*b);
                if self.glued(1) {
                    if let Some(Token {
                        tok: Tok::Sym(c), ..
                    }) = self.nth(2)
                    {
                        let s3 = format!("{s}{c}");
                        if OPS3.contains(&s3.as_str()) {
                            return Some(s3);
                        }
                    }
                }
                if OPS2.contains(&s.as_str()) {
                    return Some(s);
                }
            }
        }
        Some(a.to_string())
    }

    fn at_op(&self, op: &str) -> bool {
        self.peek_op().as_deref() == Some(op)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.pos += op.len(); // all ops are 1 token per char
            true
        } else {
            false
        }
    }

    /// Index of the matching close for the open bracket at `self.pos`.
    fn matching(&self, oc: char, cc: char) -> usize {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.toks.len() {
            if let Tok::Sym(s) = self.toks[i].tok {
                if s == oc {
                    depth += 1;
                } else if s == cc {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// Skip a balanced delimiter group starting at the cursor (`(`, `[`, or
    /// `{`). No-op when the cursor is not on an opener.
    fn skip_delimited(&mut self) -> bool {
        let (oc, cc) = match self.cur() {
            Some(Token {
                tok: Tok::Sym('('), ..
            }) => ('(', ')'),
            Some(Token {
                tok: Tok::Sym('['), ..
            }) => ('[', ']'),
            Some(Token {
                tok: Tok::Sym('{'), ..
            }) => ('{', '}'),
            _ => return false,
        };
        self.pos = self.matching(oc, cc) + 1;
        true
    }

    /// Render a token slice as flat text (used for `use` trees and
    /// attribute bodies). Deterministic, not source-faithful.
    fn render_tokens(toks: &[Token]) -> String {
        let mut out = String::new();
        let mut prev_wordish = false;
        for t in toks {
            match &t.tok {
                Tok::Ident(s) | Tok::Num(s) => {
                    if prev_wordish {
                        out.push(' ');
                    }
                    out.push_str(s);
                    prev_wordish = true;
                }
                Tok::Str(s) => {
                    out.push_str(&format!("{s:?}"));
                    prev_wordish = true;
                }
                Tok::Sym(',') => {
                    out.push_str(", ");
                    prev_wordish = false;
                }
                Tok::Sym(c) => {
                    out.push(*c);
                    prev_wordish = false;
                }
            }
        }
        out
    }

    // -- attributes ---------------------------------------------------------

    /// Parse one `#[...]` / `#![...]` at the cursor.
    fn parse_one_attr(&mut self) -> Option<Attr> {
        let line = self.line();
        if !self.eat_sym('#') {
            return None;
        }
        self.eat_sym('!');
        if !self.at_sym('[') {
            self.error("expected `[` after `#`");
            return None;
        }
        let close = self.matching('[', ']');
        let body = &self.toks[self.pos + 1..close];
        let attr = Attr {
            line,
            text: Self::render_tokens(body),
            testish: crate::source::attr_is_testish(body),
        };
        self.pos = close + 1;
        Some(attr)
    }

    fn parse_outer_attrs(&mut self) -> Vec<Attr> {
        let mut attrs = Vec::new();
        while self.at_sym('#') && !self.nth_is_sym(1, '!') {
            match self.parse_one_attr() {
                Some(a) => attrs.push(a),
                None => break,
            }
        }
        attrs
    }

    // -- types and generics (skipped, with balancing) -----------------------

    /// Skip a `<...>` generic-argument/parameter list starting at `<`.
    /// `->` inside (`Fn() -> T`) never closes the list.
    fn skip_generics(&mut self) {
        debug_assert!(self.at_sym('<'));
        let mut depth = 0i32;
        while !self.eof() {
            if self.at_op("->") || self.at_op("=>") {
                self.pos += 2;
                continue;
            }
            match self.cur().map(|t| &t.tok) {
                Some(Tok::Sym('<')) => {
                    depth += 1;
                    self.bump();
                }
                Some(Tok::Sym('>')) => {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                Some(Tok::Sym('(')) | Some(Tok::Sym('[')) | Some(Tok::Sym('{')) => {
                    self.skip_delimited();
                }
                Some(_) => self.bump(),
                None => return,
            }
        }
    }

    /// Skip a type, stopping (without consuming) at any of `stops` or the
    /// identifier keywords in `kw_stops` at angle/paren/bracket depth 0. A
    /// `>` at depth 0 also stops (it closes the caller's generic list).
    fn skip_type(&mut self, stops: &[char], kw_stops: &[&str]) {
        let mut depth = 0i32;
        while !self.eof() {
            if self.at_op("->") {
                self.pos += 2;
                continue;
            }
            match self.cur().map(|t| &t.tok) {
                Some(Tok::Sym('<')) => {
                    depth += 1;
                    self.bump();
                }
                Some(Tok::Sym('>')) => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                Some(Tok::Sym(c)) if depth == 0 && stops.contains(c) => return,
                Some(Tok::Sym('(')) | Some(Tok::Sym('[')) => {
                    self.skip_delimited();
                }
                Some(Tok::Sym(')')) | Some(Tok::Sym(']')) | Some(Tok::Sym('}')) if depth == 0 => {
                    return; // unbalanced close belongs to the caller
                }
                Some(Tok::Ident(s)) if depth == 0 && kw_stops.contains(&s.as_str()) => return,
                Some(_) => self.bump(),
                None => return,
            }
        }
    }

    /// Skip the type of an `expr as Type` cast: prefix (`&`, `*const`,
    /// `*mut`), then a path with optional glued generics, or a parenthesized
    /// type. Deliberately minimal — cast types are simple in practice, and
    /// a following binary operator (`x as usize * 2`) must survive.
    fn skip_cast_type(&mut self) {
        while self.at_sym('&')
            || self.at_sym('*')
            || self.at_kw("mut")
            || self.at_kw("const")
            || self.at_kw("dyn")
        {
            self.bump();
        }
        if self.at_sym('(') {
            self.skip_delimited();
            return;
        }
        while matches!(
            self.cur(),
            Some(Token {
                tok: Tok::Ident(_),
                ..
            })
        ) {
            let glued_lt = self.glued(0) && self.nth_is_sym(1, '<');
            self.bump();
            if glued_lt {
                self.skip_generics();
            }
            if self.at_op("::") {
                self.pos += 2;
            } else {
                break;
            }
        }
    }

    // -- patterns (reduced to bound names) ----------------------------------

    /// Walk pattern tokens, collecting likely bindings, until one of the
    /// operator `stops` or keyword `kw_stops` appears at bracket depth 0 (or
    /// an unbalanced close). Stops are not consumed.
    fn collect_pat_binds(&mut self, stops: &[&str], kw_stops: &[&str]) -> Vec<String> {
        let mut binds: Vec<String> = Vec::new();
        let mut depth = 0i32;
        let mut brace_depth = 0i32;
        while !self.eof() {
            if depth == 0 {
                if let Some(op) = self.peek_op() {
                    if stops.contains(&op.as_str()) {
                        break;
                    }
                }
            }
            match self.cur().map(|t| &t.tok) {
                Some(Tok::Sym(c)) if matches!(c, '(' | '[' | '{') => {
                    if *c == '{' {
                        brace_depth += 1;
                    }
                    depth += 1;
                    self.bump();
                }
                Some(Tok::Sym(c)) if matches!(c, ')' | ']' | '}') => {
                    if depth == 0 {
                        break;
                    }
                    if *c == '}' {
                        brace_depth -= 1;
                    }
                    depth -= 1;
                    self.bump();
                }
                Some(Tok::Ident(s)) => {
                    if depth == 0 && kw_stops.contains(&s.as_str()) {
                        break;
                    }
                    let s = s.clone();
                    let is_path_seg = self.glued_or_not_op_colons();
                    // Inside a struct pattern (`Foo { x: pat }`), an ident
                    // before a single `:` is a field name, not a binding.
                    // Outside braces a single `:` is type ascription and the
                    // ident *is* the binding.
                    let is_field_name = brace_depth > 0 && self.next_single_colon();
                    let next_is_call = self.nth_is_sym(1, '(');
                    let kw = matches!(
                        s.as_str(),
                        "mut" | "ref" | "box" | "true" | "false" | "const" | "dyn" | "_"
                    );
                    let binds_here = !kw
                        && !is_path_seg
                        && !is_field_name
                        && !next_is_call
                        && s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_');
                    if binds_here && !binds.contains(&s) {
                        binds.push(s);
                    }
                    self.bump();
                }
                Some(_) => {
                    // Consume glued operators whole: bumping `::` one colon
                    // at a time would leave a lone `:` that masquerades as a
                    // type-ascription stop.
                    if let Some(op) = self.peek_op() {
                        self.pos += op.len();
                    } else {
                        self.bump();
                    }
                }
                None => break,
            }
        }
        binds
    }

    /// After an identifier at the cursor: is the following token pair `::`?
    fn glued_or_not_op_colons(&self) -> bool {
        self.nth_is_sym(1, ':') && self.nth_is_sym(2, ':')
    }

    /// After an identifier at the cursor: is the next token a single `:`
    /// (struct-field name position), not `::`?
    fn next_single_colon(&self) -> bool {
        self.nth_is_sym(1, ':') && !self.nth_is_sym(2, ':')
    }

    // -- items --------------------------------------------------------------

    fn parse_item(&mut self) -> Option<Item> {
        let attrs = self.parse_outer_attrs();
        let line = self.line();
        // Visibility.
        if self.eat_kw("pub") && self.at_sym('(') {
            self.skip_delimited();
        }
        // Leading qualifiers (`const fn`, `unsafe fn`, `extern "C" fn`,
        // `default fn`). `const`/`extern` double as item keywords, so only
        // consume them as qualifiers when a `fn` can still follow.
        loop {
            let plain_qualifier = self.at_kw("unsafe")
                || self.at_kw("default")
                || (self.at_kw("const")
                    && (self.nth_is_kw(1, "fn")
                        || self.nth_is_kw(1, "unsafe")
                        || self.nth_is_kw(1, "extern")));
            if plain_qualifier {
                self.bump();
            } else if self.at_kw("extern")
                && (matches!(
                    self.nth(1),
                    Some(Token {
                        tok: Tok::Str(_),
                        ..
                    })
                ) && self.nth_is_kw(2, "fn")
                    || self.nth_is_kw(1, "fn"))
            {
                self.bump();
                if matches!(
                    self.cur(),
                    Some(Token {
                        tok: Tok::Str(_),
                        ..
                    })
                ) {
                    self.bump();
                }
            } else {
                break;
            }
        }

        let kind = if self.at_kw("fn") {
            ItemKind::Fn(self.parse_fn()?)
        } else if self.at_kw("mod") {
            self.bump();
            let name = self.ident().unwrap_or_default();
            if self.eat_sym(';') {
                ItemKind::Mod { name, items: None }
            } else if self.at_sym('{') {
                self.bump();
                let mut items = Vec::new();
                while !self.eof() && !self.at_sym('}') {
                    let before = self.pos;
                    match self.parse_item() {
                        Some(it) => items.push(it),
                        None => {
                            if self.pos == before {
                                self.bump();
                            }
                        }
                    }
                }
                self.eat_sym('}');
                ItemKind::Mod {
                    name,
                    items: Some(items),
                }
            } else {
                self.error("expected `;` or `{` after mod name");
                return None;
            }
        } else if self.at_kw("use") {
            self.bump();
            let start = self.pos;
            while !self.eof() && !self.at_sym(';') {
                if !self.skip_delimited() {
                    self.bump();
                }
            }
            let tree = Self::render_tokens(&self.toks[start..self.pos]);
            self.eat_sym(';');
            ItemKind::Use { tree }
        } else if self.at_kw("struct")
            || self.at_kw("enum")
            || self.at_kw("union")
            || self.at_kw("trait")
        {
            let kw = self.ident().unwrap_or_default();
            let name = self.ident().unwrap_or_default();
            if self.at_sym('<') {
                self.skip_generics();
            }
            // Supertrait bounds (`trait FromJson: Sized`).
            if self.at_sym(':') && !self.nth_is_sym(1, ':') {
                self.bump();
                self.skip_type(&['{', ';'], &["where"]);
            }
            if self.at_kw("where") {
                self.skip_type(&['{', ';'], &[]);
            }
            match kw.as_str() {
                "trait" => {
                    let mut items = Vec::new();
                    if self.at_sym('{') {
                        self.bump();
                        while !self.eof() && !self.at_sym('}') {
                            let before = self.pos;
                            match self.parse_item() {
                                Some(it) => items.push(it),
                                None => {
                                    if self.pos == before {
                                        self.bump();
                                    }
                                }
                            }
                        }
                        self.eat_sym('}');
                    }
                    ItemKind::Trait { name, items }
                }
                _ => {
                    // Tuple struct `(..)` [+ `;`], unit struct `;`, or a
                    // brace body (fields/variants are not modeled).
                    if self.at_sym('(') {
                        self.skip_delimited();
                        if self.at_kw("where") {
                            self.skip_type(&[';'], &[]);
                        }
                    }
                    if !self.eat_sym(';') {
                        self.skip_delimited();
                    }
                    match kw.as_str() {
                        "struct" => ItemKind::Struct { name },
                        "enum" => ItemKind::Enum { name },
                        _ => ItemKind::Union { name },
                    }
                }
            }
        } else if self.at_kw("impl") {
            self.bump();
            if self.at_sym('<') {
                self.skip_generics();
            }
            // First type path (trait or self type).
            let first_start = self.pos;
            self.skip_type(&['{'], &["for", "where"]);
            let first = self.toks[first_start..self.pos].to_vec();
            let (trait_name, ty) = if self.eat_kw("for") {
                let ty_start = self.pos;
                self.skip_type(&['{'], &["where"]);
                let ty = Self::base_type_name(&self.toks[ty_start..self.pos]);
                (Some(Self::base_type_name(&first)), ty)
            } else {
                (None, Self::base_type_name(&first))
            };
            if self.at_kw("where") {
                self.skip_type(&['{'], &[]);
            }
            let mut items = Vec::new();
            if self.at_sym('{') {
                self.bump();
                while !self.eof() && !self.at_sym('}') {
                    let before = self.pos;
                    match self.parse_item() {
                        Some(it) => items.push(it),
                        None => {
                            if self.pos == before {
                                self.bump();
                            }
                        }
                    }
                }
                self.eat_sym('}');
            }
            ItemKind::Impl {
                ty,
                trait_name,
                items,
            }
        } else if self.at_kw("const") || self.at_kw("static") {
            let kw = self.ident().unwrap_or_default();
            self.eat_kw("mut");
            let name = self.ident().unwrap_or_default();
            if self.eat_sym(':') {
                self.skip_type(&['=', ';'], &[]);
            }
            let init = if self.eat_sym('=') {
                Some(self.expr(false))
            } else {
                None
            };
            if !self.eat_sym(';') {
                self.error("expected `;` after const/static");
                self.recover_to_semi();
            }
            if kw == "const" {
                ItemKind::Const { name, init }
            } else {
                ItemKind::Static { name, init }
            }
        } else if self.at_kw("type") {
            self.bump();
            let name = self.ident().unwrap_or_default();
            while !self.eof() && !self.at_sym(';') {
                if !self.skip_delimited() {
                    self.bump();
                }
            }
            self.eat_sym(';');
            ItemKind::TypeAlias { name }
        } else if self.at_kw("macro_rules") {
            self.bump();
            self.eat_sym('!');
            let name = self.ident().unwrap_or_default();
            let paren_form = self.at_sym('(') || self.at_sym('[');
            self.skip_delimited();
            if paren_form {
                self.eat_sym(';');
            }
            ItemKind::MacroDef { name }
        } else if self.at_kw("extern") {
            self.bump();
            if self.at_kw("crate") {
                self.bump();
                let name = self.ident().unwrap_or_default();
                while !self.eof() && !self.at_sym(';') {
                    self.bump();
                }
                self.eat_sym(';');
                ItemKind::ExternCrate { name }
            } else {
                if matches!(
                    self.cur(),
                    Some(Token {
                        tok: Tok::Str(_),
                        ..
                    })
                ) {
                    self.bump();
                }
                let mut items = Vec::new();
                if self.at_sym('{') {
                    self.bump();
                    while !self.eof() && !self.at_sym('}') {
                        let before = self.pos;
                        match self.parse_item() {
                            Some(it) => items.push(it),
                            None => {
                                if self.pos == before {
                                    self.bump();
                                }
                            }
                        }
                    }
                    self.eat_sym('}');
                } else {
                    self.error("expected `{` or `crate` after extern");
                }
                ItemKind::ExternBlock { items }
            }
        } else if matches!(
            self.cur(),
            Some(Token {
                tok: Tok::Ident(_),
                ..
            })
        ) {
            // Item-position macro invocation: `path::name! ( .. );`
            let start = self.pos;
            let mut last = self.ident().unwrap_or_default();
            while self.at_op("::")
                && matches!(
                    self.nth(2),
                    Some(Token {
                        tok: Tok::Ident(_),
                        ..
                    })
                )
            {
                self.pos += 2;
                last = self.ident().unwrap_or_default();
            }
            if self.eat_sym('!') {
                let paren_form = self.at_sym('(') || self.at_sym('[');
                self.skip_delimited();
                if paren_form {
                    self.eat_sym(';');
                }
                ItemKind::MacroCall { name: last }
            } else {
                self.pos = start;
                self.error("unrecognized item");
                self.recover_to_semi();
                return None;
            }
        } else if self.at_sym(';') {
            self.bump();
            return None; // stray semicolon — not an item
        } else {
            self.error("unrecognized item");
            self.recover_to_semi();
            return None;
        };

        Some(Item { attrs, line, kind })
    }

    /// Last identifier at angle-depth 0 of a type token slice (`Vec<T>` →
    /// `Vec`, `fmt::Display` → `Display`); falls back to the last identifier
    /// anywhere (`[u8]` → `u8`).
    fn base_type_name(toks: &[Token]) -> String {
        let mut depth = 0i32;
        let mut top: Option<&str> = None;
        let mut any: Option<&str> = None;
        for t in toks {
            match &t.tok {
                Tok::Sym('<') => depth += 1,
                Tok::Sym('>') => depth -= 1,
                Tok::Ident(s) if s != "mut" && s != "dyn" => {
                    any = Some(s);
                    if depth == 0 {
                        top = Some(s);
                    }
                }
                _ => {}
            }
        }
        top.or(any).unwrap_or("?").to_string()
    }

    /// Skip tokens to just past the next statement-level `;` (or stop before
    /// a `}`): coarse error recovery.
    fn recover_to_semi(&mut self) {
        while !self.eof() {
            if self.at_sym(';') {
                self.bump();
                return;
            }
            if self.at_sym('}') {
                return;
            }
            if !self.skip_delimited() {
                self.bump();
            }
        }
    }

    fn parse_fn(&mut self) -> Option<FnDef> {
        let line = self.line();
        if !self.eat_kw("fn") {
            return None;
        }
        let name = self.ident().unwrap_or_else(|| {
            self.error("expected fn name");
            String::from("?")
        });
        if self.at_sym('<') {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.at_sym('(') {
            let close = self.matching('(', ')');
            self.bump();
            while self.pos < close {
                // One parameter: attrs, then pattern up to `:`, then type.
                while self.at_sym('#') {
                    self.parse_one_attr();
                }
                let pat_binds = self.parse_param_pattern(close);
                params.extend(pat_binds);
                if self.at_sym(':') {
                    self.bump();
                    self.skip_type(&[','], &[]);
                }
                if !self.eat_sym(',') {
                    break;
                }
            }
            self.pos = close + 1;
        } else {
            self.error("expected `(` after fn name");
        }
        if self.at_op("->") {
            self.pos += 2;
            self.skip_type(&['{', ';'], &["where"]);
        }
        if self.at_kw("where") {
            self.skip_type(&['{', ';'], &[]);
        }
        let body = if self.at_sym('{') {
            Some(self.parse_block())
        } else {
            self.eat_sym(';');
            None
        };
        Some(FnDef {
            name,
            line,
            params,
            body,
        })
    }

    /// Pattern part of one fn parameter (everything before the `:`). A
    /// receiver (`self`, `&self`, `&mut self`, `mut self`) yields `self` —
    /// special-cased because the lexer reduces `&'a self` to `& a self` and
    /// the generic walker would bind the lifetime name.
    fn parse_param_pattern(&mut self, close: usize) -> Vec<String> {
        // Scan ahead for a bare `self` before the param's `:`/`,`.
        let mut j = self.pos;
        let mut depth = 0i32;
        let mut saw_self = false;
        while j < close {
            match &self.toks[j].tok {
                Tok::Sym('(') | Tok::Sym('[') | Tok::Sym('{') => depth += 1,
                Tok::Sym(')') | Tok::Sym(']') | Tok::Sym('}') => depth -= 1,
                Tok::Sym(':') | Tok::Sym(',') if depth == 0 => break,
                Tok::Ident(s) if depth == 0 && s == "self" => saw_self = true,
                _ => {}
            }
            j += 1;
        }
        if saw_self {
            self.pos = j;
            return vec!["self".to_string()];
        }
        self.collect_pat_binds(&[":", ","], &[])
    }

    // -- blocks and statements ----------------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        let mut block = Block {
            line,
            stmts: Vec::new(),
        };
        if !self.eat_sym('{') {
            self.error("expected `{`");
            return block;
        }
        while !self.eof() && !self.at_sym('}') {
            if self.eat_sym(';') {
                continue;
            }
            // Inner attrs inside blocks (`#![allow(..)]`) — skip.
            if self.at_sym('#') && self.nth_is_sym(1, '!') {
                self.parse_one_attr();
                continue;
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            }
            if self.pos == before {
                self.bump(); // guarantee progress
            }
        }
        self.eat_sym('}');
        block
    }

    fn at_item_start(&self) -> bool {
        if self.at_sym('#') && !self.nth_is_sym(1, '!') {
            return true;
        }
        let Some(Token {
            tok: Tok::Ident(s), ..
        }) = self.cur()
        else {
            return false;
        };
        match s.as_str() {
            "fn" | "use" | "mod" | "struct" | "enum" | "trait" | "impl" | "static" | "pub"
            | "macro_rules" | "type" => true,
            // `const NAME` / `const fn` are items; `const` elsewhere is not.
            "const" => matches!(
                self.nth(1),
                Some(Token {
                    tok: Tok::Ident(_),
                    ..
                })
            ),
            "extern" => true,
            "union" => {
                matches!(
                    self.nth(1),
                    Some(Token {
                        tok: Tok::Ident(_),
                        ..
                    })
                ) && self.nth_is_sym(2, '{')
            }
            _ => false,
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        // Outer attributes on a statement (`#[cfg(feature = "x")] { .. }`):
        // consume them here so an attributed expression statement is not
        // mistaken for an item. If an item does follow, it keeps the attrs.
        let attrs = self.parse_outer_attrs();
        if self.at_kw("let") {
            return Some(self.parse_let());
        }
        if self.at_item_start() {
            return self.parse_item().map(|mut it| {
                let mut all = attrs;
                all.extend(it.attrs);
                it.attrs = all;
                Stmt::Item(it)
            });
        }
        let expr = self.expr(false);
        if self.eat_sym(';') {
            return Some(Stmt::Expr { expr, semi: true });
        }
        if self.at_sym('}') {
            return Some(Stmt::Expr { expr, semi: false });
        }
        // Block-like expressions are valid statements without `;`.
        if matches!(
            expr,
            Expr::If { .. }
                | Expr::Match { .. }
                | Expr::While { .. }
                | Expr::Loop { .. }
                | Expr::For { .. }
                | Expr::Block(_)
        ) {
            return Some(Stmt::Expr { expr, semi: true });
        }
        self.error("expected `;` after expression statement");
        self.recover_to_semi();
        Some(Stmt::Expr { expr, semi: true })
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat_kw("let");
        let binds = self.collect_pat_binds(&["=", ":", ";"], &["else"]);
        if self.eat_sym(':') {
            self.skip_type(&['=', ';'], &["else"]);
        }
        let init = if self.eat_op("=") {
            Some(self.expr(false))
        } else {
            None
        };
        let else_block = if self.eat_kw("else") {
            Some(self.parse_block())
        } else {
            None
        };
        if !self.eat_sym(';') {
            self.error("expected `;` after let statement");
            self.recover_to_semi();
        }
        Stmt::Let {
            line,
            binds,
            init,
            else_block,
        }
    }

    // -- expressions --------------------------------------------------------

    /// Full expression. `ns` ("no struct") suppresses struct-literal parsing
    /// after paths, for `if`/`while`/`match`/`for` header positions where
    /// `Foo {` must be the block, not a literal.
    fn expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let lhs = self.range_expr(ns);
        if let Some(op) = self.peek_op() {
            if is_assign_op(&op) {
                self.pos += op.len();
                let rhs = self.expr(ns);
                return Expr::Assign {
                    line,
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            }
        }
        lhs
    }

    fn starts_expr(&self) -> bool {
        match self.cur().map(|t| &t.tok) {
            Some(Tok::Ident(s)) => !matches!(s.as_str(), "else" | "in" | "where"),
            Some(Tok::Num(_)) | Some(Tok::Str(_)) => true,
            Some(Tok::Sym(c)) => matches!(c, '(' | '[' | '&' | '*' | '-' | '!' | '|' | '<'),
            None => false,
        }
    }

    fn range_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if let Some(op) = self.peek_op() {
            if op == ".." || op == "..=" {
                self.pos += op.len();
                let hi = if self.starts_expr() {
                    Some(Box::new(self.binary(ns, 1)))
                } else {
                    None
                };
                return Expr::Range { line, lo: None, hi };
            }
        }
        let lhs = self.binary(ns, 1);
        if let Some(op) = self.peek_op() {
            if op == ".." || op == "..=" {
                self.pos += op.len();
                let hi = if self.starts_expr() {
                    Some(Box::new(self.binary(ns, 1)))
                } else {
                    None
                };
                return Expr::Range {
                    line,
                    lo: Some(Box::new(lhs)),
                    hi,
                };
            }
        }
        lhs
    }

    fn binary(&mut self, ns: bool, min_prec: u8) -> Expr {
        let mut lhs = self.unary(ns);
        while let Some(op) = self.peek_op() {
            let Some(prec) = bin_prec(&op) else { break };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.pos += op.len();
            let rhs = self.binary(ns, prec + 1);
            lhs = Expr::Binary {
                line,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn unary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.at_sym('&') {
            self.bump();
            self.eat_kw("mut");
            return Expr::Unary {
                line,
                op: '&',
                expr: Box::new(self.unary(ns)),
            };
        }
        for op in ['*', '-', '!'] {
            if self.at_sym(op) {
                self.bump();
                return Expr::Unary {
                    line,
                    op,
                    expr: Box::new(self.unary(ns)),
                };
            }
        }
        self.postfix(ns)
    }

    fn postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.primary(ns);
        loop {
            let line = self.line();
            // A block-like expression in statement position terminates the
            // expression: `for .. { .. }` followed by `[a, b]` is two
            // statements, not an indexing. `.method()` chains still apply.
            if matches!(
                e,
                Expr::If { .. }
                    | Expr::Match { .. }
                    | Expr::While { .. }
                    | Expr::Loop { .. }
                    | Expr::For { .. }
                    | Expr::Block(_)
            ) && matches!(self.peek_op().as_deref(), Some("(") | Some("["))
            {
                return e;
            }
            match self.peek_op().as_deref() {
                Some(".") => {
                    self.bump();
                    match self.cur().map(|t| t.tok.clone()) {
                        Some(Tok::Ident(name)) => {
                            self.bump();
                            // Turbofish on a method: `.collect::<Vec<_>>()`.
                            if self.at_op("::") && self.nth_is_sym(2, '<') {
                                self.pos += 2;
                                self.skip_generics();
                            }
                            if self.at_sym('(') {
                                let args = self.paren_args();
                                e = Expr::MethodCall {
                                    line,
                                    recv: Box::new(e),
                                    method: name,
                                    args,
                                };
                            } else {
                                e = Expr::Field {
                                    line,
                                    base: Box::new(e),
                                    name,
                                };
                            }
                        }
                        Some(Tok::Num(n)) => {
                            self.bump();
                            e = Expr::Field {
                                line,
                                base: Box::new(e),
                                name: n,
                            };
                        }
                        _ => {
                            self.error("expected field or method name after `.`");
                            return e;
                        }
                    }
                }
                Some("(") => {
                    let args = self.paren_args();
                    e = Expr::Call {
                        line,
                        callee: Box::new(e),
                        args,
                    };
                }
                Some("[") => {
                    self.bump();
                    let index = self.expr(false);
                    if !self.eat_sym(']') {
                        self.error("expected `]`");
                        self.recover_close(']');
                    }
                    e = Expr::Index {
                        line,
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Some("?") => {
                    self.bump();
                    e = Expr::Try {
                        line,
                        expr: Box::new(e),
                    };
                }
                _ => {
                    if self.at_kw("as") {
                        self.bump();
                        self.skip_cast_type();
                        e = Expr::Cast {
                            line,
                            expr: Box::new(e),
                        };
                        continue;
                    }
                    break;
                }
            }
        }
        e
    }

    fn recover_close(&mut self, close: char) {
        while !self.eof() && !self.at_sym(close) {
            if !self.skip_delimited() {
                self.bump();
            }
        }
        self.eat_sym(close);
    }

    /// `( expr, expr, ... )` call arguments. The `ns` restriction never
    /// crosses parentheses.
    fn paren_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_sym('(') {
            return args;
        }
        while !self.eof() && !self.at_sym(')') {
            args.push(self.expr(false));
            if !self.eat_sym(',') {
                break;
            }
        }
        if !self.eat_sym(')') {
            self.error("expected `)`");
            self.recover_close(')');
        }
        args
    }

    fn primary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        match self.cur().map(|t| t.tok.clone()) {
            Some(Tok::Str(s)) => {
                self.bump();
                Expr::Lit {
                    line,
                    kind: LitKind::Str(s),
                }
            }
            Some(Tok::Num(n)) => {
                self.bump();
                Expr::Lit {
                    line,
                    kind: LitKind::Num(n),
                }
            }
            Some(Tok::Sym('(')) => {
                self.bump();
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                while !self.eof() && !self.at_sym(')') {
                    elems.push(self.expr(false));
                    trailing_comma = self.eat_sym(',');
                    if !trailing_comma {
                        break;
                    }
                }
                if !self.eat_sym(')') {
                    self.error("expected `)`");
                    self.recover_close(')');
                }
                if elems.len() == 1 && !trailing_comma {
                    elems.pop().unwrap_or(Expr::Unknown { line })
                } else {
                    Expr::Tuple { line, elems }
                }
            }
            Some(Tok::Sym('[')) => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && !self.at_sym(']') {
                    elems.push(self.expr(false));
                    if self.eat_sym(';') {
                        // `[elem; len]` repeat form.
                        elems.push(self.expr(false));
                        break;
                    }
                    if !self.eat_sym(',') {
                        break;
                    }
                }
                if !self.eat_sym(']') {
                    self.error("expected `]`");
                    self.recover_close(']');
                }
                Expr::Array { line, elems }
            }
            Some(Tok::Sym('{')) => Expr::Block(self.parse_block()),
            Some(Tok::Sym('<')) => {
                // Qualified path `<T as Trait>::assoc(..)`: skip qualifier,
                // keep the trailing path.
                self.skip_generics();
                let mut segs = vec!["<qualified>".to_string()];
                while self.at_op("::") {
                    self.pos += 2;
                    if let Some(id) = self.ident() {
                        segs.push(id);
                    } else {
                        break;
                    }
                }
                Expr::Path { line, segs }
            }
            Some(Tok::Sym('|')) => self.closure(line),
            Some(Tok::Ident(id)) => self.ident_expr(ns, line, id),
            _ => {
                self.error("expected expression");
                self.bump();
                Expr::Unknown { line }
            }
        }
    }

    fn closure(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.at_op("||") {
            self.pos += 2;
        } else {
            self.eat_sym('|');
            while !self.eof() && !self.at_sym('|') {
                params.extend(self.collect_pat_binds(&[":", ",", "|"], &[]));
                if self.eat_sym(':') {
                    self.skip_type(&[',', '|'], &[]);
                }
                if !self.eat_sym(',') {
                    break;
                }
            }
            self.eat_sym('|');
        }
        let body = if self.at_op("->") {
            self.pos += 2;
            self.skip_type(&['{'], &[]);
            Expr::Block(self.parse_block())
        } else {
            self.expr(false)
        };
        Expr::Closure {
            line,
            params,
            body: Box::new(body),
        }
    }

    fn ident_expr(&mut self, ns: bool, line: u32, id: String) -> Expr {
        match id.as_str() {
            "if" => return self.if_expr(line),
            "match" => {
                self.bump();
                let scrutinee = self.expr(true);
                let mut arms = Vec::new();
                if self.eat_sym('{') {
                    while !self.eof() && !self.at_sym('}') {
                        while self.at_sym('#') {
                            self.parse_one_attr();
                        }
                        if self.at_sym('}') {
                            break;
                        }
                        let arm_line = self.line();
                        let binds = self.collect_pat_binds(&["=>"], &["if"]);
                        let guard = if self.eat_kw("if") {
                            Some(Box::new(self.expr(true)))
                        } else {
                            None
                        };
                        if !self.eat_op("=>") {
                            self.error("expected `=>` in match arm");
                            self.recover_to_semi();
                            break;
                        }
                        let body = self.expr(false);
                        self.eat_sym(',');
                        arms.push(Arm {
                            line: arm_line,
                            binds,
                            guard,
                            body,
                        });
                    }
                    self.eat_sym('}');
                } else {
                    self.error("expected `{` after match scrutinee");
                }
                return Expr::Match {
                    line,
                    scrutinee: Box::new(scrutinee),
                    arms,
                };
            }
            "while" => {
                self.bump();
                let (binds, cond) = if self.eat_kw("let") {
                    let binds = self.collect_pat_binds(&["="], &[]);
                    self.eat_op("=");
                    (binds, self.expr(true))
                } else {
                    (Vec::new(), self.expr(true))
                };
                let body = self.parse_block();
                return Expr::While {
                    line,
                    binds,
                    cond: Box::new(cond),
                    body,
                };
            }
            "loop" => {
                self.bump();
                let body = self.parse_block();
                return Expr::Loop { line, body };
            }
            "for" => {
                self.bump();
                let binds = self.collect_pat_binds(&[], &["in"]);
                self.eat_kw("in");
                let iter = self.expr(true);
                let body = self.parse_block();
                return Expr::For {
                    line,
                    binds,
                    iter: Box::new(iter),
                    body,
                };
            }
            "return" => {
                self.bump();
                let expr = if self.starts_expr() {
                    Some(Box::new(self.expr(false)))
                } else {
                    None
                };
                return Expr::Return { line, expr };
            }
            "break" => {
                self.bump();
                let mut expr = if self.starts_expr() {
                    Some(Box::new(self.expr(false)))
                } else {
                    None
                };
                // `break 'label value`: the lexer drops the tick, so a label
                // parses as a bare path; if another expression follows, the
                // first was the label.
                if matches!(expr.as_deref(), Some(Expr::Path { segs, .. }) if segs.len() == 1)
                    && self.starts_expr()
                {
                    expr = Some(Box::new(self.expr(false)));
                }
                return Expr::Break { line, expr };
            }
            "continue" => {
                self.bump();
                // Optional label (tick dropped by the lexer).
                if let Some(Token {
                    tok: Tok::Ident(_), ..
                }) = self.cur()
                {
                    if !self.at_item_start() && (self.nth_is_sym(1, ';') || self.nth_is_sym(1, '}'))
                    {
                        self.bump();
                    }
                }
                return Expr::Continue { line };
            }
            "unsafe" => {
                self.bump();
                return Expr::Block(self.parse_block());
            }
            "move" => {
                self.bump();
                let l = self.line();
                return self.closure(l);
            }
            _ => {}
        }
        // Loop label: `name : loop/while/for` (lexer dropped the tick).
        if self.next_single_colon()
            && (self.nth_is_kw(2, "loop") || self.nth_is_kw(2, "while") || self.nth_is_kw(2, "for"))
        {
            self.bump();
            self.bump();
            let l = self.line();
            let Some(Token {
                tok: Tok::Ident(kw),
                ..
            }) = self.cur()
            else {
                return Expr::Unknown { line: l };
            };
            let kw = kw.clone();
            return self.ident_expr(ns, l, kw);
        }

        // Path, then macro call / struct literal / plain path.
        let mut segs = vec![id];
        self.bump();
        loop {
            if self.at_op("::") {
                if self.nth_is_sym(2, '<') {
                    self.pos += 2;
                    self.skip_generics(); // turbofish
                    continue;
                }
                if let Some(Token {
                    tok: Tok::Ident(s), ..
                }) = self.nth(2)
                {
                    let s = s.clone();
                    self.pos += 3;
                    segs.push(s);
                    continue;
                }
            }
            break;
        }
        if self.at_sym('!')
            && (self.nth_is_sym(1, '(') || self.nth_is_sym(1, '[') || self.nth_is_sym(1, '{'))
        {
            self.bump();
            self.skip_delimited();
            return Expr::MacroCall {
                line,
                name: segs.pop().unwrap_or_default(),
            };
        }
        if self.at_sym('{') && !ns {
            return self.struct_lit(line, segs);
        }
        Expr::Path { line, segs }
    }

    fn if_expr(&mut self, line: u32) -> Expr {
        self.eat_kw("if");
        let (binds, cond) = if self.eat_kw("let") {
            let binds = self.collect_pat_binds(&["="], &[]);
            self.eat_op("=");
            (binds, self.expr(true))
        } else {
            (Vec::new(), self.expr(true))
        };
        let then = self.parse_block();
        let els = if self.eat_kw("else") {
            if self.at_kw("if") {
                let l = self.line();
                Some(Box::new(self.if_expr(l)))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            line,
            binds,
            cond: Box::new(cond),
            then,
            els,
        }
    }

    fn struct_lit(&mut self, line: u32, path: Vec<String>) -> Expr {
        self.eat_sym('{');
        let mut fields = Vec::new();
        let mut rest = None;
        while !self.eof() && !self.at_sym('}') {
            // Field-level attributes (`#[cfg(feature = "testing")] field: v`).
            self.parse_outer_attrs();
            if self.at_op("..") {
                self.pos += 2;
                rest = Some(Box::new(self.expr(false)));
                break;
            }
            let name = match self.cur().map(|t| t.tok.clone()) {
                Some(Tok::Ident(s)) => {
                    self.bump();
                    s
                }
                Some(Tok::Num(n)) => {
                    self.bump();
                    n
                }
                _ => {
                    self.error("expected field name in struct literal");
                    break;
                }
            };
            let value = if self.next_single_colon_at_cursor() {
                self.bump();
                self.expr(false)
            } else {
                Expr::Path {
                    line: self.line(),
                    segs: vec![name.clone()],
                }
            };
            fields.push((name, value));
            if !self.eat_sym(',') {
                break;
            }
        }
        if !self.eat_sym('}') {
            self.error("expected `}` in struct literal");
            self.recover_close('}');
        }
        Expr::StructLit {
            line,
            path,
            fields,
            rest,
        }
    }

    /// Is the cursor itself a single `:` (not `::`)?
    fn next_single_colon_at_cursor(&self) -> bool {
        self.at_sym(':') && !self.nth_is_sym(1, ':')
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> SourceFile {
        let f = parse(&lex(src).tokens);
        assert!(f.errors.is_empty(), "parse errors: {:?}", f.errors);
        f
    }

    #[test]
    fn items_and_bodies_round_trip() {
        let f = parse_ok(
            "use std::sync::{Arc, Mutex};\n\
             pub struct S { x: u64 }\n\
             impl S {\n\
                 pub fn get(&self, i: usize) -> u64 { self.xs[i] }\n\
             }\n\
             fn main() { let s = S { x: 1 }; s.get(0); }\n",
        );
        assert_eq!(f.items.len(), 4);
        let r = f.render();
        assert!(r.contains("use[1] std::sync::{Arc, Mutex}"), "{r}");
        assert!(r.contains("impl[3] S"), "{r}");
        assert!(r.contains("fn[4] get(self, i)"), "{r}");
        assert!(r.contains("index[4]"), "{r}");
        assert!(r.contains("struct-lit[6] S"), "{r}");
    }

    #[test]
    fn no_struct_restriction_keeps_if_blocks() {
        let f = parse_ok("fn f(x: u64) -> u64 { if x > 1 { x } else { 0 } }");
        let r = f.render();
        assert!(r.contains("if[1]"), "{r}");
        assert!(r.contains("binary[1] >"), "{r}");
        assert!(!r.contains("struct-lit"), "{r}");
    }

    #[test]
    fn method_chains_turbofish_and_casts() {
        let f = parse_ok(
            "fn f(v: Vec<u64>) -> usize { v.iter().map(|x| *x as usize).collect::<Vec<_>>().len() }",
        );
        let r = f.render();
        assert!(r.contains("method[1] .len"), "{r}");
        assert!(r.contains("closure[1] |x|"), "{r}");
        assert!(r.contains("cast[1]"), "{r}");
    }

    #[test]
    fn cast_then_binary_operator_survives() {
        let f = parse_ok("fn f(x: u8) -> usize { x as usize * 2 + 1 }");
        let r = f.render();
        assert!(r.contains("binary[1] *"), "{r}");
        assert!(r.contains("binary[1] +"), "{r}");
    }

    #[test]
    fn let_else_if_let_while_let() {
        let f = parse_ok(
            "fn f(o: Option<u32>) -> u32 {\n\
                 let Some(x) = o else { return 0; };\n\
                 if let Some(y) = o { y } else { x }\n\
             }",
        );
        let r = f.render();
        assert!(r.contains("let[2] x"), "{r}");
        assert!(r.contains("if-let[3] y"), "{r}");
    }

    #[test]
    fn match_arms_with_guards_and_ranges() {
        let f = parse_ok(
            "fn f(x: u32) -> u32 { match x { 0 => 1, n if n > 2 => n, 1..=2 => 0, _ => x } }",
        );
        let r = f.render();
        assert!(r.contains("match[1]"), "{r}");
        assert!(r.contains("arm[1] n"), "{r}");
        assert!(r.contains("guard"), "{r}");
    }

    #[test]
    fn macro_calls_are_opaque() {
        let f = parse_ok(
            "fn f() { println!(\"{} {}\", a, b); assert_eq!(1, 2); }\n\
             macro_rules! m { () => {} }\n\
             m!();",
        );
        let r = f.render();
        assert!(r.contains("macro[1] println!"), "{r}");
        assert!(r.contains("macro-def[2] m"), "{r}");
        assert!(r.contains("macro-item[3] m!"), "{r}");
    }

    #[test]
    fn labeled_loops_and_break_values() {
        let f = parse_ok(
            "fn f() -> u32 { 'outer: loop { loop { break 'outer 3; } } }\n\
             fn g() { 'a: for i in 0..4 { if i > 2 { break 'a; } continue 'a; } }",
        );
        let r = f.render();
        assert!(r.contains("loop[1]"), "{r}");
        assert!(r.contains("for[2] i"), "{r}");
    }

    #[test]
    fn ranges_and_arrays() {
        let f = parse_ok("fn f() { let a = [0u8; 16]; for i in 0..a.len() { touch(&a[..i]); } }");
        let r = f.render();
        assert!(r.contains("array[1]"), "{r}");
        assert!(r.contains("range[1]"), "{r}");
    }

    #[test]
    fn generics_with_fn_arrows_do_not_desync() {
        parse_ok(
            "fn apply<F: Fn(u32) -> u32>(f: F, x: u32) -> u32 { f(x) }\n\
             fn g(m: &HashMap<K, Box<dyn Fn(u8) -> u8>, S>) {}\n\
             impl<T: ToJson> ToJson for Vec<T> { fn to_json(&self) -> Json { Json::Null } }",
        );
    }

    #[test]
    fn extern_blocks_and_unsafe_fns() {
        let f = parse_ok(
            "extern \"C\" { fn switch(a: *mut u8, b: *const u8); }\n\
             unsafe extern \"C\" fn tramp() -> ! { loop {} }\n\
             pub(crate) const unsafe fn danger() {}\n",
        );
        assert_eq!(f.items.len(), 3);
        let r = f.render();
        assert!(r.contains("extern-block[1]"), "{r}");
        assert!(r.contains("fn[2] tramp"), "{r}");
        assert!(r.contains("fn[3] danger"), "{r}");
    }

    #[test]
    fn qualified_paths_parse() {
        parse_ok("fn f() -> u32 { <Baseline as Rules>::apply(s) }");
    }

    #[test]
    fn struct_literals_with_rest_and_shorthand() {
        let f = parse_ok("fn f(x: u64, base: S) -> S { S { x, y: 2, ..base } }");
        let r = f.render();
        assert!(r.contains("field-init x"), "{r}");
        assert!(r.contains("field-init y"), "{r}");
        assert!(r.contains("rest"), "{r}");
    }

    #[test]
    fn tail_vs_semi_statements() {
        let f = parse_ok("fn f() -> u32 { g(); 3 }");
        let r = f.render();
        assert!(r.contains("semi\n"), "{r}");
        assert!(r.contains("tail\n"), "{r}");
    }

    #[test]
    fn nested_closures_capture_structure() {
        let f = parse_ok(
            "fn f(xs: Vec<u32>) -> u32 { xs.iter().map(|x| (0..*x).map(|y| y + 1).sum::<u32>()).sum() }",
        );
        let r = f.render();
        assert!(r.matches("closure[").count() == 2, "{r}");
    }

    #[test]
    fn errors_recover_and_record_lines() {
        let f = parse(&lex("fn f() { let = ; }\nfn g() {}").tokens);
        assert!(!f.errors.is_empty());
        // g still parses after recovery.
        assert!(f.render().contains("fn[2] g"), "{}", f.render());
    }
}
