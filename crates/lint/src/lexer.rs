//! A minimal hand-rolled Rust token scanner.
//!
//! This is deliberately *not* a full Rust lexer: the source lints only need
//! identifiers, string literals, punctuation, and line numbers, with comments
//! and literals handled well enough that tokens are never fabricated inside
//! them. No external parser crates are used (the build is fully offline), and
//! none are needed — every rule in `source.rs` is expressible over this token
//! stream.
//!
//! Guarantees the rules rely on:
//! - line comments, block comments (nested), string/char/byte/raw literals,
//!   and numbers never produce `Ident`/`Sym` tokens from their interior;
//! - `// ccsim-lint: allow(rule): why` directives are extracted from plain
//!   line comments with their line numbers; doc comments (`///`, `//!`) are
//!   documentation and are never parsed as directives, so prose *describing*
//!   the convention cannot accidentally suppress or trip the linter;
//! - lifetimes (`'a`) are distinguished from char literals (`'a'`) so a
//!   generic parameter never desynchronizes the scanner.

/// One lexed token. Lifetimes are scanned but not emitted — no consumer
/// needs them, and dropping them keeps pattern matching simple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident(String),
    /// String literal contents (cooked, raw, or byte), escapes untouched.
    Str(String),
    /// Numeric literal, raw text including suffix (`42`, `1.5e3`, `0xFFu64`).
    Num(String),
    /// Single punctuation character (`.`, `<`, `#`, `(`, ...).
    Sym(char),
}

/// A token plus the 1-based source line and 0-based byte column it starts on.
/// The column lets the parser distinguish glued multi-character operators
/// (`::`, `->`, `..`) from spaced single symbols (`: :`), since the lexer
/// deliberately emits punctuation one character at a time.
#[derive(Clone, Debug)]
pub struct Token {
    pub line: u32,
    pub col: u32,
    pub tok: Tok,
}

/// A `// ccsim-lint: allow(<rule>): <justification>` directive.
///
/// `rule` is empty when the marker was present but the directive did not
/// parse — `source.rs` reports that as `bad-allow` rather than ignoring it.
#[derive(Clone, Debug)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
    pub justification: String,
}

/// Result of lexing one file.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// The marker that introduces a suppression directive inside a line comment.
pub const ALLOW_MARKER: &str = "ccsim-lint:";

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_start = 0usize;
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    // Recompute the current line's start after a construct that may have
    // swallowed newlines (multiline strings, block comments).
    let start_of_line = |j: usize| -> usize {
        b[..j]
            .iter()
            .rposition(|&c| c == b'\n')
            .map_or(0, |p| p + 1)
    };
    // A shebang (`#!` on the very first line, not followed by `[`) is legal
    // in a Rust source file and is not Rust syntax: skip the whole line so
    // its text never becomes tokens. `#![...]` is an inner attribute and
    // must still lex normally.
    if b.starts_with(b"#!") && b.get(2) != Some(&b'[') {
        while i < b.len() && b[i] != b'\n' {
            i += 1;
        }
    }
    while i < b.len() {
        let c = b[i];
        let col = (i - line_start) as u32;
        if c == b'\n' {
            line += 1;
            i += 1;
            line_start = i;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i + 2;
            let doc = matches!(b.get(start), Some(&b'/') | Some(&b'!'));
            let mut j = start;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            if !doc {
                if let Some(a) = parse_allow(&src[start..j], line) {
                    allows.push(a);
                }
            }
            i = j;
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            line_start = start_of_line(i.min(b.len()));
        } else if c == b'"' {
            let start_line = line;
            let (text, j, newlines) = scan_cooked_string(src, i + 1);
            tokens.push(Token {
                line: start_line,
                col,
                tok: Tok::Str(text),
            });
            line += newlines;
            i = j;
            if newlines > 0 {
                line_start = start_of_line(i.min(b.len()));
            }
        } else if c == b'r' || c == b'b' {
            if let Some((tok, j, newlines)) = scan_prefixed_literal(src, i) {
                tokens.push(Token { line, col, tok });
                line += newlines;
                i = j;
                if newlines > 0 {
                    line_start = start_of_line(i.min(b.len()));
                }
            } else {
                let (id, j) = scan_ident(src, i);
                tokens.push(Token {
                    line,
                    col,
                    tok: Tok::Ident(id),
                });
                i = j;
            }
        } else if c == b'\'' {
            i = scan_quote(src, i, line, col, &mut tokens);
        } else if c == b'_' || c.is_ascii_alphabetic() {
            let (id, j) = scan_ident(src, i);
            tokens.push(Token {
                line,
                col,
                tok: Tok::Ident(id),
            });
            i = j;
        } else if c.is_ascii_digit() {
            let j = scan_number(b, i);
            tokens.push(Token {
                line,
                col,
                tok: Tok::Num(src[i..j].to_string()),
            });
            i = j;
        } else {
            tokens.push(Token {
                line,
                col,
                tok: Tok::Sym(c as char),
            });
            i += 1;
        }
    }
    Lexed { tokens, allows }
}

/// Parse an allow directive out of one line comment's text (the part after
/// `//`). Returns `None` when the marker is absent.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let pos = comment.find(ALLOW_MARKER)?;
    let rest = comment[pos + ALLOW_MARKER.len()..].trim_start();
    let malformed = Allow {
        line,
        rule: String::new(),
        justification: String::new(),
    };
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(malformed);
    };
    let Some(close) = rest.find(')') else {
        return Some(malformed);
    };
    let rule = rest[..close].trim().to_string();
    let mut why = rest[close + 1..].trim_start();
    why = why.strip_prefix(':').unwrap_or(why);
    why = why.strip_prefix('-').unwrap_or(why);
    Some(Allow {
        line,
        rule,
        justification: why.trim().to_string(),
    })
}

/// Scan a cooked (escaped) string body starting just past the opening quote.
/// Returns (contents, index past the closing quote, newline count).
fn scan_cooked_string(src: &str, start: usize) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut j = start;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => {
                return (src[start..j].to_string(), j + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..].to_string(), b.len(), newlines)
}

/// Scan literals that start with `r` or `b`: raw strings (`r"..."`,
/// `r#"..."#`), byte strings (`b"..."`), byte chars (`b'x'`), combined
/// (`br#"..."#`), and raw identifiers (`r#name`). Returns `None` when the
/// prefix is just the start of an ordinary identifier.
fn scan_prefixed_literal(src: &str, i: usize) -> Option<(Tok, usize, u32)> {
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'r') {
            raw = true;
            j += 1;
        }
    } else {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            let body_start = j + 1;
            let mut k = body_start;
            let mut newlines = 0u32;
            'outer: while k < b.len() {
                if b[k] == b'\n' {
                    newlines += 1;
                } else if b[k] == b'"' {
                    for h in 0..hashes {
                        if b.get(k + 1 + h) != Some(&b'#') {
                            k += 1;
                            continue 'outer;
                        }
                    }
                    return Some((
                        Tok::Str(src[body_start..k].to_string()),
                        k + 1 + hashes,
                        newlines,
                    ));
                }
                k += 1;
            }
            return Some((Tok::Str(src[body_start..].to_string()), b.len(), newlines));
        }
        if hashes == 1
            && b.get(j)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
        {
            // Raw identifier `r#name`: emit the bare name.
            let (id, k) = scan_ident(src, j);
            return Some((Tok::Ident(id), k, 0));
        }
        return None;
    }
    // Non-raw `b` prefix: byte string or byte char.
    match b.get(j) {
        Some(&b'"') => {
            let (text, k, newlines) = scan_cooked_string(src, j + 1);
            Some((Tok::Str(text), k, newlines))
        }
        Some(&b'\'') => {
            let k = skip_char_literal(b, j + 1);
            Some((Tok::Str(String::new()), k, 0))
        }
        _ => None,
    }
}

/// At a `'`: decide char literal vs lifetime. Char literals lex as a `Str`
/// token (so the parser sees a literal in expression position — `('(', ')')`
/// must not leave holes in the stream); lifetimes skip the tick and let the
/// following identifier lex normally (it is harmless in the stream).
fn scan_quote(src: &str, i: usize, line: u32, col: u32, tokens: &mut Vec<Token>) -> usize {
    let b = src.as_bytes();
    let end = match b.get(i + 1) {
        Some(&b'\\') => skip_char_literal(b, i + 1),
        Some(c) if b.get(i + 2) == Some(&b'\'') && *c != b'\'' => i + 3,
        _ => return i + 1, // lifetime tick (or stray quote): skip just the tick
    };
    tokens.push(Token {
        line,
        col,
        tok: Tok::Str(src[i + 1..end.saturating_sub(1).max(i + 1)].to_string()),
    });
    end
}

/// Skip past a char-literal body starting at `start` (just past the opening
/// quote), honoring escapes. Returns the index past the closing quote.
fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut j = start;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

fn scan_ident(src: &str, i: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = i;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    (src[i..j].to_string(), j)
}

/// Scan a numeric literal. Consumes digits/underscores/suffix letters, plus
/// one fractional part when the dot is followed by a digit — so `0..n` and
/// `self.0.unwrap()` leave their dots (and the tokens after them) intact.
fn scan_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let digits = |b: &[u8], mut j: usize| {
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        j
    };
    j = digits(b, j);
    if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        j = digits(b, j + 1);
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap::new()";
            let r = r#"HashMap"#;
            let real = FxHashMap::default();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"FxHashMap".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"char".to_string()));
    }

    #[test]
    fn numbers_leave_method_calls_intact() {
        let lexed = lex("let v = self.0.unwrap(); let r = 0..10; let f = 1.5e3;");
        let has = |name: &str| {
            lexed
                .tokens
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        };
        assert!(has("unwrap"));
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "0", "10", "1.5e3"]);
    }

    #[test]
    fn columns_expose_operator_adjacency() {
        let lexed = lex("a::b . c\nx->y");
        let toks: Vec<(u32, u32, &Tok)> = lexed
            .tokens
            .iter()
            .map(|t| (t.line, t.col, &t.tok))
            .collect();
        // `::` is glued (cols 1 and 2); the spaced `.` is not adjacent to
        // either neighbor; `->` on line 2 is glued at cols 1 and 2.
        assert_eq!(toks[1], (1, 1, &Tok::Sym(':')));
        assert_eq!(toks[2], (1, 2, &Tok::Sym(':')));
        assert_eq!(toks[4], (1, 5, &Tok::Sym('.')));
        assert_eq!(toks[7], (2, 1, &Tok::Sym('-')));
        assert_eq!(toks[8], (2, 2, &Tok::Sym('>')));
    }

    #[test]
    fn columns_recover_after_multiline_strings_and_comments() {
        let lexed = lex("let s = \"a\nb\";\n  /* x\ny */ t");
        let t = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "t"))
            .expect("t token");
        assert_eq!((t.line, t.col), (4, 5));
    }

    #[test]
    fn allow_directives_are_parsed_with_lines() {
        let src = "let x = 1;\n// ccsim-lint: allow(unwrap): provably safe\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.line, 2);
        assert_eq!(a.rule, "unwrap");
        assert_eq!(a.justification, "provably safe");
    }

    #[test]
    fn malformed_allow_is_flagged_not_dropped() {
        let lexed = lex("// ccsim-lint: alow(unwrap) oops\n");
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].rule.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// Suppress with `// ccsim-lint: allow(unwrap): why`.\n\
                   //! Or at file scope: ccsim-lint: allow(wall-clock)\n\
                   // ccsim-lint: allow(unwrap): a real one\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 3);
    }

    #[test]
    fn shebang_first_line_is_skipped() {
        let src = "#!/usr/bin/env run-cargo-script // not a \"comment\"\nlet x = 1;\n";
        let lexed = lex(src);
        // Nothing from the shebang line reaches the stream, and the first
        // real token still carries the right line number.
        let first = lexed.tokens.first().expect("tokens after shebang");
        assert_eq!(first.line, 2);
        assert!(
            matches!(&first.tok, Tok::Ident(s) if s == "let"),
            "{:?}",
            first.tok
        );
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn inner_attributes_are_not_shebangs() {
        let lexed = lex("#![allow(dead_code)]\nfn f() {}\n");
        assert!(matches!(
            lexed.tokens.first(),
            Some(Token {
                tok: Tok::Sym('#'),
                line: 1,
                ..
            })
        ));
        assert!(idents("#![allow(dead_code)]").contains(&"allow".to_string()));
    }

    #[test]
    fn multi_hash_raw_strings_contain_slashes_and_quotes() {
        let src = r####"let s = r##"has "quotes", a // comment-alike, and r#"nesting"#"##; let after = HashSet::new();"####;
        let lexed = lex(src);
        let strs: Vec<&String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs.len(), 1, "{strs:?}");
        assert!(strs[0].contains("// comment-alike"));
        assert!(strs[0].contains("\"quotes\""));
        // The scanner resynchronizes exactly at the closing `"##`, so code
        // after the literal still lexes.
        assert!(idents(src).contains(&"HashSet".to_string()));
    }

    #[test]
    fn allow_directive_inside_a_raw_string_is_not_a_suppression() {
        let src = "let s = r#\"// ccsim-lint: allow(unwrap): not a directive\"#;\n\
                   let t = \"ccsim-lint: allow(wall-clock): also text\";\n";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty(), "{:?}", lexed.allows);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let lexed = lex(src);
        let t_line = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "t"))
            .map(|t| t.line);
        assert_eq!(t_line, Some(4));
    }
}
