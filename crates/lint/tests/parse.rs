//! Parser self-check: every `.rs` file in this repository must parse with
//! zero errors (tier-1), plus golden AST snapshots for a fixture exercising
//! cfg gates, nested closures, and macro-call skipping.
//!
//! The self-check is the parser's real test suite: the workspace is the
//! corpus, and any Rust construct the codebase adopts that the parser cannot
//! handle fails CI here with the file and line. The walk is wider than
//! `lint`'s (`tests/`, `benches/`, `examples/` included) so the parser stays
//! ahead of where the rules currently bind.

use ccsim_lint::lexer::lex;
use ccsim_lint::parse::parse;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every `.rs` file in the workspace — sources, tests, benches, fixtures —
/// parses with zero errors.
#[test]
fn every_workspace_file_parses_clean() {
    let root = repo_root();
    let mut files = Vec::new();
    for top in ["src", "tests", "benches", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .expect("crates dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for m in members {
        for sub in ["src", "tests", "benches", "examples", "fixtures"] {
            collect_rs(&m.join(sub), &mut files);
        }
    }
    assert!(
        files.len() > 50,
        "workspace walk looks broken: only {} files",
        files.len()
    );
    let mut failures = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read source");
        let ast = parse(&lex(&src).tokens);
        for e in &ast.errors {
            failures.push(format!("{}:{}: {}", path.display(), e.line, e.msg));
        }
    }
    assert!(
        failures.is_empty(),
        "parse errors in {} locations:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Golden AST snapshot: the showcase fixture covers cfg gates, nested
/// closures, and macro-call skipping; its rendered AST is pinned byte for
/// byte. Regenerate deliberately with:
/// `UPDATE_GOLDEN=1 cargo test -p ccsim-lint --test parse`
#[test]
fn golden_ast_snapshot_for_showcase_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("ast_showcase.rs")).expect("fixture");
    let ast = parse(&lex(&src).tokens);
    assert!(
        ast.errors.is_empty(),
        "showcase must parse: {:?}",
        ast.errors
    );
    let rendered = ast.render();
    let golden_path = dir.join("ast_showcase.ast");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden snapshot");
    assert_eq!(
        rendered, golden,
        "AST snapshot drifted — run UPDATE_GOLDEN=1 cargo test -p ccsim-lint --test parse"
    );
}
