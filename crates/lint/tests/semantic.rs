//! Pin tests for the interprocedural rules against the seeded-violation
//! fixtures. Each seeded defect must be convicted at its exact file:line
//! with a witness that names the evidence — including, for the cross-file
//! cycle, both files involved.
//!
//! The fixture paths are passed as `fixtures/<name>.rs` (no leading
//! separator) so the resolver does not classify them as test-only code.

use ccsim_lint::{lint_sources, LintConfig};

fn read(name: &str) -> (String, String) {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    (
        format!("fixtures/{name}"),
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}")),
    )
}

#[test]
fn cross_file_lock_cycle_is_convicted_with_a_two_file_witness() {
    let cfg = LintConfig::all_rules();
    let diags = lint_sources(&[read("lock_a.rs"), read("lock_b.rs")], &cfg);
    let cycle: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "lock-order-global")
        .collect();
    assert_eq!(cycle.len(), 1, "diags: {diags:?}");
    let d = cycle[0];
    // Anchored at the call edge in file A that closes the cycle under a
    // held lock: `self.flush_stats()` while `Pipeline.queue` is held.
    assert_eq!((d.file.as_str(), d.line), ("fixtures/lock_a.rs", 16));
    assert!(d.message.contains("`Pipeline.queue`"), "{}", d.message);
    assert!(d.message.contains("`Pipeline.stats`"), "{}", d.message);
    assert!(
        d.message.contains("fixtures/lock_a.rs:16") && d.message.contains("fixtures/lock_b.rs:8"),
        "witness must name both files: {}",
        d.message
    );
    assert!(
        d.message.contains("via call to `Pipeline::flush_stats`"),
        "{}",
        d.message
    );
    // Neither file alone exhibits the cycle.
    for name in ["lock_a.rs", "lock_b.rs"] {
        let solo = lint_sources(&[read(name)], &cfg);
        assert!(
            solo.iter().all(|d| d.rule != "lock-order-global"),
            "{name} alone: {solo:?}"
        );
    }
}

#[test]
fn wall_clock_taint_reaching_the_export_sink_is_convicted_at_the_source() {
    let cfg = LintConfig::all_rules();
    let diags = lint_sources(&[read("taint_flow.rs")], &cfg);
    let taint: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "determinism-taint")
        .collect();
    assert_eq!(taint.len(), 1, "diags: {diags:?}");
    let d = taint[0];
    assert_eq!((d.file.as_str(), d.line), ("fixtures/taint_flow.rs", 6));
    assert!(
        d.message.contains("wall clock (`Instant::now`)"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("`to_json` (fixtures/taint_flow.rs:12)"),
        "{}",
        d.message
    );
    // The wall-clock token rule convicts the same site independently.
    assert!(
        diags.iter().any(|d| d.rule == "wall-clock" && d.line == 6),
        "diags: {diags:?}"
    );
}

#[test]
fn panic_site_two_calls_below_the_commit_entry_is_convicted_with_its_chain() {
    let cfg = LintConfig::all_rules();
    let diags = lint_sources(&[read("panic_depth.rs")], &cfg);
    let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic-path").collect();
    assert_eq!(panics.len(), 1, "diags: {diags:?}");
    let d = panics[0];
    assert_eq!((d.file.as_str(), d.line), ("fixtures/panic_depth.rs", 17));
    assert!(d.message.contains("bounds-checked index"), "{}", d.message);
    assert!(
        d.message
            .contains("call chain `commit_frame` → `step_one` → `touch_slot`"),
        "{}",
        d.message
    );
}
