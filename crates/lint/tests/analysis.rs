//! Acceptance cross-check: the static trace analyzer's counters must
//! *exactly* equal the engine's LS-oracle counters for quick-scale
//! MP3D / Cholesky / LU runs under the (default) sequential quantum, on
//! every protocol — the analyzer is an independent re-derivation of the
//! same quantities from the captured access stream alone.

use ccsim_lint::analyze;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{capture_spec, cholesky, lu, mp3d, Spec};

fn quick_specs() -> Vec<Spec> {
    let mut mp = mp3d::Mp3dParams::quick();
    // Trim the particle count so the full three-workload × three-protocol
    // matrix stays a sub-second test.
    mp.particles = mp.particles.min(200);
    mp.steps = mp.steps.min(2);
    let mut ch = cholesky::CholeskyParams::quick();
    ch.waves = ch.waves.min(2);
    let lu = lu::LuParams::quick();
    vec![Spec::Mp3d(mp), Spec::Cholesky(ch), Spec::Lu(lu)]
}

#[test]
fn static_ls_counts_match_engine_counters() {
    for spec in quick_specs() {
        for kind in [ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls] {
            let cfg = MachineConfig::splash_baseline(kind);
            assert_eq!(cfg.schedule_quantum, 1, "sequential quantum is the default");
            let (stats, trace) = capture_spec(cfg, &spec);
            let s = analyze(&cfg, &trace).unwrap();
            let o = stats.oracle.total();
            let ctx = format!("{} / {kind:?}", spec.name());

            // The tentpole equality: statically-counted load-store
            // sequences equal the engine's LS-detection counters.
            assert_eq!(s.ls_writes, o.ls_writes, "{ctx}: ls_writes");
            assert_eq!(s.global_writes, o.global_writes, "{ctx}: global_writes");
            assert_eq!(
                s.migratory_writes, o.migratory_writes,
                "{ctx}: migratory_writes"
            );
            assert_eq!(s.eliminated, o.eliminated, "{ctx}: eliminated");
            assert_eq!(s.eliminated_ls, o.eliminated_ls, "{ctx}: eliminated_ls");
            assert_eq!(
                s.eliminated_migratory, o.eliminated_migratory,
                "{ctx}: eliminated_migratory"
            );
            assert_eq!(
                s.silent_stores, stats.machine.silent_stores,
                "{ctx}: silent_stores"
            );
            assert_eq!(s.global_reads, stats.dir.global_reads, "{ctx}: dir reads");

            // Migratory is a strict subset of load-store, statically and
            // dynamically.
            assert!(s.migratory_writes <= s.ls_writes, "{ctx}");
            assert!(s.migratory_blocks <= s.load_store_blocks, "{ctx}");

            // The static upper bound really bounds what the protocol
            // eliminated.
            assert_eq!(s.ls_upper_bound, s.ls_writes, "{ctx}");
            assert!(o.eliminated_ls <= s.ls_upper_bound, "{ctx}: upper bound");

            // False-sharing classification agrees with the engine too
            // (same classifier fed the same stream).
            assert_eq!(
                s.false_sharing_fraction,
                stats.false_sharing.false_fraction(),
                "{ctx}: false sharing"
            );
        }
    }
}

#[test]
fn ls_protocol_actually_uses_some_of_the_bound_on_mp3d() {
    // Sanity that the acceptance numbers are non-trivial: MP3D's migratory
    // cell updates give the LS protocol real load-store sequences to
    // eliminate.
    let mut mp = mp3d::Mp3dParams::quick();
    mp.particles = mp.particles.min(200);
    mp.steps = mp.steps.min(2);
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    let (stats, trace) = capture_spec(cfg, &Spec::Mp3d(mp));
    let s = analyze(&cfg, &trace).unwrap();
    assert!(s.ls_writes > 0, "MP3D quick must contain LS sequences");
    assert!(
        stats.oracle.total().eliminated_ls > 0,
        "LS protocol must eliminate some of them"
    );
    assert!(s.load_store_blocks > 0);
}

#[test]
fn analysis_is_deterministic_across_captures() {
    let mut mp = mp3d::Mp3dParams::quick();
    mp.particles = 100;
    mp.steps = 1;
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ad);
    let (_, t1) = capture_spec(cfg, &Spec::Mp3d(mp.clone()));
    let (_, t2) = capture_spec(cfg, &Spec::Mp3d(mp));
    assert_eq!(t1, t2, "sequential-quantum capture is deterministic");
    assert_eq!(analyze(&cfg, &t1).unwrap(), analyze(&cfg, &t2).unwrap());
}
