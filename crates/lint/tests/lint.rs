//! The seeded-violation fixture must produce *exactly* the expected
//! diagnostics — each rule demonstrated to fire, each suppression path
//! demonstrated to work, nothing extra.

use ccsim_lint::source::{
    lint_file, LintConfig, RULE_BAD_ALLOW, RULE_GUARD_FANOUT, RULE_LOCK_ORDER, RULE_RANDOMSTATE,
    RULE_TESTING_GATE, RULE_UNBOUNDED_RETRY, RULE_UNWRAP, RULE_WALL_CLOCK,
};

const FIXTURE: &str = include_str!("../fixtures/seeded.rs");

#[test]
fn fixture_produces_exactly_the_expected_diagnostics() {
    let diags = lint_file("fixtures/seeded.rs", FIXTURE, &LintConfig::all_rules());
    let got: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    let expected: Vec<(u32, &str)> = vec![
        (6, RULE_RANDOMSTATE),  // use ... HashMap
        (9, RULE_RANDOMSTATE),  // HashMap<u32, u32> annotation
        (9, RULE_RANDOMSTATE),  // HashMap::new()
        (10, RULE_RANDOMSTATE), // HashSet::new()
        (16, RULE_WALL_CLOCK),  // Instant::now()
        (17, RULE_WALL_CLOCK),  // SystemTime::now()
        (23, RULE_UNWRAP),      // x.unwrap()
        (24, RULE_UNWRAP),      // x.expect("msg")
        (30, RULE_TESTING_GATE),
        (36, RULE_BAD_ALLOW),       // allow without justification
        (37, RULE_BAD_ALLOW),       // allow(nosuch)
        (38, RULE_BAD_ALLOW),       // malformed directive
        (58, RULE_LOCK_ORDER),      // cache→stats conflicts with stats→cache (line 53)
        (63, RULE_GUARD_FANOUT),    // set.run() with `g` still live
        (80, RULE_UNBOUNDED_RETRY), // bare loop with no documented bound
    ];
    assert_eq!(
        got,
        expected,
        "diagnostics drifted from the seeded fixture:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_diagnostics_name_the_fixture_file() {
    let diags = lint_file("fixtures/seeded.rs", FIXTURE, &LintConfig::all_rules());
    assert!(diags.iter().all(|d| d.file == "fixtures/seeded.rs"));
    assert!(diags[0].render().starts_with("fixtures/seeded.rs:6:"));
}

#[test]
fn workspace_scoping_silences_out_of_scope_rules_on_the_fixture() {
    // Under the workspace config the fixture path is outside the unwrap
    // scope, so only the universal rules fire.
    let diags = lint_file("fixtures/seeded.rs", FIXTURE, &LintConfig::workspace());
    assert!(diags.iter().all(|d| d.rule != RULE_UNWRAP));
    assert!(diags.iter().all(|d| d.rule != RULE_UNBOUNDED_RETRY));
    assert!(diags.iter().any(|d| d.rule == RULE_RANDOMSTATE));
}
