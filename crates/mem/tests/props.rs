//! Property tests for the memory substrate (deterministic cases via
//! `ccsim_util::check`).

use ccsim_mem::{pages, Allocator, Store};
use ccsim_types::{Addr, NodeId};
use ccsim_util::check::cases;

/// The store behaves as a map from word-aligned addresses to values.
#[test]
fn store_is_a_word_map() {
    cases(256, |g| {
        let n = g.urange(1, 200);
        let writes = g.vec(n, |g| (g.below(1 << 20), g.u64()));
        let mut s = Store::new();
        let mut model = std::collections::HashMap::new();
        for (w, v) in &writes {
            let addr = Addr(w * 8);
            s.store(addr, *v);
            model.insert(*w, *v);
        }
        for (w, v) in &model {
            assert_eq!(s.load(Addr(w * 8)), *v);
        }
    });
}

/// Sub-word addresses alias onto their containing word.
#[test]
fn byte_addresses_alias_words() {
    cases(256, |g| {
        let base = g.below(1 << 16);
        let off = g.below(8);
        let v = g.u64();
        let mut s = Store::new();
        s.store(Addr(base * 8), v);
        assert_eq!(s.load(Addr(base * 8 + off)), v);
    });
}

/// Allocations never overlap, whatever the interleaving of plain, padded,
/// and node-targeted requests.
#[test]
fn allocations_never_overlap() {
    cases(256, |g| {
        let n = g.urange(1, 100);
        let reqs = g.vec(n, |g| {
            (g.range(1, 300), g.below(3) as u8, g.below(4) as u16)
        });
        let mut a = Allocator::new(0x1000, 4096, 4);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (bytes, kind, node) in reqs {
            let at = match kind {
                0 => a.alloc(bytes, 8),
                1 => a.alloc_padded(bytes, 64),
                _ => a.alloc_on_node(bytes.min(4096), 8, NodeId(node)),
            };
            let span = (at.0, at.0 + bytes);
            for &(s0, s1) in &spans {
                assert!(
                    span.1 <= s0 || span.0 >= s1,
                    "overlap: [{:#x},{:#x}) vs [{s0:#x},{s1:#x})",
                    span.0,
                    span.1
                );
            }
            spans.push(span);
        }
    });
}

/// Node-targeted allocations land entirely on pages of that node.
#[test]
fn node_alloc_is_homed_correctly() {
    cases(256, |g| {
        let n = g.urange(1, 50);
        let reqs = g.vec(n, |g| (g.range(1, 2048), g.below(4) as u16));
        let mut a = Allocator::new(0x1000, 4096, 4);
        for (bytes, node) in reqs {
            let at = a.alloc_on_node(bytes, 8, NodeId(node));
            assert_eq!(pages::home_node(at, 4096, 4), NodeId(node));
            assert_eq!(
                pages::home_node(at.offset(bytes - 1), 4096, 4),
                NodeId(node)
            );
        }
    });
}

/// Page homing is a pure round-robin function of the page index.
#[test]
fn homing_is_round_robin() {
    cases(256, |g| {
        let addr = g.below(1 << 40);
        let nodes = g.range(1, 64) as u16;
        let h = pages::home_node(Addr(addr), 4096, nodes);
        assert_eq!(h.0 as u64, (addr / 4096) % nodes as u64);
        // Stable within a page.
        let page_start = addr / 4096 * 4096;
        assert_eq!(pages::home_node(Addr(page_start), 4096, nodes), h);
    });
}
