//! Property tests for the memory substrate.

use ccsim_mem::{pages, Allocator, Store};
use ccsim_types::{Addr, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The store behaves as a map from word-aligned addresses to values.
    #[test]
    fn store_is_a_word_map(writes in proptest::collection::vec((0u64..1 << 20, any::<u64>()), 1..200)) {
        let mut s = Store::new();
        let mut model = std::collections::HashMap::new();
        for (w, v) in &writes {
            let addr = Addr(w * 8);
            s.store(addr, *v);
            model.insert(*w, *v);
        }
        for (w, v) in &model {
            prop_assert_eq!(s.load(Addr(w * 8)), *v);
        }
    }

    /// Sub-word addresses alias onto their containing word.
    #[test]
    fn byte_addresses_alias_words(base in 0u64..1 << 16, off in 0u64..8, v: u64) {
        let mut s = Store::new();
        s.store(Addr(base * 8), v);
        prop_assert_eq!(s.load(Addr(base * 8 + off)), v);
    }

    /// Allocations never overlap, whatever the interleaving of plain,
    /// padded, and node-targeted requests.
    #[test]
    fn allocations_never_overlap(
        reqs in proptest::collection::vec((1u64..300, 0..3u8, 0..4u16), 1..100)
    ) {
        let mut a = Allocator::new(0x1000, 4096, 4);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (bytes, kind, node) in reqs {
            let at = match kind {
                0 => a.alloc(bytes, 8),
                1 => a.alloc_padded(bytes, 64),
                _ => a.alloc_on_node(bytes.min(4096), 8, NodeId(node)),
            };
            let span = (at.0, at.0 + bytes);
            for &(s0, s1) in &spans {
                prop_assert!(span.1 <= s0 || span.0 >= s1,
                    "overlap: [{:#x},{:#x}) vs [{s0:#x},{s1:#x})", span.0, span.1);
            }
            spans.push(span);
        }
    }

    /// Node-targeted allocations land entirely on pages of that node.
    #[test]
    fn node_alloc_is_homed_correctly(
        reqs in proptest::collection::vec((1u64..2048, 0..4u16), 1..50)
    ) {
        let mut a = Allocator::new(0x1000, 4096, 4);
        for (bytes, node) in reqs {
            let at = a.alloc_on_node(bytes, 8, NodeId(node));
            prop_assert_eq!(pages::home_node(at, 4096, 4), NodeId(node));
            prop_assert_eq!(pages::home_node(at.offset(bytes - 1), 4096, 4), NodeId(node));
        }
    }

    /// Page homing is a pure round-robin function of the page index.
    #[test]
    fn homing_is_round_robin(addr in 0u64..1 << 40, nodes in 1u16..64) {
        let h = pages::home_node(Addr(addr), 4096, nodes);
        prop_assert_eq!(h.0 as u64, (addr / 4096) % nodes as u64);
        // Stable within a page.
        let page_start = addr / 4096 * 4096;
        prop_assert_eq!(pages::home_node(Addr(page_start), 4096, nodes), h);
    }
}
