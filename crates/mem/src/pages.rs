//! Physical-page-to-home-node mapping.
//!
//! §4.2: "Physical memory pages are distributed in round-robin fashion among
//! the nodes." The home node of a block is the home node of its page; all
//! global coherence actions for the block serialize at that node's directory.

use ccsim_types::{Addr, BlockAddr, NodeId};

/// Home node of the page containing `addr`, for a machine with `nodes`
/// nodes and `page_bytes`-sized pages (power of two).
#[inline]
pub fn home_node(addr: Addr, page_bytes: u64, nodes: u16) -> NodeId {
    debug_assert!(page_bytes.is_power_of_two());
    debug_assert!(nodes > 0);
    let page = addr.0 / page_bytes;
    NodeId((page % nodes as u64) as u16)
}

/// Home node of a memory block (blocks never straddle pages because both are
/// powers of two and pages are at least one block).
#[inline]
pub fn home_of_block(block: BlockAddr, page_bytes: u64, nodes: u16) -> NodeId {
    home_node(block.addr(), page_bytes, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_over_pages() {
        let pb = 4096;
        assert_eq!(home_node(Addr(0), pb, 4), NodeId(0));
        assert_eq!(home_node(Addr(4095), pb, 4), NodeId(0));
        assert_eq!(home_node(Addr(4096), pb, 4), NodeId(1));
        assert_eq!(home_node(Addr(3 * 4096), pb, 4), NodeId(3));
        assert_eq!(home_node(Addr(4 * 4096), pb, 4), NodeId(0));
    }

    #[test]
    fn single_node_machine_owns_everything() {
        for a in [0u64, 1 << 12, 1 << 20, 1 << 30] {
            assert_eq!(home_node(Addr(a), 4096, 1), NodeId(0));
        }
    }

    #[test]
    fn blocks_within_a_page_share_a_home() {
        let pb = 4096;
        let base = 7 * 4096;
        let h = home_node(Addr(base), pb, 4);
        for off in (0..4096).step_by(64) {
            assert_eq!(home_of_block(Addr(base + off).block(64), pb, 4), h);
        }
    }

    #[test]
    fn distribution_is_balanced() {
        let mut counts = [0u32; 4];
        for p in 0..4000u64 {
            counts[home_node(Addr(p * 4096), 4096, 4).idx()] += 1;
        }
        assert_eq!(counts, [1000; 4]);
    }
}
