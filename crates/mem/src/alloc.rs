//! Bump allocator for simulated shared memory.
//!
//! Workloads lay out their data structures through this allocator. It never
//! frees (the workloads are batch programs), supports alignment, can pad
//! allocations out to a full coherence block (to *avoid* false sharing where
//! the original program did), and can target a specific home node by skipping
//! forward to the next page that round-robin assigns to that node (mirroring
//! first-touch-style placement studies).

use crate::pages::home_node;
use ccsim_types::{Addr, NodeId};

/// Bump allocator over the simulated physical address space.
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u64,
    page_bytes: u64,
    nodes: u16,
}

impl Allocator {
    /// Start allocating at address `base` (commonly 0x1000 to keep null
    /// distinguishable).
    pub fn new(base: u64, page_bytes: u64, nodes: u16) -> Self {
        assert!(page_bytes.is_power_of_two());
        assert!(nodes > 0);
        Allocator {
            next: base,
            page_bytes,
            nodes,
        }
    }

    fn align_up(x: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        (x + align - 1) & !(align - 1)
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(bytes > 0);
        let at = Self::align_up(self.next, align);
        self.next = at + bytes;
        Addr(at)
    }

    /// Allocate a contiguous array of `n` 8-byte words.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.alloc(n * ccsim_types::WORD_BYTES, ccsim_types::WORD_BYTES)
    }

    /// Allocate `bytes` aligned *and padded* to `block_bytes`, guaranteeing
    /// the allocation shares no coherence block with any other allocation.
    pub fn alloc_padded(&mut self, bytes: u64, block_bytes: u64) -> Addr {
        let at = self.alloc(Self::align_up(bytes, block_bytes), block_bytes);
        debug_assert_eq!(at.0 % block_bytes, 0);
        at
    }

    /// Allocate `bytes` (aligned to `align`) inside pages homed at `node`.
    /// The allocation must fit within one page.
    pub fn alloc_on_node(&mut self, bytes: u64, align: u64, node: NodeId) -> Addr {
        assert!(
            bytes <= self.page_bytes,
            "node-targeted allocation exceeds a page"
        );
        loop {
            let at = Self::align_up(self.next, align);
            let end = at + bytes - 1;
            let fits_in_page = at / self.page_bytes == end / self.page_bytes;
            if fits_in_page && home_node(Addr(at), self.page_bytes, self.nodes) == node {
                self.next = at + bytes;
                return Addr(at);
            }
            // Skip to the start of the next page and try again.
            self.next = (self.next / self.page_bytes + 1) * self.page_bytes;
        }
    }

    /// Current high-water mark of the allocated address space.
    pub fn high_water(&self) -> Addr {
        Addr(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Allocator {
        Allocator::new(0x1000, 4096, 4)
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = mk();
        let x = a.alloc(100, 8);
        let y = a.alloc(100, 8);
        assert!(y.0 >= x.0 + 100);
    }

    #[test]
    fn alignment_respected() {
        let mut a = mk();
        a.alloc(3, 1); // misalign the bump pointer
        let x = a.alloc(64, 64);
        assert_eq!(x.0 % 64, 0);
        let y = a.alloc(8, 256);
        assert_eq!(y.0 % 256, 0);
    }

    #[test]
    fn padded_allocations_never_share_a_block() {
        let mut a = mk();
        let bb = 64;
        let x = a.alloc_padded(10, bb);
        let y = a.alloc_padded(10, bb);
        assert_ne!(x.block(bb), y.block(bb));
        assert_ne!(x.offset(9).block(bb), y.block(bb));
    }

    #[test]
    fn node_targeted_allocation_lands_on_node() {
        let mut a = mk();
        for want in 0..4u16 {
            let at = a.alloc_on_node(128, 8, NodeId(want));
            assert_eq!(home_node(at, 4096, 4), NodeId(want));
            // Whole allocation inside one page, hence one home.
            assert_eq!(home_node(at.offset(127), 4096, 4), NodeId(want));
        }
    }

    #[test]
    fn node_targeted_allocation_advances_monotonically() {
        let mut a = mk();
        let x = a.alloc_on_node(64, 8, NodeId(3));
        let y = a.alloc_on_node(64, 8, NodeId(3));
        assert!(y.0 > x.0);
    }

    #[test]
    #[should_panic(expected = "exceeds a page")]
    fn node_targeted_allocation_rejects_multi_page() {
        mk().alloc_on_node(8192, 8, NodeId(0));
    }

    #[test]
    fn alloc_words_is_word_aligned() {
        let mut a = mk();
        a.alloc(3, 1);
        let x = a.alloc_words(4);
        assert_eq!(x.0 % 8, 0);
        let y = a.alloc_words(1);
        assert_eq!(y.0, x.0 + 32);
    }
}
