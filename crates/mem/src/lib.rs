//! Simulated physical memory for the `ccsim` multiprocessor.
//!
//! Three pieces:
//!
//! * [`store::Store`] — the word-granular backing store holding actual data
//!   values (the single source of truth; the cache model tracks only tags
//!   and coherence states).
//! * [`pages`] — round-robin distribution of physical pages over node
//!   memories, as §4.2 of the paper specifies.
//! * [`alloc::Allocator`] — a bump allocator workloads use to lay out their
//!   shared data structures, with node-targeted and padding-aware variants.

pub mod alloc;
pub mod pages;
pub mod store;

pub use alloc::Allocator;
pub use pages::home_node;
pub use store::Store;
