//! Word-granular backing store.
//!
//! Data values live here, independent of the coherence machinery: because the
//! simulator serializes all memory operations in simulated-time order, a
//! single flat store is an exact model of the memory image every protocol
//! would produce (all three protocols are write-invalidate and never lose
//! writes). Pages are materialized lazily, so terabyte-sized sparse address
//! spaces cost only what is touched.

use ccsim_types::{Addr, WORD_BYTES};

/// Number of 8-byte words per lazily-allocated backing page (32 kB pages —
/// unrelated to the simulated machine's virtual-memory page size).
const PAGE_WORDS: usize = 4096;

/// Lazily-paged word store.
#[derive(Default)]
pub struct Store {
    pages: Vec<Option<Box<[u64; PAGE_WORDS]>>>,
}

impl Store {
    pub fn new() -> Self {
        Store { pages: Vec::new() }
    }

    #[inline]
    fn locate(addr: Addr) -> (usize, usize) {
        let w = addr.word_index() as usize;
        (w / PAGE_WORDS, w % PAGE_WORDS)
    }

    /// Read the word containing `addr`. Untouched memory reads as zero.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        let (p, o) = Self::locate(addr);
        match self.pages.get(p) {
            Some(Some(page)) => page[o],
            _ => 0,
        }
    }

    /// Write the word containing `addr`.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: u64) {
        let (p, o) = Self::locate(addr);
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        let page = self.pages[p].get_or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
        page[o] = value;
    }

    /// Atomic fetch-add on the word containing `addr`; returns the old value.
    #[inline]
    pub fn fetch_add(&mut self, addr: Addr, delta: u64) -> u64 {
        let old = self.load(addr);
        self.store(addr, old.wrapping_add(delta));
        old
    }

    /// Atomic swap; returns the old value.
    #[inline]
    pub fn swap(&mut self, addr: Addr, value: u64) -> u64 {
        let old = self.load(addr);
        self.store(addr, value);
        old
    }

    /// Bytes of host memory currently committed to backing pages.
    pub fn committed_bytes(&self) -> u64 {
        self.pages.iter().flatten().count() as u64 * (PAGE_WORDS as u64) * WORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_zero() {
        let s = Store::new();
        assert_eq!(s.load(Addr(0)), 0);
        assert_eq!(s.load(Addr(1 << 40)), 0);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut s = Store::new();
        s.store(Addr(0x100), 0xDEAD_BEEF);
        assert_eq!(s.load(Addr(0x100)), 0xDEAD_BEEF);
        // Same word, different byte offset.
        assert_eq!(s.load(Addr(0x104)), 0xDEAD_BEEF);
        // Neighbouring word untouched.
        assert_eq!(s.load(Addr(0x108)), 0);
    }

    #[test]
    fn sparse_pages_materialize_lazily() {
        let mut s = Store::new();
        assert_eq!(s.committed_bytes(), 0);
        s.store(Addr(0), 1);
        let one_page = s.committed_bytes();
        assert!(one_page > 0);
        // A far-away address commits exactly one more page.
        s.store(Addr(100 * 1024 * 1024), 2);
        assert_eq!(s.committed_bytes(), 2 * one_page);
        assert_eq!(s.load(Addr(100 * 1024 * 1024)), 2);
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut s = Store::new();
        s.store(Addr(64), 10);
        assert_eq!(s.fetch_add(Addr(64), 5), 10);
        assert_eq!(s.load(Addr(64)), 15);
        // Wrapping semantics.
        s.store(Addr(72), u64::MAX);
        assert_eq!(s.fetch_add(Addr(72), 1), u64::MAX);
        assert_eq!(s.load(Addr(72)), 0);
    }

    #[test]
    fn swap_returns_old_value() {
        let mut s = Store::new();
        assert_eq!(s.swap(Addr(8), 7), 0);
        assert_eq!(s.swap(Addr(8), 9), 7);
        assert_eq!(s.load(Addr(8)), 9);
    }
}
