//! Property tests for the interconnect (deterministic cases via
//! `ccsim_util::check`).

use ccsim_network::Network;
use ccsim_types::{LatencyConfig, MsgKind, NodeId, Topology};
use ccsim_util::check::{cases, Gen};

const KINDS: [MsgKind; 6] = [
    MsgKind::ReadReq,
    MsgKind::ReadReply,
    MsgKind::Inval,
    MsgKind::InvalAck,
    MsgKind::WriteMissReply,
    MsgKind::Retry,
];

fn msg(g: &mut Gen) -> (u64, u16, u16, usize) {
    (
        g.below(10_000),
        g.below(8) as u16,
        g.below(8) as u16,
        g.urange(0, KINDS.len()),
    )
}

/// Arrivals never precede sends, and remote arrivals pay at least one full
/// traversal — under both topologies.
#[test]
fn arrival_bounds() {
    cases(256, |g| {
        let topo = if g.bool() {
            Topology::Mesh2D { width: 4 }
        } else {
            Topology::PointToPoint
        };
        let len = g.urange(1, 200);
        let seq = g.vec(len, msg);
        let mut n = Network::with_topology(8, LatencyConfig::default(), 32, topo);
        for (now, from, to, k) in seq {
            let t = n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from == to {
                assert_eq!(t, now, "intra-node transfers are free");
            } else {
                let hops = topo.hops(NodeId(from), NodeId(to));
                assert!(
                    t >= now + 40 * hops,
                    "arrival {t} earlier than {hops} uncongested hops from {now}"
                );
            }
        }
    });
}

/// Traffic accounting: total bytes equal the sum of per-message sizes, and
/// message counts match the number of remote sends.
#[test]
fn traffic_accounting_is_exact() {
    cases(256, |g| {
        let len = g.urange(1, 200);
        let seq = g.vec(len, msg);
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut bytes = 0u64;
        let mut remote = 0u64;
        let mut invals = 0u64;
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from != to {
                remote += 1;
                bytes += KINDS[k].size_bytes(32);
                if KINDS[k].is_invalidation() {
                    invals += 1;
                }
            }
        }
        assert_eq!(n.traffic().total_messages(), remote);
        assert_eq!(n.traffic().total_bytes(), bytes);
        assert_eq!(n.traffic().invalidations(), invals);
    });
}

/// NI busy time is monotone: sending more never frees the NI earlier.
#[test]
fn ni_occupancy_is_monotone() {
    cases(256, |g| {
        let len = g.urange(1, 100);
        let seq = g.vec(len, msg);
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut last = [0u64; 8];
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            for node in 0..8u16 {
                let free = n.ni_free_at(NodeId(node));
                assert!(free >= last[node as usize]);
                last[node as usize] = free;
            }
        }
    });
}

/// Mesh routes always reach their destination through adjacent links and
/// cost exactly the Manhattan distance.
#[test]
fn mesh_routes_are_shortest() {
    cases(256, |g| {
        let from = g.below(16) as u16;
        let to = g.below(16) as u16;
        let width = *g.pick(&[1u16, 2, 4]); // divisors of 16: full rows only
        let t = Topology::Mesh2D { width };
        let route = t.route(NodeId(from), NodeId(to));
        assert_eq!(route.len() as u64, t.hops(NodeId(from), NodeId(to)));
        let mut cur = NodeId(from);
        for (a, b) in route {
            assert_eq!(a, cur);
            assert_eq!(t.hops(a, b), 1);
            cur = b;
        }
        if from != to {
            assert_eq!(cur, NodeId(to));
        }
    });
}
