//! Property tests for the interconnect.

use ccsim_network::Network;
use ccsim_types::{LatencyConfig, MsgKind, NodeId, Topology};
use proptest::prelude::*;

const KINDS: [MsgKind; 6] = [
    MsgKind::ReadReq,
    MsgKind::ReadReply,
    MsgKind::Inval,
    MsgKind::InvalAck,
    MsgKind::WriteMissReply,
    MsgKind::Retry,
];

fn msgs() -> impl Strategy<Value = (u64, u16, u16, usize)> {
    (0u64..10_000, 0u16..8, 0u16..8, 0usize..KINDS.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arrivals never precede sends, and remote arrivals pay at least one
    /// full traversal — under both topologies.
    #[test]
    fn arrival_bounds(seq in proptest::collection::vec(msgs(), 1..200), mesh: bool) {
        let topo = if mesh { Topology::Mesh2D { width: 4 } } else { Topology::PointToPoint };
        let mut n = Network::with_topology(8, LatencyConfig::default(), 32, topo);
        for (now, from, to, k) in seq {
            let t = n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from == to {
                prop_assert_eq!(t, now, "intra-node transfers are free");
            } else {
                let hops = topo.hops(NodeId(from), NodeId(to));
                prop_assert!(t >= now + 40 * hops,
                    "arrival {t} earlier than {hops} uncongested hops from {now}");
            }
        }
    }

    /// Traffic accounting: total bytes equal the sum of per-message sizes,
    /// and message counts match the number of remote sends.
    #[test]
    fn traffic_accounting_is_exact(seq in proptest::collection::vec(msgs(), 1..200)) {
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut bytes = 0u64;
        let mut remote = 0u64;
        let mut invals = 0u64;
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from != to {
                remote += 1;
                bytes += KINDS[k].size_bytes(32);
                if KINDS[k].is_invalidation() {
                    invals += 1;
                }
            }
        }
        prop_assert_eq!(n.traffic().total_messages(), remote);
        prop_assert_eq!(n.traffic().total_bytes(), bytes);
        prop_assert_eq!(n.traffic().invalidations(), invals);
    }

    /// NI busy time is monotone: sending more never frees the NI earlier.
    #[test]
    fn ni_occupancy_is_monotone(seq in proptest::collection::vec(msgs(), 1..100)) {
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut last = [0u64; 8];
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            for node in 0..8u16 {
                let free = n.ni_free_at(NodeId(node));
                prop_assert!(free >= last[node as usize]);
                last[node as usize] = free;
            }
        }
    }

    /// Mesh routes always reach their destination through adjacent links
    /// and cost exactly the Manhattan distance.
    #[test]
    fn mesh_routes_are_shortest(from in 0u16..16, to in 0u16..16, width in 1u16..5) {
        prop_assume!(16 % width == 0);
        let t = Topology::Mesh2D { width };
        let route = t.route(NodeId(from), NodeId(to));
        prop_assert_eq!(route.len() as u64, t.hops(NodeId(from), NodeId(to)));
        let mut cur = NodeId(from);
        for (a, b) in route {
            prop_assert_eq!(a, cur);
            prop_assert_eq!(t.hops(a, b), 1);
            cur = b;
        }
        if from != to {
            prop_assert_eq!(cur, NodeId(to));
        }
    }
}
