//! Property tests for the interconnect (deterministic cases via
//! `ccsim_util::check`).

use ccsim_network::{Delivery, FaultStats, Network};
use ccsim_types::{FaultConfig, LatencyConfig, MsgKind, NodeId, Topology};
use ccsim_util::check::{cases, Gen};

const KINDS: [MsgKind; 6] = [
    MsgKind::ReadReq,
    MsgKind::ReadReply,
    MsgKind::Inval,
    MsgKind::InvalAck,
    MsgKind::WriteMissReply,
    MsgKind::Retry,
];

fn msg(g: &mut Gen) -> (u64, u16, u16, usize) {
    (
        g.below(10_000),
        g.below(8) as u16,
        g.below(8) as u16,
        g.urange(0, KINDS.len()),
    )
}

/// Arrivals never precede sends, and remote arrivals pay at least one full
/// traversal — under both topologies.
#[test]
fn arrival_bounds() {
    cases(256, |g| {
        let topo = if g.bool() {
            Topology::Mesh2D { width: 4 }
        } else {
            Topology::PointToPoint
        };
        let len = g.urange(1, 200);
        let seq = g.vec(len, msg);
        let mut n = Network::with_topology(8, LatencyConfig::default(), 32, topo);
        for (now, from, to, k) in seq {
            let t = n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from == to {
                assert_eq!(t, now, "intra-node transfers are free");
            } else {
                let hops = topo.hops(NodeId(from), NodeId(to));
                assert!(
                    t >= now + 40 * hops,
                    "arrival {t} earlier than {hops} uncongested hops from {now}"
                );
            }
        }
    });
}

/// Traffic accounting: total bytes equal the sum of per-message sizes, and
/// message counts match the number of remote sends.
#[test]
fn traffic_accounting_is_exact() {
    cases(256, |g| {
        let len = g.urange(1, 200);
        let seq = g.vec(len, msg);
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut bytes = 0u64;
        let mut remote = 0u64;
        let mut invals = 0u64;
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            if from != to {
                remote += 1;
                bytes += KINDS[k].size_bytes(32);
                if KINDS[k].is_invalidation() {
                    invals += 1;
                }
            }
        }
        assert_eq!(n.traffic().total_messages(), remote);
        assert_eq!(n.traffic().total_bytes(), bytes);
        assert_eq!(n.traffic().invalidations(), invals);
    });
}

/// NI busy time is monotone: sending more never frees the NI earlier.
#[test]
fn ni_occupancy_is_monotone() {
    cases(256, |g| {
        let len = g.urange(1, 100);
        let seq = g.vec(len, msg);
        let mut n = Network::new(8, LatencyConfig::default(), 32);
        let mut last = [0u64; 8];
        for (now, from, to, k) in seq {
            n.send(now, NodeId(from), NodeId(to), KINDS[k]);
            for node in 0..8u16 {
                let free = n.ni_free_at(NodeId(node));
                assert!(free >= last[node as usize]);
                last[node as usize] = free;
            }
        }
    });
}

/// A random fault plan applied to a random request schedule twice produces
/// identical `Delivery` sequences and fault statistics: the plan's
/// randomness is fully determined by its seed.
#[test]
fn identical_seeds_give_identical_delivery_sequences() {
    cases(128, |g| {
        let plan = FaultConfig {
            nack_per_mille: g.below(500) as u16,
            delay_per_mille: g.below(500) as u16,
            drop_per_mille: g.below(500) as u16,
            dup_per_mille: g.below(500) as u16,
            reorder_per_mille: g.below(500) as u16,
            max_delay_cycles: 1 + g.below(50),
            max_consecutive_nacks: 1 + g.below(8) as u32,
            seed: g.u64(),
            ..FaultConfig::default()
        };
        let len = g.urange(1, 60);
        let seq = g.vec(len, msg);
        let run = |seq: &[(u64, u16, u16, usize)]| -> (Vec<Delivery>, FaultStats) {
            let mut n = Network::new(8, LatencyConfig::default(), 32);
            n.install_faults(plan);
            let ds = seq
                .iter()
                .map(|&(now, from, to, k)| n.send_request(now, NodeId(from), NodeId(to), KINDS[k]))
                .collect();
            (ds, n.fault_stats())
        };
        assert_eq!(
            run(&seq),
            run(&seq),
            "same plan + same schedule = same faults"
        );
    });
}

/// Transport fault streams are per-(src,dst): a flow's deliveries are
/// unchanged by arbitrary traffic on a node-disjoint flow.
#[test]
fn distinct_flows_have_disjoint_fault_streams() {
    cases(128, |g| {
        let plan = FaultConfig {
            drop_per_mille: g.below(600) as u16,
            dup_per_mille: g.below(600) as u16,
            reorder_per_mille: g.below(600) as u16,
            max_consecutive_nacks: 1 + g.below(8) as u32,
            seed: g.u64(),
            ..FaultConfig::default()
        };
        let len = g.urange(1, 40);
        // Probe flow 0->1; interference flow 2->3 (disjoint NIs and links
        // under point-to-point, so only the fault streams could couple them).
        let probe: Vec<u64> = g.vec(len, |g| g.below(5_000));
        let noise: Vec<bool> = g.vec(len, Gen::bool);
        let run = |with_noise: bool| -> Vec<Delivery> {
            let mut n = Network::new(8, LatencyConfig::default(), 32);
            n.install_faults(plan);
            probe
                .iter()
                .zip(&noise)
                .map(|(&now, &interleave)| {
                    if with_noise && interleave {
                        let _ = n.send_request(now, NodeId(2), NodeId(3), MsgKind::WriteMissReq);
                    }
                    n.send_request(now, NodeId(0), NodeId(1), MsgKind::ReadReq)
                })
                .collect()
        };
        assert_eq!(
            run(false),
            run(true),
            "traffic on flow 2->3 must not perturb flow 0->1"
        );
    });
}

/// Mesh routes always reach their destination through adjacent links and
/// cost exactly the Manhattan distance.
#[test]
fn mesh_routes_are_shortest() {
    cases(256, |g| {
        let from = g.below(16) as u16;
        let to = g.below(16) as u16;
        let width = *g.pick(&[1u16, 2, 4]); // divisors of 16: full rows only
        let t = Topology::Mesh2D { width };
        let route = t.route(NodeId(from), NodeId(to));
        assert_eq!(route.len() as u64, t.hops(NodeId(from), NodeId(to)));
        let mut cur = NodeId(from);
        for (a, b) in route {
            assert_eq!(a, cur);
            assert_eq!(t.hops(a, b), 1);
            cur = b;
        }
        if from != to {
            assert_eq!(cur, NodeId(to));
        }
    });
}
