//! Point-to-point interconnection network model.
//!
//! §4.2: "The processor nodes are connected in a point-to-point network with
//! a fixed delay. Contention is accurately modeled in the network."
//!
//! Model: every node has a network interface (NI) that injects messages
//! serially. A message occupies the sender's NI for `size_bytes /
//! LINK_BYTES_PER_CYCLE` cycles (minimum 1) and then travels for the fixed
//! `net` traversal delay; the receiving controller adds its `mc` occupancy
//! (charged by the latency model at the endpoint). Contention therefore
//! appears as queueing delay at busy NIs. Intra-node "messages" (home ==
//! requester) bypass the network entirely and are not counted as traffic.
//!
//! All traffic counters live here, split by [`MsgKind`] and by the paper's
//! read/write/other [`MsgClass`] categories.

use ccsim_types::{FaultConfig, LatencyConfig, MsgClass, MsgKind, NodeId, Topology};
use ccsim_util::{FromJson, FxHashMap, Json, ToJson, Xoshiro256pp};

/// Injection bandwidth of a network interface (bytes per cycle).
pub const LINK_BYTES_PER_CYCLE: u64 = 8;

/// Per-class message and byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    pub messages: u64,
    pub bytes: u64,
}

/// Network traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    read: ClassCounters,
    write: ClassCounters,
    other: ClassCounters,
    invalidations: u64,
    by_kind: std::collections::BTreeMap<&'static str, u64>,
}

impl Traffic {
    fn class_mut(&mut self, c: MsgClass) -> &mut ClassCounters {
        match c {
            MsgClass::Read => &mut self.read,
            MsgClass::Write => &mut self.write,
            MsgClass::Other => &mut self.other,
        }
    }

    /// Counters for one class.
    pub fn class(&self, c: MsgClass) -> ClassCounters {
        match c {
            MsgClass::Read => self.read,
            MsgClass::Write => self.write,
            MsgClass::Other => self.other,
        }
    }

    /// Total messages across classes.
    pub fn total_messages(&self) -> u64 {
        self.read.messages + self.write.messages + self.other.messages
    }

    /// Total bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.read.bytes + self.write.bytes + self.other.bytes
    }

    /// Home-to-sharer invalidation messages (Figure 5's "Invalidations").
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Count of one message kind (diagnostics).
    pub fn kind_count(&self, kind: MsgKind) -> u64 {
        *self.by_kind.get(kind_name(kind)).unwrap_or(&0)
    }

    fn record(&mut self, kind: MsgKind, block_bytes: u64) {
        let c = self.class_mut(kind.class());
        c.messages += 1;
        c.bytes += kind.size_bytes(block_bytes);
        if kind.is_invalidation() {
            self.invalidations += 1;
        }
        *self.by_kind.entry(kind_name(kind)).or_insert(0) += 1;
    }

    /// Merge another traffic tally into this one.
    pub fn merge(&mut self, other: &Traffic) {
        for c in MsgClass::ALL {
            let o = other.class(c);
            let m = self.class_mut(c);
            m.messages += o.messages;
            m.bytes += o.bytes;
        }
        self.invalidations += other.invalidations;
        for (k, v) in &other.by_kind {
            *self.by_kind.entry(k).or_insert(0) += v;
        }
    }
}

impl ToJson for ClassCounters {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("messages", self.messages.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for ClassCounters {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ClassCounters {
            messages: j.field("messages")?,
            bytes: j.field("bytes")?,
        })
    }
}

impl ToJson for Traffic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("read", self.read.to_json()),
            ("write", self.write.to_json()),
            ("other", self.other.to_json()),
            ("invalidations", self.invalidations.to_json()),
            (
                "by_kind",
                Json::Obj(
                    self.by_kind
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Traffic {
    fn from_json(j: &Json) -> Result<Self, String> {
        let mut by_kind = std::collections::BTreeMap::new();
        for (k, v) in j.req("by_kind")?.as_obj()? {
            let name = intern_kind_name(k)
                .ok_or_else(|| format!("unknown message kind `{k}` in traffic"))?;
            by_kind.insert(name, v.as_u64()?);
        }
        Ok(Traffic {
            read: j.field("read")?,
            write: j.field("write")?,
            other: j.field("other")?,
            invalidations: j.field("invalidations")?,
            by_kind,
        })
    }
}

/// Map a decoded kind name back onto the `'static` key [`Traffic::by_kind`]
/// uses internally. `None` for names no [`MsgKind`] produces — a decode of
/// such data fails loudly rather than dropping counters.
fn intern_kind_name(s: &str) -> Option<&'static str> {
    use MsgKind::*;
    const ALL: [MsgKind; 19] = [
        ReadReq,
        ReadReply,
        ReadExclReply,
        ReadForward,
        OwnerReply,
        SharingWriteback,
        UpgradeReq,
        UpgradeAck,
        WriteMissReq,
        WriteMissReply,
        WriteForward,
        OwnerWriteReply,
        Inval,
        InvalAck,
        ReplWriteback,
        ReplHint,
        NotLs,
        Retry,
        Ack,
    ];
    ALL.into_iter().map(kind_name).find(|&n| n == s)
}

fn kind_name(kind: MsgKind) -> &'static str {
    use MsgKind::*;
    match kind {
        ReadReq => "ReadReq",
        ReadReply => "ReadReply",
        ReadExclReply => "ReadExclReply",
        ReadForward => "ReadForward",
        OwnerReply => "OwnerReply",
        SharingWriteback => "SharingWriteback",
        UpgradeReq => "UpgradeReq",
        UpgradeAck => "UpgradeAck",
        WriteMissReq => "WriteMissReq",
        WriteMissReply => "WriteMissReply",
        WriteForward => "WriteForward",
        OwnerWriteReply => "OwnerWriteReply",
        Inval => "Inval",
        InvalAck => "InvalAck",
        ReplWriteback => "ReplWriteback",
        ReplHint => "ReplHint",
        NotLs => "NotLs",
        Retry => "Retry",
        Ack => "Ack",
    }
}

/// Outcome of a fallible request delivery under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The request arrived; the value is its arrival time at the receiver.
    Delivered(u64),
    /// The receiver NACKed the request and bounced a [`MsgKind::Retry`]
    /// back; the value is the time the NACK reaches the original sender,
    /// who must re-issue (with backoff).
    Nacked(u64),
}

/// Counters describing what a fault plan actually did (diagnostics; not
/// part of serialized run statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests NACKed by the injector.
    pub nacks: u64,
    /// NACK or drop streaks cut short by the forced-delivery bound.
    pub forced_deliveries: u64,
    /// Messages hit by a delay spike.
    pub delay_spikes: u64,
    /// Total extra cycles added by delay spikes.
    pub delay_cycles: u64,
    /// Sequenced copies lost on the wire (message or its ACK).
    pub drops: u64,
    /// Copies re-injected by the timeout-and-retransmit driver.
    pub retransmits: u64,
    /// Copies suppressed by receiver-side sequence-number dedup.
    pub dups_suppressed: u64,
    /// Copies detained in the receiver's reorder buffer.
    pub reorders: u64,
    /// Transport acknowledgements delivered back to the sender.
    pub acks: u64,
}

/// Receiver-side bound on out-of-order copies parked per flow. An arrival
/// that would overflow the buffer is discarded like a wire drop; the
/// timeout-and-retransmit driver recovers it, so the bound costs latency,
/// never correctness.
pub const REORDER_BUFFER_CAP: usize = 4;

/// What the receiver did with one sequenced copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AcceptOutcome {
    /// The copy released an in-order delivery to the protocol layer at the
    /// given time (its own, or later if it had been parked behind a gap).
    Delivered(u64),
    /// Sequence number already delivered or already parked: suppressed.
    Duplicate,
    /// Arrived ahead of a gap; parked in the reorder buffer.
    Parked,
    /// Reorder buffer full; discarded (recovered by retransmission).
    Overflow,
}

/// Per-(src,dst) transport state: the sender's sequence counter, the
/// receiver's re-sequencing cursor + reorder buffer, and a private
/// randomness stream so fault rolls on one flow can never perturb another.
struct FlowState {
    rng: Xoshiro256pp,
    /// Next sequence number the sender will assign.
    next_seq: u64,
    /// Next sequence number the receiver will release to the protocol.
    next_expected: u64,
    /// Out-of-order arrivals awaiting their predecessors: `(seq, arrive)`.
    /// Bounded by [`REORDER_BUFFER_CAP`].
    reorder_buf: Vec<(u64, u64)>,
}

impl FlowState {
    fn new(stream_seed: u64) -> Self {
        FlowState {
            rng: Xoshiro256pp::seed_from_u64(stream_seed),
            next_seq: 0,
            next_expected: 0,
            reorder_buf: Vec::new(),
        }
    }

    /// Assign the next sender-side sequence number.
    fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Receiver-side exactly-once re-sequencing: accept one copy of `seq`
    /// arriving at time `at`.
    fn accept(&mut self, seq: u64, at: u64) -> AcceptOutcome {
        if seq < self.next_expected || self.reorder_buf.iter().any(|&(s, _)| s == seq) {
            return AcceptOutcome::Duplicate;
        }
        if seq > self.next_expected {
            if self.reorder_buf.len() >= REORDER_BUFFER_CAP {
                return AcceptOutcome::Overflow;
            }
            self.reorder_buf.push((seq, at));
            return AcceptOutcome::Parked;
        }
        // In order: release it, then drain any parked successors it unblocks.
        let mut release = at;
        self.next_expected += 1;
        // ccsim-lint: allow(unbounded-retry): drains at most REORDER_BUFFER_CAP parked entries
        while let Some(i) = self
            .reorder_buf
            .iter()
            .position(|&(s, _)| s == self.next_expected)
        {
            let (_, parked_at) = self.reorder_buf.swap_remove(i);
            release = release.max(parked_at);
            self.next_expected += 1;
        }
        AcceptOutcome::Delivered(release)
    }
}

/// Seeded fault injector and recovery-transport state. The NACK/delay
/// classes roll a single plan-wide xoshiro256++ stream in the deterministic
/// order the (serialized) engine calls into the network; the transport
/// classes (drop/dup/reorder) roll per-flow streams so distinct (src,dst)
/// pairs stay statistically independent. Same plan + same workload = same
/// faults. A class with rate zero never consumes randomness, so enabling
/// one class cannot shift another's stream.
struct FaultPlan {
    cfg: FaultConfig,
    rng: Xoshiro256pp,
    consecutive_nacks: u32,
    flows: FxHashMap<(NodeId, NodeId), FlowState>,
    stats: FaultStats,
}

impl FaultPlan {
    fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: Xoshiro256pp::seed_from_u64(cfg.seed),
            consecutive_nacks: 0,
            flows: FxHashMap::default(),
            stats: FaultStats::default(),
        }
    }

    /// Per-flow transport state, created lazily with a stream seed derived
    /// from the plan seed and the ordered (src,dst) pair.
    fn flow_mut(&mut self, from: NodeId, to: NodeId) -> &mut FlowState {
        let seed = self.cfg.seed
            ^ (from.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (to.0 as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.flows
            .entry((from, to))
            .or_insert_with(|| FlowState::new(seed))
    }

    /// Should the next request be NACKed? Consumes randomness only when the
    /// NACK class is enabled, so a delay-only plan's stream is unaffected.
    fn roll_nack(&mut self) -> bool {
        if self.cfg.nack_per_mille == 0 {
            return false;
        }
        if self.consecutive_nacks >= self.cfg.max_consecutive_nacks {
            self.consecutive_nacks = 0;
            self.stats.forced_deliveries += 1;
            return false;
        }
        if self.rng.below(1000) < self.cfg.nack_per_mille as u64 {
            self.consecutive_nacks += 1;
            self.stats.nacks += 1;
            true
        } else {
            self.consecutive_nacks = 0;
            false
        }
    }

    /// Extra delivery delay for the next timed message (0 = no spike).
    fn roll_spike(&mut self) -> u64 {
        if self.cfg.delay_per_mille == 0 {
            return 0;
        }
        if self.rng.below(1000) < self.cfg.delay_per_mille as u64 {
            let d = 1 + self.rng.below(self.cfg.max_delay_cycles);
            self.stats.delay_spikes += 1;
            self.stats.delay_cycles += d;
            d
        } else {
            0
        }
    }

    /// Is the next sequenced copy on this flow lost on the wire?
    fn roll_drop(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.cfg.drop_per_mille == 0 {
            return false;
        }
        let rate = self.cfg.drop_per_mille as u64;
        self.flow_mut(from, to).rng.below(1000) < rate
    }

    /// Does the next sequenced copy on this flow arrive twice?
    fn roll_dup(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.cfg.dup_per_mille == 0 {
            return false;
        }
        let rate = self.cfg.dup_per_mille as u64;
        self.flow_mut(from, to).rng.below(1000) < rate
    }

    /// Is the next sequenced copy on this flow detained in the receiver's
    /// reorder buffer past its nominal arrival?
    fn roll_reorder(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.cfg.reorder_per_mille == 0 {
            return false;
        }
        let rate = self.cfg.reorder_per_mille as u64;
        self.flow_mut(from, to).rng.below(1000) < rate
    }
}

/// The interconnect: topology-routed links with per-NI and per-link
/// queueing.
pub struct Network {
    latency: LatencyConfig,
    block_bytes: u64,
    topology: Topology,
    /// Cycle until which each node's NI is busy injecting.
    ni_busy_until: Vec<u64>,
    /// Cycle until which each directed link is busy (mesh contention).
    /// Deterministically hashed: a `RandomState` map here would not change
    /// timing (lookups are per-link), but it is exactly the kind of latent
    /// iteration-order hazard `ccsim lint` bans workspace-wide.
    link_busy_until: FxHashMap<(NodeId, NodeId), u64>,
    traffic: Traffic,
    /// Fault injector; `None` when the plan is disabled, in which case no
    /// randomness is ever consumed and timing is exactly the fault-free
    /// model.
    faults: Option<FaultPlan>,
    /// Testing-only transport mutation: the receiver skips sequence-number
    /// dedup, so a duplicated copy leaks through to the protocol layer. The
    /// leak is reported via [`Network::take_leaked_duplicate`] so the caller
    /// can model the stale re-application the dedup would have prevented.
    #[cfg(feature = "testing")]
    skip_dedup: bool,
    /// Count of duplicate copies that leaked past dedup (always zero
    /// without the skip-dedup mutation), drained by the caller.
    leaked_duplicates: u64,
}

impl Network {
    pub fn new(nodes: u16, latency: LatencyConfig, block_bytes: u64) -> Self {
        Self::with_topology(nodes, latency, block_bytes, Topology::PointToPoint)
    }

    pub fn with_topology(
        nodes: u16,
        latency: LatencyConfig,
        block_bytes: u64,
        topology: Topology,
    ) -> Self {
        Self::try_with_topology(nodes, latency, block_bytes, topology)
            .unwrap_or_else(|e| panic!("invalid topology: {e}"))
    }

    /// Fallible constructor: returns a description of the problem instead
    /// of panicking on an invalid topology, so front ends can print a clean
    /// error.
    pub fn try_with_topology(
        nodes: u16,
        latency: LatencyConfig,
        block_bytes: u64,
        topology: Topology,
    ) -> Result<Self, String> {
        topology.validate(nodes)?;
        Ok(Network {
            latency,
            block_bytes,
            topology,
            ni_busy_until: vec![0; nodes as usize],
            link_busy_until: FxHashMap::default(),
            traffic: Traffic::default(),
            faults: None,
            #[cfg(feature = "testing")]
            skip_dedup: false,
            leaked_duplicates: 0,
        })
    }

    /// Arm deterministic fault injection. A disabled plan (all-zero rates)
    /// is ignored, keeping the fault-free fast path bit-identical.
    pub fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = if cfg.enabled() {
            Some(FaultPlan::new(cfg))
        } else {
            None
        };
    }

    /// What the fault injector has done so far (zeroes when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Install the skip-dedup transport mutation (testing builds only): the
    /// receiver stops suppressing duplicate sequence numbers, the seeded bug
    /// the model checker and chaos shrinker must convict.
    #[cfg(feature = "testing")]
    pub fn install_skip_dedup(&mut self) {
        self.skip_dedup = true;
    }

    #[cfg(feature = "testing")]
    fn dedup_disabled(&self) -> bool {
        self.skip_dedup
    }

    #[cfg(not(feature = "testing"))]
    fn dedup_disabled(&self) -> bool {
        false
    }

    /// Drain the count of duplicate copies that leaked past receiver dedup
    /// since the last call. Always zero unless the skip-dedup mutation is
    /// installed; the caller uses it to model the stale re-application a
    /// correct receiver would have suppressed.
    pub fn take_leaked_duplicates(&mut self) -> u64 {
        std::mem::take(&mut self.leaked_duplicates)
    }

    /// Diagnostic snapshot of per-flow transport state, deterministically
    /// ordered by (src,dst): `(src, dst, sent, delivered, reorder_depth)`.
    /// Empty when no fault plan is armed or no flow has carried traffic.
    pub fn transport_flows(&self) -> Vec<(NodeId, NodeId, u64, u64, usize)> {
        let Some(f) = &self.faults else {
            return Vec::new();
        };
        let mut rows: Vec<_> = f
            .flows
            .iter()
            .map(|(&(a, b), st)| (a, b, st.next_seq, st.next_expected, st.reorder_buf.len()))
            .collect();
        rows.sort_by_key(|&(a, b, ..)| (a.0, b.0));
        rows
    }

    /// Send one message at simulated time `now`; returns its arrival time at
    /// the destination NI (before the receiving controller's `mc` occupancy,
    /// which the latency model charges separately).
    ///
    /// Cut-through model: the message's own serialization overlaps its
    /// traversal (arrival = injection start + `net`), but it occupies the
    /// sender's NI for its full serialization time, delaying later messages
    /// — that queueing is where contention shows up.
    ///
    /// Intra-node transfers (`from == to`) are free and uncounted.
    pub fn send(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> u64 {
        if from == to {
            return now;
        }
        self.traffic.record(kind, self.block_bytes);
        let occupancy = (kind.size_bytes(self.block_bytes) / LINK_BYTES_PER_CYCLE).max(1);
        let ni = &mut self.ni_busy_until[from.idx()];
        let mut t = (*ni).max(now);
        *ni = t + occupancy;
        // Traverse the route, booking each link (wormhole cut-through: the
        // header advances one `net` delay per link; the body's occupancy
        // trails behind and is what later messages queue on).
        for link in self.topology.route(from, to) {
            let busy = self.link_busy_until.entry(link).or_insert(0);
            let start = (*busy).max(t);
            *busy = start + occupancy;
            t = start + self.latency.net;
        }
        if let Some(f) = &mut self.faults {
            t += f.roll_spike();
        }
        t
    }

    /// Send a coherence *request* that the fault injector may NACK, and
    /// that the recovery transport carries exactly once, in order, when any
    /// drop/dup/reorder class is armed.
    ///
    /// A NACKed request still travels to the receiver (and is counted as
    /// traffic) but is refused there; a [`MsgKind::Retry`] bounce is sent
    /// back, and the returned [`Delivery::Nacked`] time is when that bounce
    /// reaches the sender. Intra-node requests are never NACKed (they do
    /// not enter the network). Without an armed fault plan this is exactly
    /// [`Network::send`].
    pub fn send_request(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> Delivery {
        if from == to {
            return Delivery::Delivered(now);
        }
        let nack = match &mut self.faults {
            Some(f) => f.roll_nack(),
            None => false,
        };
        let arrive = self.transport_send(now, from, to, kind);
        if nack {
            let back = self.send(arrive, to, from, MsgKind::Retry);
            Delivery::Nacked(back)
        } else {
            Delivery::Delivered(arrive)
        }
    }

    /// Carry one sequenced message over the lossy wire and return the time
    /// the receiver releases it — exactly once, in order — to the protocol
    /// layer.
    ///
    /// Stop-and-wait ARQ: the sender assigns a per-flow sequence number and
    /// retransmits on a deterministic timeout with capped exponential
    /// backoff; a drop streak longer than `max_consecutive_nacks` forces
    /// delivery, bounding worst-case latency. The receiver suppresses
    /// duplicate sequence numbers (load-bearing when the *ACK* is the copy
    /// that drops: the sender retransmits a message the receiver already
    /// delivered) and re-sequences detained copies through the bounded
    /// reorder buffer. When every transport class is disabled this is
    /// exactly [`Network::send`] and consumes no randomness.
    fn transport_send(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> u64 {
        let cfg = match &self.faults {
            Some(f) if f.cfg.transport_enabled() => f.cfg,
            _ => return self.send(now, from, to, kind),
        };
        let seq = {
            // ccsim-lint: allow(unwrap): guarded by the match above — the plan is armed
            let f = self.faults.as_mut().unwrap();
            f.flow_mut(from, to).take_seq()
        };
        let mut rto = self.latency.net.max(1);
        let rto_cap = rto * 64;
        let mut t = now;
        let mut streak = 0u32;
        // ccsim-lint: allow(unbounded-retry): backoff capped at rto_cap, drop streak bounded by max_consecutive_nacks
        let arrive = loop {
            let dropped = streak < cfg.max_consecutive_nacks && {
                // ccsim-lint: allow(unwrap): plan is armed on this path
                self.faults.as_mut().unwrap().roll_drop(from, to)
            };
            if !dropped {
                if streak >= cfg.max_consecutive_nacks {
                    // ccsim-lint: allow(unwrap): plan is armed on this path
                    self.faults.as_mut().unwrap().stats.forced_deliveries += 1;
                }
                break self.send(t, from, to, kind);
            }
            // The copy is injected (occupying the NI and links like any
            // message) but never arrives; the sender times out and re-sends.
            let _ = self.send(t, from, to, kind);
            // ccsim-lint: allow(unwrap): plan is armed on this path
            let f = self.faults.as_mut().unwrap();
            f.stats.drops += 1;
            f.stats.retransmits += 1;
            streak += 1;
            t += rto;
            rto = (rto * 2).min(rto_cap);
        };
        // Duplication: a second copy of the same sequence number arrives
        // right behind the first; the receiver's dedup suppresses it.
        // ccsim-lint: allow(unwrap): plan is armed on this path
        if self.faults.as_mut().unwrap().roll_dup(from, to) {
            let _ = self.send(t, from, to, kind);
            self.suppress_duplicate();
        }
        // Reordering: the copy is detained in the receiver's reorder buffer
        // behind an out-of-order arrival for one traversal delay before the
        // re-sequencer releases it.
        // ccsim-lint: allow(unwrap): plan is armed on this path
        let detained = self.faults.as_mut().unwrap().roll_reorder(from, to);
        let mut release = arrive + if detained { self.latency.net.max(1) } else { 0 };
        {
            // ccsim-lint: allow(unwrap): plan is armed on this path
            let f = self.faults.as_mut().unwrap();
            if detained {
                f.stats.reorders += 1;
            }
            match f.flow_mut(from, to).accept(seq, release) {
                AcceptOutcome::Delivered(at) => release = at,
                // Stop-and-wait keeps one message in flight per flow, so
                // the in-order copy always releases immediately.
                other => unreachable!("stop-and-wait delivery must be in order, got {other:?}"),
            }
        }
        // The receiver acknowledges; a lost ACK makes the sender retransmit
        // a message the receiver has already delivered, and the dedup (or
        // its seeded skip-dedup mutation) decides what happens next.
        let mut ack_from = release;
        let mut ack_streak = 0u32;
        // ccsim-lint: allow(unbounded-retry): ACK-loss streaks share the max_consecutive_nacks forced-delivery bound
        loop {
            let ack_arrive = self.send(ack_from, to, from, MsgKind::Ack);
            // ccsim-lint: allow(unwrap): plan is armed on this path
            let ack_lost = ack_streak < cfg.max_consecutive_nacks
                && self.faults.as_mut().unwrap().roll_drop(from, to);
            if !ack_lost {
                // ccsim-lint: allow(unwrap): plan is armed on this path
                let f = self.faults.as_mut().unwrap();
                f.stats.acks += 1;
                if ack_streak >= cfg.max_consecutive_nacks {
                    f.stats.forced_deliveries += 1;
                }
                break;
            }
            // ccsim-lint: allow(unwrap): plan is armed on this path
            let f = self.faults.as_mut().unwrap();
            f.stats.drops += 1;
            f.stats.retransmits += 1;
            ack_streak += 1;
            // Sender's timeout fires; the retransmitted copy reaches the
            // receiver, which dedups it and acks again.
            let retx_arrive = self.send(ack_arrive + rto, from, to, kind);
            self.suppress_duplicate();
            ack_from = retx_arrive;
        }
        release
    }

    /// Receiver-side handling of a copy whose sequence number was already
    /// delivered: suppressed by dedup, or — under the seeded skip-dedup
    /// mutation — leaked through to the protocol layer.
    fn suppress_duplicate(&mut self) {
        if self.dedup_disabled() {
            self.leaked_duplicates += 1;
            return;
        }
        // ccsim-lint: allow(unwrap): only called with an armed plan
        self.faults.as_mut().unwrap().stats.dups_suppressed += 1;
    }

    /// Account a message without modeling its timing (used for messages that
    /// travel in parallel with the critical path, e.g. sharing writebacks,
    /// or fire-and-forget hints).
    pub fn send_background(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) {
        if from == to {
            return;
        }
        self.traffic.record(kind, self.block_bytes);
        // Background messages still occupy the sender's NI.
        let occupancy = (kind.size_bytes(self.block_bytes) / LINK_BYTES_PER_CYCLE).max(1);
        let ni = &mut self.ni_busy_until[from.idx()];
        let start = (*ni).max(now);
        *ni = start + occupancy;
    }

    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Earliest cycle at which `node`'s NI is free (diagnostics).
    pub fn ni_free_at(&self, node: NodeId) -> u64 {
        self.ni_busy_until[node.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(4, LatencyConfig::default(), 16)
    }

    #[test]
    fn intra_node_send_is_free_and_uncounted() {
        let mut n = net();
        let t = n.send(100, NodeId(1), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 100);
        assert_eq!(n.traffic().total_messages(), 0);
    }

    #[test]
    fn remote_send_takes_traversal_delay() {
        let mut n = net();
        // Cut-through: arrival = injection + 40-cycle traversal.
        let t = n.send(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 100 + 40);
        assert_eq!(n.traffic().total_messages(), 1);
        assert_eq!(n.traffic().class(MsgClass::Read).messages, 1);
        assert_eq!(n.traffic().class(MsgClass::Read).bytes, 8);
    }

    #[test]
    fn data_messages_occupy_the_ni_longer() {
        let mut n = net();
        // 8 + 16 bytes = 3 cycles occupancy; own arrival still now + net.
        let t = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply);
        assert_eq!(t, 40);
        assert_eq!(n.ni_free_at(NodeId(0)), 3);
        assert_eq!(n.traffic().class(MsgClass::Read).bytes, 24);
    }

    #[test]
    fn contention_queues_at_the_sender_ni() {
        let mut n = net();
        let t1 = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply); // NI busy [0,3)
        let t2 = n.send(0, NodeId(0), NodeId(2), MsgKind::ReadReq); // queued behind
        assert_eq!(t1, 40);
        assert_eq!(t2, 3 + 40);
        // A different node's NI is unaffected.
        let t3 = n.send(0, NodeId(3), NodeId(0), MsgKind::ReadReq);
        assert_eq!(t3, 40);
    }

    #[test]
    fn idle_ni_does_not_queue() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        // Much later, no queueing.
        let t = n.send(1000, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 1040);
    }

    #[test]
    fn invalidations_counted_separately() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::Inval);
        n.send(0, NodeId(0), NodeId(2), MsgKind::Inval);
        n.send(0, NodeId(1), NodeId(0), MsgKind::InvalAck);
        assert_eq!(n.traffic().invalidations(), 2);
        assert_eq!(n.traffic().class(MsgClass::Write).messages, 3);
    }

    #[test]
    fn background_sends_counted_but_untimed() {
        let mut n = net();
        n.send_background(0, NodeId(0), NodeId(1), MsgKind::SharingWriteback);
        assert_eq!(n.traffic().total_messages(), 1);
        // It still occupies the NI.
        assert!(n.ni_free_at(NodeId(0)) > 0);
        // Intra-node background is free.
        n.send_background(0, NodeId(2), NodeId(2), MsgKind::ReplHint);
        assert_eq!(n.traffic().total_messages(), 1);
    }

    #[test]
    fn mesh_distance_costs_hops() {
        // 4x1 mesh (a line): 0-1-2-3.
        let mut n = Network::with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 4 },
        );
        let t1 = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t1, 40, "one hop");
        let t3 = n.send(1000, NodeId(0), NodeId(3), MsgKind::ReadReq);
        assert_eq!(t3, 1000 + 3 * 40, "three hops");
    }

    #[test]
    fn mesh_links_contend_independently() {
        let mut n = Network::with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 4 },
        );
        // A long message 1->2 occupies link (1,2).
        n.send(0, NodeId(1), NodeId(2), MsgKind::ReadReply); // occupancy 3
                                                             // A message 0->3 must cross (1,2) and queues behind it there.
        let t = n.send(0, NodeId(0), NodeId(3), MsgKind::ReadReq);
        // Link (0,1): start 0, arrive 40. Link (1,2): busy until 3 but we
        // arrive at 40 anyway -> 80. Link (2,3): -> 120.
        assert_eq!(t, 120);
        // Now saturate (1,2) far into the future and observe queueing.
        for _ in 0..50 {
            n.send(200, NodeId(1), NodeId(2), MsgKind::ReadReply);
        }
        let t2 = n.send(200, NodeId(0), NodeId(3), MsgKind::ReadReq);
        assert!(t2 > 200 + 120, "congested middle link must delay the route");
    }

    #[test]
    fn traffic_json_round_trips() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply);
        n.send(0, NodeId(0), NodeId(2), MsgKind::Inval);
        n.send_background(0, NodeId(1), NodeId(0), MsgKind::SharingWriteback);
        let t = n.traffic().clone();
        let back = Traffic::from_json(&Json::parse(&t.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, t);
        // Unknown kinds must fail the decode, not vanish.
        let mut j = t.to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "by_kind" {
                    *v = Json::obj(vec![("Bogus", Json::U64(1))]);
                }
            }
        }
        assert!(Traffic::from_json(&j).is_err());
    }

    #[test]
    fn try_with_topology_reports_bad_shapes() {
        let err = Network::try_with_topology(
            5,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 3 },
        );
        assert!(err.is_err(), "5 nodes cannot fill a width-3 mesh");
        assert!(Network::try_with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::PointToPoint
        )
        .is_ok());
    }

    fn fault_cfg(nack: u16, delay: u16, max_delay: u64) -> FaultConfig {
        FaultConfig {
            nack_per_mille: nack,
            delay_per_mille: delay,
            max_delay_cycles: max_delay,
            seed: 0xFA17,
            ..FaultConfig::default()
        }
    }

    fn transport_cfg(drop: u16, dup: u16, reorder: u16) -> FaultConfig {
        FaultConfig {
            drop_per_mille: drop,
            dup_per_mille: dup,
            reorder_per_mille: reorder,
            seed: 0xFA17,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn send_request_without_faults_matches_send() {
        let mut a = net();
        let mut b = net();
        let d = a.send_request(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let t = b.send(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(d, Delivery::Delivered(t));
        assert_eq!(a.traffic(), b.traffic());
        assert_eq!(a.fault_stats(), FaultStats::default());
    }

    #[test]
    fn certain_nacks_bounce_with_retry_traffic() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let d = n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let Delivery::Nacked(back) = d else {
            panic!("rate-1000 plan must NACK, got {d:?}");
        };
        // Request hop + Retry hop, both real traversals.
        assert_eq!(back, 2 * 40);
        assert_eq!(n.traffic().kind_count(MsgKind::ReadReq), 1);
        assert_eq!(n.traffic().kind_count(MsgKind::Retry), 1);
        assert_eq!(n.fault_stats().nacks, 1);
    }

    #[test]
    fn nack_streaks_are_bounded_for_forward_progress() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let bound = FaultConfig::default().max_consecutive_nacks;
        let mut delivered = false;
        for i in 0..=bound {
            match n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq) {
                Delivery::Delivered(_) => {
                    assert_eq!(i, bound, "forced delivery ends the streak");
                    delivered = true;
                }
                Delivery::Nacked(_) => assert!(i < bound),
            }
        }
        assert!(delivered);
        assert_eq!(n.fault_stats().forced_deliveries, 1);
    }

    #[test]
    fn nack_streak_bound_is_configurable() {
        let mut cfg = fault_cfg(1000, 0, 0);
        cfg.max_consecutive_nacks = 2;
        let mut n = net();
        n.install_faults(cfg);
        let outcomes: Vec<_> = (0..3)
            .map(|_| n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq))
            .collect();
        assert!(matches!(outcomes[0], Delivery::Nacked(_)));
        assert!(matches!(outcomes[1], Delivery::Nacked(_)));
        assert!(
            matches!(outcomes[2], Delivery::Delivered(_)),
            "streak of 2 must force the third delivery"
        );
    }

    #[test]
    fn nacked_requests_never_skip_intra_node() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let d = n.send_request(7, NodeId(2), NodeId(2), MsgKind::ReadReq);
        assert_eq!(d, Delivery::Delivered(7));
        assert_eq!(n.fault_stats().nacks, 0);
    }

    #[test]
    fn delay_spikes_stretch_arrival_deterministically() {
        let mut a = net();
        a.install_faults(fault_cfg(0, 1000, 25));
        let t = a.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert!(t > 40 && t <= 40 + 25, "spiked arrival out of range: {t}");
        assert_eq!(a.fault_stats().delay_spikes, 1);
        assert_eq!(a.fault_stats().delay_cycles, t - 40);
        // Same plan, same calls => identical timing.
        let mut b = net();
        b.install_faults(fault_cfg(0, 1000, 25));
        assert_eq!(b.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq), t);
    }

    #[test]
    fn disabled_plan_is_not_armed() {
        let mut n = net();
        n.install_faults(FaultConfig::default());
        let t = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 40);
        assert_eq!(n.fault_stats(), FaultStats::default());
    }

    #[test]
    fn drops_recover_by_retransmission() {
        let mut n = net();
        n.install_faults(transport_cfg(1000, 0, 0));
        let bound = FaultConfig::default().max_consecutive_nacks as u64;
        let d = n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let Delivery::Delivered(at) = d else {
            panic!("drop faults must be recovered, got {d:?}");
        };
        // Every pre-forced attempt dropped, then the ACK-loss streak forced
        // delivery too: both streaks hit the bound once.
        let s = n.fault_stats();
        assert_eq!(s.drops, 2 * bound, "message drops + ack drops");
        assert_eq!(s.retransmits, 2 * bound);
        assert_eq!(s.forced_deliveries, 2);
        assert_eq!(s.dups_suppressed, bound, "each ack-loss retransmit dedups");
        assert_eq!(s.acks, 1);
        // Retransmissions push arrival well past the fault-free 40 cycles.
        assert!(at > 40, "retransmitted delivery must be late, got {at}");
        // All copies are honest traffic: dropped+delivered requests and
        // ack-loss retransmits, plus every ACK injection.
        assert_eq!(
            n.traffic().kind_count(MsgKind::ReadReq),
            2 * bound + 1,
            "8 dropped + 1 delivered + 8 ack-loss retransmits"
        );
        assert_eq!(n.traffic().kind_count(MsgKind::Ack), bound + 1);
    }

    #[test]
    fn duplicates_are_suppressed_exactly_once() {
        let mut n = net();
        n.install_faults(transport_cfg(0, 1000, 0));
        for i in 0..3u64 {
            let d = n.send_request(i * 1000, NodeId(0), NodeId(1), MsgKind::WriteMissReq);
            assert!(matches!(d, Delivery::Delivered(_)));
        }
        let s = n.fault_stats();
        assert_eq!(
            s.dups_suppressed, 3,
            "one duplicate per message, all suppressed"
        );
        assert_eq!(s.drops, 0);
        assert_eq!(s.acks, 3);
        // The duplicate copies are real traffic: 2 copies per message.
        assert_eq!(n.traffic().kind_count(MsgKind::WriteMissReq), 6);
        // Exactly-once, in-order: sender and receiver cursors agree, and
        // nothing is parked.
        assert_eq!(n.transport_flows(), vec![(NodeId(0), NodeId(1), 3, 3, 0)]);
    }

    #[test]
    fn reordered_copies_are_detained_then_released_in_order() {
        let mut n = net();
        n.install_faults(transport_cfg(0, 0, 1000));
        let d = n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        // Fault-free arrival is 40; detention adds one traversal delay.
        assert_eq!(d, Delivery::Delivered(80));
        assert_eq!(n.fault_stats().reorders, 1);
        assert_eq!(n.transport_flows(), vec![(NodeId(0), NodeId(1), 1, 1, 0)]);
    }

    #[test]
    fn transport_delivery_is_deterministic() {
        fn run() -> (Vec<Delivery>, FaultStats) {
            let mut n = net();
            n.install_faults(transport_cfg(200, 150, 100));
            let ds = (0..32)
                .map(|i| {
                    let from = NodeId((i % 3) as u16);
                    let to = NodeId(3);
                    n.send_request(i * 50, from, to, MsgKind::ReadReq)
                })
                .collect();
            (ds, n.fault_stats())
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn transport_flows_have_disjoint_streams() {
        // Flow (0,1) must see the same faults whether or not flow (2,3)
        // carries interleaved traffic: per-flow rngs, disjoint NIs/links.
        let mut solo = net();
        solo.install_faults(transport_cfg(300, 300, 300));
        let solo_ds: Vec<_> = (0..16)
            .map(|i| solo.send_request(i * 500, NodeId(0), NodeId(1), MsgKind::ReadReq))
            .collect();
        let mut mixed = net();
        mixed.install_faults(transport_cfg(300, 300, 300));
        let mixed_ds: Vec<_> = (0..16)
            .map(|i| {
                let _ = mixed.send_request(i * 500, NodeId(2), NodeId(3), MsgKind::WriteMissReq);
                mixed.send_request(i * 500, NodeId(0), NodeId(1), MsgKind::ReadReq)
            })
            .collect();
        assert_eq!(solo_ds, mixed_ds);
    }

    #[test]
    fn heavy_mixed_faults_still_deliver_exactly_once_in_order() {
        let mut n = net();
        n.install_faults(transport_cfg(400, 400, 400));
        for i in 0..64u64 {
            let d = n.send_request(i * 100, NodeId(0), NodeId(1), MsgKind::UpgradeReq);
            assert!(matches!(d, Delivery::Delivered(_) | Delivery::Nacked(_)));
        }
        let rows = n.transport_flows();
        assert_eq!(rows.len(), 1);
        let (from, to, sent, delivered, parked) = rows[0];
        assert_eq!((from, to), (NodeId(0), NodeId(1)));
        assert_eq!(sent, 64);
        assert_eq!(delivered, 64, "every sequence number released exactly once");
        assert_eq!(parked, 0);
        assert_eq!(n.take_leaked_duplicates(), 0, "dedup never leaks");
    }

    #[test]
    fn transport_disabled_consumes_no_randomness() {
        // A NACK-only plan must behave exactly as before the transport
        // existed: no seq state, no Ack traffic, identical timing.
        let mut n = net();
        n.install_faults(fault_cfg(0, 1000, 25));
        let t = n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let mut plain = net();
        plain.install_faults(fault_cfg(0, 1000, 25));
        let t2 = Delivery::Delivered(plain.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq));
        assert_eq!(t, t2);
        assert_eq!(n.transport_flows(), Vec::new());
        assert_eq!(n.traffic().kind_count(MsgKind::Ack), 0);
    }

    #[cfg(feature = "testing")]
    #[test]
    fn skip_dedup_mutation_leaks_duplicates() {
        let mut n = net();
        n.install_faults(transport_cfg(0, 1000, 0));
        n.install_skip_dedup();
        let d = n.send_request(0, NodeId(0), NodeId(1), MsgKind::WriteMissReq);
        assert!(matches!(d, Delivery::Delivered(_)));
        assert_eq!(n.fault_stats().dups_suppressed, 0, "dedup is off");
        assert_eq!(n.take_leaked_duplicates(), 1, "the duplicate leaked");
        assert_eq!(n.take_leaked_duplicates(), 0, "drained");
    }

    #[test]
    fn reorder_buffer_resequences_and_bounds() {
        let mut f = FlowState::new(7);
        // Out-of-order arrival parks.
        assert_eq!(f.accept(1, 100), AcceptOutcome::Parked);
        assert_eq!(f.reorder_buf.len(), 1);
        // A duplicate of a parked copy is suppressed.
        assert_eq!(f.accept(1, 120), AcceptOutcome::Duplicate);
        // The gap fill releases both, at the later of the two times.
        assert_eq!(f.accept(0, 90), AcceptOutcome::Delivered(100));
        assert_eq!(f.next_expected, 2);
        assert!(f.reorder_buf.is_empty());
        // A stale duplicate of a delivered copy is suppressed.
        assert_eq!(f.accept(0, 200), AcceptOutcome::Duplicate);
        // The buffer is bounded: the overflowing arrival is discarded.
        for s in 0..REORDER_BUFFER_CAP as u64 {
            assert_eq!(f.accept(3 + s, 300), AcceptOutcome::Parked);
        }
        assert_eq!(
            f.accept(3 + REORDER_BUFFER_CAP as u64, 300),
            AcceptOutcome::Overflow
        );
        // Draining through a long gap releases everything in order.
        assert_eq!(
            f.accept(2, 400),
            AcceptOutcome::Delivered(400),
            "parked times are earlier, so the gap fill dominates"
        );
        assert_eq!(f.next_expected, 3 + REORDER_BUFFER_CAP as u64);
        assert!(f.reorder_buf.is_empty());
    }

    #[test]
    fn traffic_merge_adds_counters() {
        let mut a = net();
        let mut b = net();
        a.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        b.send(0, NodeId(0), NodeId(1), MsgKind::Inval);
        b.send(0, NodeId(0), NodeId(1), MsgKind::Retry);
        let mut t = a.traffic().clone();
        t.merge(b.traffic());
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.invalidations(), 1);
        assert_eq!(t.class(MsgClass::Other).messages, 1);
        assert_eq!(t.kind_count(MsgKind::ReadReq), 1);
        assert_eq!(t.kind_count(MsgKind::Inval), 1);
    }
}
