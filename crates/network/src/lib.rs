//! Point-to-point interconnection network model.
//!
//! §4.2: "The processor nodes are connected in a point-to-point network with
//! a fixed delay. Contention is accurately modeled in the network."
//!
//! Model: every node has a network interface (NI) that injects messages
//! serially. A message occupies the sender's NI for `size_bytes /
//! LINK_BYTES_PER_CYCLE` cycles (minimum 1) and then travels for the fixed
//! `net` traversal delay; the receiving controller adds its `mc` occupancy
//! (charged by the latency model at the endpoint). Contention therefore
//! appears as queueing delay at busy NIs. Intra-node "messages" (home ==
//! requester) bypass the network entirely and are not counted as traffic.
//!
//! All traffic counters live here, split by [`MsgKind`] and by the paper's
//! read/write/other [`MsgClass`] categories.

use ccsim_types::{FaultConfig, LatencyConfig, MsgClass, MsgKind, NodeId, Topology};
use ccsim_util::{FromJson, FxHashMap, Json, ToJson, Xoshiro256pp};

/// Injection bandwidth of a network interface (bytes per cycle).
pub const LINK_BYTES_PER_CYCLE: u64 = 8;

/// Per-class message and byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    pub messages: u64,
    pub bytes: u64,
}

/// Network traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    read: ClassCounters,
    write: ClassCounters,
    other: ClassCounters,
    invalidations: u64,
    by_kind: std::collections::BTreeMap<&'static str, u64>,
}

impl Traffic {
    fn class_mut(&mut self, c: MsgClass) -> &mut ClassCounters {
        match c {
            MsgClass::Read => &mut self.read,
            MsgClass::Write => &mut self.write,
            MsgClass::Other => &mut self.other,
        }
    }

    /// Counters for one class.
    pub fn class(&self, c: MsgClass) -> ClassCounters {
        match c {
            MsgClass::Read => self.read,
            MsgClass::Write => self.write,
            MsgClass::Other => self.other,
        }
    }

    /// Total messages across classes.
    pub fn total_messages(&self) -> u64 {
        self.read.messages + self.write.messages + self.other.messages
    }

    /// Total bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.read.bytes + self.write.bytes + self.other.bytes
    }

    /// Home-to-sharer invalidation messages (Figure 5's "Invalidations").
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Count of one message kind (diagnostics).
    pub fn kind_count(&self, kind: MsgKind) -> u64 {
        *self.by_kind.get(kind_name(kind)).unwrap_or(&0)
    }

    fn record(&mut self, kind: MsgKind, block_bytes: u64) {
        let c = self.class_mut(kind.class());
        c.messages += 1;
        c.bytes += kind.size_bytes(block_bytes);
        if kind.is_invalidation() {
            self.invalidations += 1;
        }
        *self.by_kind.entry(kind_name(kind)).or_insert(0) += 1;
    }

    /// Merge another traffic tally into this one.
    pub fn merge(&mut self, other: &Traffic) {
        for c in MsgClass::ALL {
            let o = other.class(c);
            let m = self.class_mut(c);
            m.messages += o.messages;
            m.bytes += o.bytes;
        }
        self.invalidations += other.invalidations;
        for (k, v) in &other.by_kind {
            *self.by_kind.entry(k).or_insert(0) += v;
        }
    }
}

impl ToJson for ClassCounters {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("messages", self.messages.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for ClassCounters {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ClassCounters {
            messages: j.field("messages")?,
            bytes: j.field("bytes")?,
        })
    }
}

impl ToJson for Traffic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("read", self.read.to_json()),
            ("write", self.write.to_json()),
            ("other", self.other.to_json()),
            ("invalidations", self.invalidations.to_json()),
            (
                "by_kind",
                Json::Obj(
                    self.by_kind
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Traffic {
    fn from_json(j: &Json) -> Result<Self, String> {
        let mut by_kind = std::collections::BTreeMap::new();
        for (k, v) in j.req("by_kind")?.as_obj()? {
            let name = intern_kind_name(k)
                .ok_or_else(|| format!("unknown message kind `{k}` in traffic"))?;
            by_kind.insert(name, v.as_u64()?);
        }
        Ok(Traffic {
            read: j.field("read")?,
            write: j.field("write")?,
            other: j.field("other")?,
            invalidations: j.field("invalidations")?,
            by_kind,
        })
    }
}

/// Map a decoded kind name back onto the `'static` key [`Traffic::by_kind`]
/// uses internally. `None` for names no [`MsgKind`] produces — a decode of
/// such data fails loudly rather than dropping counters.
fn intern_kind_name(s: &str) -> Option<&'static str> {
    use MsgKind::*;
    const ALL: [MsgKind; 18] = [
        ReadReq,
        ReadReply,
        ReadExclReply,
        ReadForward,
        OwnerReply,
        SharingWriteback,
        UpgradeReq,
        UpgradeAck,
        WriteMissReq,
        WriteMissReply,
        WriteForward,
        OwnerWriteReply,
        Inval,
        InvalAck,
        ReplWriteback,
        ReplHint,
        NotLs,
        Retry,
    ];
    ALL.into_iter().map(kind_name).find(|&n| n == s)
}

fn kind_name(kind: MsgKind) -> &'static str {
    use MsgKind::*;
    match kind {
        ReadReq => "ReadReq",
        ReadReply => "ReadReply",
        ReadExclReply => "ReadExclReply",
        ReadForward => "ReadForward",
        OwnerReply => "OwnerReply",
        SharingWriteback => "SharingWriteback",
        UpgradeReq => "UpgradeReq",
        UpgradeAck => "UpgradeAck",
        WriteMissReq => "WriteMissReq",
        WriteMissReply => "WriteMissReply",
        WriteForward => "WriteForward",
        OwnerWriteReply => "OwnerWriteReply",
        Inval => "Inval",
        InvalAck => "InvalAck",
        ReplWriteback => "ReplWriteback",
        ReplHint => "ReplHint",
        NotLs => "NotLs",
        Retry => "Retry",
    }
}

/// Outcome of a fallible request delivery under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The request arrived; the value is its arrival time at the receiver.
    Delivered(u64),
    /// The receiver NACKed the request and bounced a [`MsgKind::Retry`]
    /// back; the value is the time the NACK reaches the original sender,
    /// who must re-issue (with backoff).
    Nacked(u64),
}

/// Counters describing what a fault plan actually did (diagnostics; not
/// part of serialized run statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests NACKed by the injector.
    pub nacks: u64,
    /// NACK streaks cut short by the forced-delivery bound.
    pub forced_deliveries: u64,
    /// Messages hit by a delay spike.
    pub delay_spikes: u64,
    /// Total extra cycles added by delay spikes.
    pub delay_cycles: u64,
}

/// After this many consecutive NACKs the injector delivers unconditionally,
/// so retry loops are guaranteed to terminate under any plan.
const MAX_CONSECUTIVE_NACKS: u32 = 8;

/// Seeded fault injector: a private xoshiro256++ stream rolled once per
/// fault opportunity, in the deterministic order the (serialized) engine
/// calls into the network. Same plan + same workload = same faults.
struct FaultPlan {
    cfg: FaultConfig,
    rng: Xoshiro256pp,
    consecutive_nacks: u32,
    stats: FaultStats,
}

impl FaultPlan {
    fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: Xoshiro256pp::seed_from_u64(cfg.seed),
            consecutive_nacks: 0,
            stats: FaultStats::default(),
        }
    }

    /// Should the next request be NACKed? Consumes randomness only when the
    /// NACK class is enabled, so a delay-only plan's stream is unaffected.
    fn roll_nack(&mut self) -> bool {
        if self.cfg.nack_per_mille == 0 {
            return false;
        }
        if self.consecutive_nacks >= MAX_CONSECUTIVE_NACKS {
            self.consecutive_nacks = 0;
            self.stats.forced_deliveries += 1;
            return false;
        }
        if self.rng.below(1000) < self.cfg.nack_per_mille as u64 {
            self.consecutive_nacks += 1;
            self.stats.nacks += 1;
            true
        } else {
            self.consecutive_nacks = 0;
            false
        }
    }

    /// Extra delivery delay for the next timed message (0 = no spike).
    fn roll_spike(&mut self) -> u64 {
        if self.cfg.delay_per_mille == 0 {
            return 0;
        }
        if self.rng.below(1000) < self.cfg.delay_per_mille as u64 {
            let d = 1 + self.rng.below(self.cfg.max_delay_cycles);
            self.stats.delay_spikes += 1;
            self.stats.delay_cycles += d;
            d
        } else {
            0
        }
    }
}

/// The interconnect: topology-routed links with per-NI and per-link
/// queueing.
pub struct Network {
    latency: LatencyConfig,
    block_bytes: u64,
    topology: Topology,
    /// Cycle until which each node's NI is busy injecting.
    ni_busy_until: Vec<u64>,
    /// Cycle until which each directed link is busy (mesh contention).
    /// Deterministically hashed: a `RandomState` map here would not change
    /// timing (lookups are per-link), but it is exactly the kind of latent
    /// iteration-order hazard `ccsim lint` bans workspace-wide.
    link_busy_until: FxHashMap<(NodeId, NodeId), u64>,
    traffic: Traffic,
    /// Fault injector; `None` when the plan is disabled, in which case no
    /// randomness is ever consumed and timing is exactly the fault-free
    /// model.
    faults: Option<FaultPlan>,
}

impl Network {
    pub fn new(nodes: u16, latency: LatencyConfig, block_bytes: u64) -> Self {
        Self::with_topology(nodes, latency, block_bytes, Topology::PointToPoint)
    }

    pub fn with_topology(
        nodes: u16,
        latency: LatencyConfig,
        block_bytes: u64,
        topology: Topology,
    ) -> Self {
        Self::try_with_topology(nodes, latency, block_bytes, topology)
            .unwrap_or_else(|e| panic!("invalid topology: {e}"))
    }

    /// Fallible constructor: returns a description of the problem instead
    /// of panicking on an invalid topology, so front ends can print a clean
    /// error.
    pub fn try_with_topology(
        nodes: u16,
        latency: LatencyConfig,
        block_bytes: u64,
        topology: Topology,
    ) -> Result<Self, String> {
        topology.validate(nodes)?;
        Ok(Network {
            latency,
            block_bytes,
            topology,
            ni_busy_until: vec![0; nodes as usize],
            link_busy_until: FxHashMap::default(),
            traffic: Traffic::default(),
            faults: None,
        })
    }

    /// Arm deterministic fault injection. A disabled plan (all-zero rates)
    /// is ignored, keeping the fault-free fast path bit-identical.
    pub fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = if cfg.enabled() {
            Some(FaultPlan::new(cfg))
        } else {
            None
        };
    }

    /// What the fault injector has done so far (zeroes when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Send one message at simulated time `now`; returns its arrival time at
    /// the destination NI (before the receiving controller's `mc` occupancy,
    /// which the latency model charges separately).
    ///
    /// Cut-through model: the message's own serialization overlaps its
    /// traversal (arrival = injection start + `net`), but it occupies the
    /// sender's NI for its full serialization time, delaying later messages
    /// — that queueing is where contention shows up.
    ///
    /// Intra-node transfers (`from == to`) are free and uncounted.
    pub fn send(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> u64 {
        if from == to {
            return now;
        }
        self.traffic.record(kind, self.block_bytes);
        let occupancy = (kind.size_bytes(self.block_bytes) / LINK_BYTES_PER_CYCLE).max(1);
        let ni = &mut self.ni_busy_until[from.idx()];
        let mut t = (*ni).max(now);
        *ni = t + occupancy;
        // Traverse the route, booking each link (wormhole cut-through: the
        // header advances one `net` delay per link; the body's occupancy
        // trails behind and is what later messages queue on).
        for link in self.topology.route(from, to) {
            let busy = self.link_busy_until.entry(link).or_insert(0);
            let start = (*busy).max(t);
            *busy = start + occupancy;
            t = start + self.latency.net;
        }
        if let Some(f) = &mut self.faults {
            t += f.roll_spike();
        }
        t
    }

    /// Send a coherence *request* that the fault injector may NACK.
    ///
    /// A NACKed request still travels to the receiver (and is counted as
    /// traffic) but is refused there; a [`MsgKind::Retry`] bounce is sent
    /// back, and the returned [`Delivery::Nacked`] time is when that bounce
    /// reaches the sender. Intra-node requests are never NACKed (they do
    /// not enter the network). Without an armed fault plan this is exactly
    /// [`Network::send`].
    pub fn send_request(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> Delivery {
        if from == to {
            return Delivery::Delivered(now);
        }
        let nack = match &mut self.faults {
            Some(f) => f.roll_nack(),
            None => false,
        };
        let arrive = self.send(now, from, to, kind);
        if nack {
            let back = self.send(arrive, to, from, MsgKind::Retry);
            Delivery::Nacked(back)
        } else {
            Delivery::Delivered(arrive)
        }
    }

    /// Account a message without modeling its timing (used for messages that
    /// travel in parallel with the critical path, e.g. sharing writebacks,
    /// or fire-and-forget hints).
    pub fn send_background(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) {
        if from == to {
            return;
        }
        self.traffic.record(kind, self.block_bytes);
        // Background messages still occupy the sender's NI.
        let occupancy = (kind.size_bytes(self.block_bytes) / LINK_BYTES_PER_CYCLE).max(1);
        let ni = &mut self.ni_busy_until[from.idx()];
        let start = (*ni).max(now);
        *ni = start + occupancy;
    }

    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Earliest cycle at which `node`'s NI is free (diagnostics).
    pub fn ni_free_at(&self, node: NodeId) -> u64 {
        self.ni_busy_until[node.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(4, LatencyConfig::default(), 16)
    }

    #[test]
    fn intra_node_send_is_free_and_uncounted() {
        let mut n = net();
        let t = n.send(100, NodeId(1), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 100);
        assert_eq!(n.traffic().total_messages(), 0);
    }

    #[test]
    fn remote_send_takes_traversal_delay() {
        let mut n = net();
        // Cut-through: arrival = injection + 40-cycle traversal.
        let t = n.send(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 100 + 40);
        assert_eq!(n.traffic().total_messages(), 1);
        assert_eq!(n.traffic().class(MsgClass::Read).messages, 1);
        assert_eq!(n.traffic().class(MsgClass::Read).bytes, 8);
    }

    #[test]
    fn data_messages_occupy_the_ni_longer() {
        let mut n = net();
        // 8 + 16 bytes = 3 cycles occupancy; own arrival still now + net.
        let t = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply);
        assert_eq!(t, 40);
        assert_eq!(n.ni_free_at(NodeId(0)), 3);
        assert_eq!(n.traffic().class(MsgClass::Read).bytes, 24);
    }

    #[test]
    fn contention_queues_at_the_sender_ni() {
        let mut n = net();
        let t1 = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply); // NI busy [0,3)
        let t2 = n.send(0, NodeId(0), NodeId(2), MsgKind::ReadReq); // queued behind
        assert_eq!(t1, 40);
        assert_eq!(t2, 3 + 40);
        // A different node's NI is unaffected.
        let t3 = n.send(0, NodeId(3), NodeId(0), MsgKind::ReadReq);
        assert_eq!(t3, 40);
    }

    #[test]
    fn idle_ni_does_not_queue() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        // Much later, no queueing.
        let t = n.send(1000, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 1040);
    }

    #[test]
    fn invalidations_counted_separately() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::Inval);
        n.send(0, NodeId(0), NodeId(2), MsgKind::Inval);
        n.send(0, NodeId(1), NodeId(0), MsgKind::InvalAck);
        assert_eq!(n.traffic().invalidations(), 2);
        assert_eq!(n.traffic().class(MsgClass::Write).messages, 3);
    }

    #[test]
    fn background_sends_counted_but_untimed() {
        let mut n = net();
        n.send_background(0, NodeId(0), NodeId(1), MsgKind::SharingWriteback);
        assert_eq!(n.traffic().total_messages(), 1);
        // It still occupies the NI.
        assert!(n.ni_free_at(NodeId(0)) > 0);
        // Intra-node background is free.
        n.send_background(0, NodeId(2), NodeId(2), MsgKind::ReplHint);
        assert_eq!(n.traffic().total_messages(), 1);
    }

    #[test]
    fn mesh_distance_costs_hops() {
        // 4x1 mesh (a line): 0-1-2-3.
        let mut n = Network::with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 4 },
        );
        let t1 = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t1, 40, "one hop");
        let t3 = n.send(1000, NodeId(0), NodeId(3), MsgKind::ReadReq);
        assert_eq!(t3, 1000 + 3 * 40, "three hops");
    }

    #[test]
    fn mesh_links_contend_independently() {
        let mut n = Network::with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 4 },
        );
        // A long message 1->2 occupies link (1,2).
        n.send(0, NodeId(1), NodeId(2), MsgKind::ReadReply); // occupancy 3
                                                             // A message 0->3 must cross (1,2) and queues behind it there.
        let t = n.send(0, NodeId(0), NodeId(3), MsgKind::ReadReq);
        // Link (0,1): start 0, arrive 40. Link (1,2): busy until 3 but we
        // arrive at 40 anyway -> 80. Link (2,3): -> 120.
        assert_eq!(t, 120);
        // Now saturate (1,2) far into the future and observe queueing.
        for _ in 0..50 {
            n.send(200, NodeId(1), NodeId(2), MsgKind::ReadReply);
        }
        let t2 = n.send(200, NodeId(0), NodeId(3), MsgKind::ReadReq);
        assert!(t2 > 200 + 120, "congested middle link must delay the route");
    }

    #[test]
    fn traffic_json_round_trips() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReply);
        n.send(0, NodeId(0), NodeId(2), MsgKind::Inval);
        n.send_background(0, NodeId(1), NodeId(0), MsgKind::SharingWriteback);
        let t = n.traffic().clone();
        let back = Traffic::from_json(&Json::parse(&t.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, t);
        // Unknown kinds must fail the decode, not vanish.
        let mut j = t.to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "by_kind" {
                    *v = Json::obj(vec![("Bogus", Json::U64(1))]);
                }
            }
        }
        assert!(Traffic::from_json(&j).is_err());
    }

    #[test]
    fn try_with_topology_reports_bad_shapes() {
        let err = Network::try_with_topology(
            5,
            LatencyConfig::default(),
            16,
            Topology::Mesh2D { width: 3 },
        );
        assert!(err.is_err(), "5 nodes cannot fill a width-3 mesh");
        assert!(Network::try_with_topology(
            4,
            LatencyConfig::default(),
            16,
            Topology::PointToPoint
        )
        .is_ok());
    }

    fn fault_cfg(nack: u16, delay: u16, max_delay: u64) -> FaultConfig {
        FaultConfig {
            nack_per_mille: nack,
            delay_per_mille: delay,
            max_delay_cycles: max_delay,
            seed: 0xFA17,
        }
    }

    #[test]
    fn send_request_without_faults_matches_send() {
        let mut a = net();
        let mut b = net();
        let d = a.send_request(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let t = b.send(100, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(d, Delivery::Delivered(t));
        assert_eq!(a.traffic(), b.traffic());
        assert_eq!(a.fault_stats(), FaultStats::default());
    }

    #[test]
    fn certain_nacks_bounce_with_retry_traffic() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let d = n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        let Delivery::Nacked(back) = d else {
            panic!("rate-1000 plan must NACK, got {d:?}");
        };
        // Request hop + Retry hop, both real traversals.
        assert_eq!(back, 2 * 40);
        assert_eq!(n.traffic().kind_count(MsgKind::ReadReq), 1);
        assert_eq!(n.traffic().kind_count(MsgKind::Retry), 1);
        assert_eq!(n.fault_stats().nacks, 1);
    }

    #[test]
    fn nack_streaks_are_bounded_for_forward_progress() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let mut delivered = false;
        for i in 0..=MAX_CONSECUTIVE_NACKS {
            match n.send_request(0, NodeId(0), NodeId(1), MsgKind::ReadReq) {
                Delivery::Delivered(_) => {
                    assert_eq!(i, MAX_CONSECUTIVE_NACKS, "forced delivery ends the streak");
                    delivered = true;
                }
                Delivery::Nacked(_) => assert!(i < MAX_CONSECUTIVE_NACKS),
            }
        }
        assert!(delivered);
        assert_eq!(n.fault_stats().forced_deliveries, 1);
    }

    #[test]
    fn nacked_requests_never_skip_intra_node() {
        let mut n = net();
        n.install_faults(fault_cfg(1000, 0, 0));
        let d = n.send_request(7, NodeId(2), NodeId(2), MsgKind::ReadReq);
        assert_eq!(d, Delivery::Delivered(7));
        assert_eq!(n.fault_stats().nacks, 0);
    }

    #[test]
    fn delay_spikes_stretch_arrival_deterministically() {
        let mut a = net();
        a.install_faults(fault_cfg(0, 1000, 25));
        let t = a.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert!(t > 40 && t <= 40 + 25, "spiked arrival out of range: {t}");
        assert_eq!(a.fault_stats().delay_spikes, 1);
        assert_eq!(a.fault_stats().delay_cycles, t - 40);
        // Same plan, same calls => identical timing.
        let mut b = net();
        b.install_faults(fault_cfg(0, 1000, 25));
        assert_eq!(b.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq), t);
    }

    #[test]
    fn disabled_plan_is_not_armed() {
        let mut n = net();
        n.install_faults(FaultConfig::default());
        let t = n.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        assert_eq!(t, 40);
        assert_eq!(n.fault_stats(), FaultStats::default());
    }

    #[test]
    fn traffic_merge_adds_counters() {
        let mut a = net();
        let mut b = net();
        a.send(0, NodeId(0), NodeId(1), MsgKind::ReadReq);
        b.send(0, NodeId(0), NodeId(1), MsgKind::Inval);
        b.send(0, NodeId(0), NodeId(1), MsgKind::Retry);
        let mut t = a.traffic().clone();
        t.merge(b.traffic());
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.invalidations(), 1);
        assert_eq!(t.class(MsgClass::Other).messages, 1);
        assert_eq!(t.kind_count(MsgKind::ReadReq), 1);
        assert_eq!(t.kind_count(MsgKind::Inval), 1);
    }
}
