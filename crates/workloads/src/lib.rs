//! The four benchmark workloads of the paper's evaluation (§4.1), re-built
//! as real parallel programs on simulated shared memory.
//!
//! | Paper workload | Here | Dominant sharing behaviour |
//! |---|---|---|
//! | MP3D (SPLASH), 10k particles, 10 steps | [`mp3d`] | migratory read-modify-writes of space cells |
//! | Cholesky (SPLASH-2), tk15.0 | [`cholesky`] | non-migratory load-store sequences broken by capacity evictions; task-queue migration grows with P |
//! | LU (SPLASH-2), 256×256 | [`lu`] | per-owner load-store sequences + false sharing at block borders |
//! | OLTP: MySQL/TPC-B on SparcLinux | [`oltp`] | diverse: migratory locks, writes to read-shared metadata, huge working set |
//!
//! Each workload exposes a parameter struct with `paper()` (the sizes used
//! in the paper, where feasible) and `quick()` (scaled for unit tests)
//! constructors, plus a `build` function that lays out simulated memory and
//! spawns one program per processor into a [`SimBuilder`].
//!
//! [`run_spec`] is the single entry point the benchmark harness uses.

pub mod cholesky;
pub mod lu;
pub mod mp3d;
pub mod oltp;

use ccsim_engine::{EventLog, RunStats, SimBuilder, Trace};
use ccsim_types::MachineConfig;
use ccsim_util::{FromJson, Json, ToJson};

/// A workload selection with parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Spec {
    Mp3d(mp3d::Mp3dParams),
    Lu(lu::LuParams),
    Cholesky(cholesky::CholeskyParams),
    Oltp(oltp::OltpParams),
}

impl Spec {
    pub fn name(&self) -> &'static str {
        match self {
            Spec::Mp3d(_) => "MP3D",
            Spec::Lu(_) => "LU",
            Spec::Cholesky(_) => "Cholesky",
            Spec::Oltp(_) => "OLTP",
        }
    }
}

impl ToJson for Spec {
    fn to_json(&self) -> Json {
        let params = match self {
            Spec::Mp3d(p) => p.to_json(),
            Spec::Lu(p) => p.to_json(),
            Spec::Cholesky(p) => p.to_json(),
            Spec::Oltp(p) => p.to_json(),
        };
        Json::obj(vec![
            ("workload", self.name().to_json()),
            ("params", params),
        ])
    }
}

impl FromJson for Spec {
    fn from_json(j: &Json) -> Result<Self, String> {
        let params = j.req("params")?;
        match j.field::<String>("workload")?.as_str() {
            "MP3D" => Ok(Spec::Mp3d(FromJson::from_json(params)?)),
            "LU" => Ok(Spec::Lu(FromJson::from_json(params)?)),
            "Cholesky" => Ok(Spec::Cholesky(FromJson::from_json(params)?)),
            "OLTP" => Ok(Spec::Oltp(FromJson::from_json(params)?)),
            other => Err(format!("unknown workload `{other}`")),
        }
    }
}

impl ToJson for mp3d::Mp3dParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("particles", self.particles.to_json()),
            ("steps", self.steps.to_json()),
            ("cells", self.cells.to_json()),
            ("procs", self.procs.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for mp3d::Mp3dParams {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(mp3d::Mp3dParams {
            particles: j.field("particles")?,
            steps: j.field("steps")?,
            cells: j.field("cells")?,
            procs: j.field("procs")?,
            seed: j.field("seed")?,
        })
    }
}

impl ToJson for lu::LuParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("n", self.n.to_json()),
            ("block", self.block.to_json()),
            ("procs", self.procs.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for lu::LuParams {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(lu::LuParams {
            n: j.field("n")?,
            block: j.field("block")?,
            procs: j.field("procs")?,
            seed: j.field("seed")?,
        })
    }
}

impl ToJson for cholesky::CholeskyParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cols", self.cols.to_json()),
            ("col_words", self.col_words.to_json()),
            ("waves", self.waves.to_json()),
            ("procs", self.procs.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for cholesky::CholeskyParams {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(cholesky::CholeskyParams {
            cols: j.field("cols")?,
            col_words: j.field("col_words")?,
            waves: j.field("waves")?,
            procs: j.field("procs")?,
            seed: j.field("seed")?,
        })
    }
}

impl ToJson for oltp::OltpParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("branches", self.branches.to_json()),
            ("accounts", self.accounts.to_json()),
            ("index_words", self.index_words.to_json()),
            ("txns_per_proc", self.txns_per_proc.to_json()),
            ("procs", self.procs.to_json()),
            ("seed", self.seed.to_json()),
            ("static_hints", self.static_hints.to_json()),
        ])
    }
}

impl FromJson for oltp::OltpParams {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(oltp::OltpParams {
            branches: j.field("branches")?,
            accounts: j.field("accounts")?,
            index_words: j.field("index_words")?,
            txns_per_proc: j.field("txns_per_proc")?,
            procs: j.field("procs")?,
            seed: j.field("seed")?,
            static_hints: j.field("static_hints")?,
        })
    }
}

/// Build and run one workload on one machine configuration.
pub fn run_spec(cfg: MachineConfig, spec: &Spec) -> RunStats {
    let mut b = SimBuilder::new(cfg);
    match spec {
        Spec::Mp3d(p) => mp3d::build(&mut b, p),
        Spec::Lu(p) => {
            lu::build(&mut b, p);
        }
        Spec::Cholesky(p) => {
            cholesky::build(&mut b, p);
        }
        Spec::Oltp(p) => {
            oltp::build(&mut b, p);
        }
    }
    b.run()
}

/// Like [`run_spec`], but also capture the executed access stream — the
/// input of the static trace analyzer (`ccsim analyze`).
pub fn capture_spec(cfg: MachineConfig, spec: &Spec) -> (RunStats, Trace) {
    let mut b = SimBuilder::new(cfg);
    b.capture_trace();
    match spec {
        Spec::Mp3d(p) => mp3d::build(&mut b, p),
        Spec::Lu(p) => {
            lu::build(&mut b, p);
        }
        Spec::Cholesky(p) => {
            cholesky::build(&mut b, p);
        }
        Spec::Oltp(p) => {
            oltp::build(&mut b, p);
        }
    }
    let mut done = b.run_full();
    let trace = done
        .take_trace()
        // ccsim-lint: allow(unwrap): capture_trace() was called four lines up
        .expect("trace capture was enabled");
    (done.stats, trace)
}

/// Like [`run_spec`], but also capture the coherence event log — the input
/// of the happens-before / SC-conformance analyzer (`ccsim race`).
pub fn capture_events_spec(cfg: MachineConfig, spec: &Spec) -> (RunStats, EventLog) {
    let mut b = SimBuilder::new(cfg);
    b.capture_events();
    match spec {
        Spec::Mp3d(p) => mp3d::build(&mut b, p),
        Spec::Lu(p) => {
            lu::build(&mut b, p);
        }
        Spec::Cholesky(p) => {
            cholesky::build(&mut b, p);
        }
        Spec::Oltp(p) => {
            oltp::build(&mut b, p);
        }
    }
    let mut done = b.run_full();
    let log = done
        .take_event_log()
        // ccsim-lint: allow(unwrap): capture_events() was called four lines up
        .expect("event capture was enabled");
    (done.stats, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::ProtocolKind;

    #[test]
    fn spec_names_are_the_paper_labels() {
        assert_eq!(Spec::Mp3d(mp3d::Mp3dParams::quick()).name(), "MP3D");
        assert_eq!(Spec::Lu(lu::LuParams::quick()).name(), "LU");
        assert_eq!(
            Spec::Cholesky(cholesky::CholeskyParams::quick()).name(),
            "Cholesky"
        );
        assert_eq!(Spec::Oltp(oltp::OltpParams::quick()).name(), "OLTP");
    }

    #[test]
    fn run_spec_drives_every_workload() {
        // Minimal sizes: this is a plumbing test, not a performance run.
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let mut mp = mp3d::Mp3dParams::quick();
        mp.particles = 40;
        mp.steps = 1;
        let s = run_spec(cfg, &Spec::Mp3d(mp));
        assert!(s.exec_cycles > 0);
        assert_eq!(s.protocol, ProtocolKind::Ls);

        let mut ch = cholesky::CholeskyParams::quick();
        ch.cols = 8;
        ch.col_words = 16;
        ch.waves = 1;
        let s = run_spec(cfg, &Spec::Cholesky(ch));
        assert!(s.dir.global_reads > 0);
    }

    #[test]
    fn paper_params_match_section_4_1() {
        // "MP3D was run for 10 time steps with 10 k particles"
        let p = mp3d::Mp3dParams::paper();
        assert_eq!(p.particles, 10_000);
        assert_eq!(p.steps, 10);
        // "LU with a 256x256 matrix" (full variant; default is reduced).
        assert_eq!(lu::LuParams::paper_full().n, 256);
        // OLTP: "TPC-B benchmark with 40 branches".
        assert_eq!(oltp::OltpParams::paper().branches, 40);
        // Cholesky scaling runs preserve the problem across processor
        // counts (Figure 5).
        let c4 = cholesky::CholeskyParams::paper_scaled(4);
        let c32 = cholesky::CholeskyParams::paper_scaled(32);
        assert_eq!(c4.cols, c32.cols);
        assert_eq!(c4.col_words, c32.col_words);
        assert_eq!(c32.procs, 32);
    }
}
