//! MP3D: particle-based hypersonic wind-tunnel simulation (SPLASH).
//!
//! Gupta & Weber identified MP3D as the canonical *migratory-sharing*
//! workload: every particle move performs a read-modify-write of the space
//! cell it lands in, and because particles owned by different processors
//! stream through the same cells, cell blocks migrate processor-to-processor
//! — single-invalidation ownership traffic that both AD and LS attack.
//!
//! Faithful structural properties kept here:
//!
//! * particles are statically partitioned over processors; their state
//!   arrays are large enough to overflow the 64 kB L2 (capacity misses on
//!   "private" data, which weaken AD's two-copy detection exactly as §5.1
//!   describes);
//! * space cells are a shared array of 2-word cells (count, energy), one
//!   coherence block per cell at the 16-byte baseline block size, updated
//!   with plain unlocked read-modify-writes like the original program;
//! * a global reservoir counter absorbs boundary collisions (light
//!   contention), and a per-step barrier separates time steps.

use ccsim_engine::SimBuilder;
use ccsim_sync::{Barrier, BarrierSense};
use ccsim_types::{Addr, SimRng};

/// MP3D sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mp3dParams {
    /// Total particles (the paper runs 10 000).
    pub particles: u64,
    /// Time steps (the paper runs 10).
    pub steps: u64,
    /// Space cells (shared array).
    pub cells: u64,
    /// Processors to use (≤ machine nodes).
    pub procs: u16,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Mp3dParams {
    /// The paper's configuration: 10k particles, 10 steps.
    pub fn paper() -> Self {
        Mp3dParams {
            particles: 10_000,
            steps: 10,
            cells: 4096,
            procs: 4,
            seed: 0x4D50_3344,
        }
    }

    /// Scaled down for unit tests.
    pub fn quick() -> Self {
        Mp3dParams {
            particles: 400,
            steps: 3,
            cells: 256,
            procs: 4,
            seed: 0x4D50_3344,
        }
    }
}

/// Per-particle state: 4 words (x, v, flags, pad) — 32 bytes, two 16-byte
/// blocks, so particle sweeps stream through the private arrays.
const PARTICLE_WORDS: u64 = 4;
/// Per-cell state: 2 words (population count, energy) — one 16-byte block.
const CELL_WORDS: u64 = 2;

/// Lay out MP3D and spawn one program per processor.
pub fn build(b: &mut SimBuilder, params: &Mp3dParams) {
    let procs = params.procs;
    assert!(procs > 0);
    let bb = b.alloc().high_water(); // keep allocator borrow short
    let _ = bb;
    let block = 16u64;

    // Shared space cells (interleaved across homes by page round-robin).
    let cells_base = b.alloc().alloc(params.cells * CELL_WORDS * 8, block);
    // Global reservoir counter on its own block.
    let reservoir = b.alloc().alloc_padded(8, 64);
    // Per-processor particle slabs.
    let per_proc = params.particles / procs as u64;
    let mut slabs = Vec::new();
    for _ in 0..procs {
        slabs.push(b.alloc().alloc(per_proc * PARTICLE_WORDS * 8, block));
    }
    let bar = Barrier::new(b.alloc(), 64, procs as u64);

    // Seed particle positions.
    let mut rng = SimRng::seed_from_u64(params.seed);
    for slab in &slabs {
        for i in 0..per_proc {
            let p = Addr(slab.0 + i * PARTICLE_WORDS * 8);
            b.init(p, rng.below(params.cells)); // position = cell index
            b.init(p.offset(8), 1 + rng.below(7)); // velocity
        }
    }

    let cells = params.cells;
    let steps = params.steps;
    for pid in 0..procs {
        let slab = slabs[pid as usize];
        let mut prng = rng.fork(pid as u64);
        b.spawn(move |p| {
            let mut sense = BarrierSense::default();
            for _step in 0..steps {
                for i in 0..per_proc {
                    let part = Addr(slab.0 + i * PARTICLE_WORDS * 8);
                    // Advance the particle (private read-modify-write).
                    let pos = p.load(part);
                    let vel = p.load(part.offset(8));
                    p.busy(6); // move computation
                    let newpos = (pos + vel) % cells;
                    p.store(part, newpos);

                    // Enter the destination cell: the migratory RMW.
                    let cell = Addr(cells_base.0 + newpos * CELL_WORDS * 8);
                    let cnt = p.load(cell);
                    p.busy(2);
                    p.store(cell, cnt + 1);

                    // Occasional collision: update the cell energy word
                    // (same block — extends the load-store run) and, rarely,
                    // the global reservoir.
                    if prng.chance(0.35) {
                        let e = p.load(cell.offset(8));
                        p.busy(4); // collision physics
                        p.store(cell.offset(8), e ^ (vel << 1));
                    }
                    if prng.chance(0.02) {
                        p.fetch_add(reservoir, 1);
                    }
                    p.busy(3);
                }
                bar.wait(&p, &mut sense);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn run(kind: ProtocolKind) -> ccsim_engine::RunStats {
        let cfg = MachineConfig::splash_baseline(kind);
        let mut b = SimBuilder::new(cfg);
        build(&mut b, &Mp3dParams::quick());
        b.run()
    }

    #[test]
    fn completes_and_moves_all_particles() {
        let s = run(ProtocolKind::Baseline);
        // 400 particles * 3 steps cell RMWs at minimum.
        assert!(s.oracle.total().global_writes > 0);
        assert!(s.exec_cycles > 0);
    }

    #[test]
    fn exhibits_migratory_sharing() {
        let s = run(ProtocolKind::Baseline);
        let t = s.oracle.total();
        assert!(
            t.migratory_writes as f64 > 0.3 * t.ls_writes as f64,
            "MP3D should be migratory-heavy: {} of {} LS writes migrate",
            t.migratory_writes,
            t.ls_writes
        );
    }

    #[test]
    fn ls_and_ad_both_cut_write_stall() {
        let base = run(ProtocolKind::Baseline);
        let ad = run(ProtocolKind::Ad);
        let ls = run(ProtocolKind::Ls);
        assert!(ad.write_stall() < base.write_stall());
        assert!(ls.write_stall() < base.write_stall());
        assert!(
            ls.write_stall() <= ad.write_stall(),
            "LS at least matches AD on MP3D"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(ProtocolKind::Ls);
        let b = run(ProtocolKind::Ls);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
    }
}
