//! Cholesky: sparse supernodal factorization (SPLASH-2, tk15.0 input).
//!
//! §5.2 is the paper's flagship result for LS: at 4 processors Cholesky
//! performs "virtually no migration of data between the processors" — yet
//! almost every write is part of a load-store sequence, because each
//! processor's working set (its panel of columns) exceeds the 64 kB L2 and
//! is evicted between successive update waves. AD never sees its two-copy
//! migratory pattern and removes nothing; LS keeps the LS-bit at the home
//! across replacements and converts every re-fetch into an exclusive grant,
//! removing ~89 % of write-related traffic.
//!
//! At 16/32 processors the per-processor panel *fits* in the L2, so the
//! ownership requests from panel work collapse, while the central task
//! queue keeps migrating — invalidations become 16 %/29 % of the ownership
//! overhead (Figure 5), and AD closes in on LS.
//!
//! Substitute for the tk15.0 matrix (documented in DESIGN.md): a synthetic
//! supernodal structure — `cols` columns of `col_words` nonzeros, owned
//! round-robin, updated over `waves` right-looking waves, with a shared
//! elimination-structure table (read-only), a global task counter (the task
//! queue), and a per-wave logarithmic accumulation tree (the supernode
//! relay, the only genuinely migratory data at small P).

use ccsim_engine::SimBuilder;
use ccsim_sync::{Barrier, BarrierSense};
use ccsim_types::{Addr, SimRng};

/// Cholesky sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CholeskyParams {
    /// Total columns (panels are `cols / procs` columns each).
    pub cols: u64,
    /// Nonzeros (words) per column.
    pub col_words: u64,
    /// Right-looking update waves over the structure.
    pub waves: u64,
    pub procs: u16,
    pub seed: u64,
}

impl CholeskyParams {
    /// 4-processor evaluation shape: 128 columns × 4 kB ⇒ a 128 kB panel
    /// per processor, twice the 64 kB L2 — every wave re-misses.
    pub fn paper() -> Self {
        CholeskyParams {
            cols: 128,
            col_words: 512,
            waves: 6,
            procs: 4,
            seed: 0x43484F4C,
        }
    }

    /// The Figure 5 scaling runs reuse the same total problem with more
    /// processors.
    pub fn paper_scaled(procs: u16) -> Self {
        CholeskyParams {
            procs,
            ..Self::paper()
        }
    }

    pub fn quick() -> Self {
        CholeskyParams {
            cols: 16,
            col_words: 64,
            waves: 2,
            procs: 4,
            seed: 0x43484F4C,
        }
    }
}

/// Lay out Cholesky and spawn one program per processor. Returns the column
/// data base address for verification.
pub fn build(b: &mut SimBuilder, params: &CholeskyParams) -> Addr {
    let procs = params.procs as u64;
    assert!(
        procs > 0 && params.cols.is_multiple_of(procs),
        "cols must divide evenly"
    );
    let cols = params.cols;
    let cw = params.col_words;
    let waves = params.waves;

    // Column data: cols × col_words, round-robin column ownership.
    let data = b.alloc().alloc(cols * cw * 8, 16);
    // Elimination structure (read-only after init): one word per column per
    // wave, telling the update which source column feeds it.
    let etree = b.alloc().alloc(cols * waves * 8, 16);
    // Frontal-matrix constants (read-only after init): the update sources.
    // Read-shared across processors; using a constant region keeps the
    // computation race-free, so final values are identical under every
    // protocol (asserted in tests) while the coherence traffic of reading
    // another supernode's data is preserved.
    let front = b.alloc().alloc(cols * (cw / 8).max(1) * 8, 16);
    // The central task queue: a lock-protected head pointer, as in the
    // original program. At 4 processors the lock is essentially
    // uncontended; at 16/32 processors (same total work split finer)
    // spinners pile up, and every release invalidates their cached copies —
    // the growing invalidation share of Figure 5.
    let qlock = ccsim_sync::SpinLock::new(b.alloc(), 64);
    let qhead = b.alloc().alloc_padded(8, 64);
    // Task completion stamps (one word per column; written by the owner).
    let stamps = b.alloc().alloc(cols * 8, 16);
    // Per-processor accumulators for the supernode relay tree.
    let accum = b.alloc().alloc(procs * 64, 64); // 8 words each, one block per proc
    let bar = Barrier::new(b.alloc(), 64, procs);

    let mut rng = SimRng::seed_from_u64(params.seed);
    let fw = (cw / 8).max(1);
    for j in 0..cols {
        for w in 0..waves {
            b.init(Addr(etree.0 + (w * cols + j) * 8), rng.below(cols));
        }
        for i in 0..cw {
            b.init(Addr(data.0 + (j * cw + i) * 8), rng.below(1 << 20) + 1);
        }
        for i in 0..fw {
            b.init(Addr(front.0 + (j * fw + i) * 8), rng.below(1 << 20) + 1);
        }
    }

    for pid in 0..params.procs {
        b.spawn(move |p| {
            let mut sense = BarrierSense::default();
            let my_cols: Vec<u64> = (0..cols).filter(|j| j % procs == pid as u64).collect();
            for w in 0..waves {
                for &j in &my_cols {
                    // Task-queue bookkeeping: pop under the queue lock (the
                    // migratory task-queue head plus contention at scale).
                    let _ticket = qlock.with(&p, || {
                        let t = p.load(qhead);
                        p.store(qhead, t + 1);
                        t
                    });
                    // Read the elimination structure entry (read-shared).
                    let src = p.load(Addr(etree.0 + (w * cols + j) * 8)) % cols;
                    // cmod(j, src): update every nonzero of column j using
                    // the source supernode's frontal data (read-shared).
                    let mut sv = 0u64;
                    for i in 0..cw {
                        let t = Addr(data.0 + (j * cw + i) * 8);
                        if i % 8 == 0 {
                            sv = p.load(Addr(front.0 + (src * fw + i / 8) * 8));
                        }
                        let v = p.load(t);
                        p.busy(2);
                        p.store(t, v.wrapping_add(sv ^ (w + 1)));
                    }
                    // cdiv(j) completion stamp.
                    p.store(Addr(stamps.0 + j * 8), w + 1);
                    p.busy(10);
                }
                // Supernode relay: logarithmic cross-processor combine —
                // the only genuinely migratory data at small P.
                let my_acc = Addr(accum.0 + pid as u64 * 64);
                let mut level = 1u64;
                while level < procs {
                    // Publish, synchronize, then combine: race-free.
                    if (pid as u64) % (2 * level) == level {
                        let mv = p.load(my_acc);
                        p.store(my_acc, mv.wrapping_add(w + 1));
                    }
                    bar.wait(&p, &mut sense);
                    if (pid as u64).is_multiple_of(2 * level) && (pid as u64) + level < procs {
                        let partner = Addr(accum.0 + ((pid as u64) + level) * 64);
                        let pv = p.load(partner);
                        let mv = p.load(my_acc);
                        p.busy(4);
                        p.store(my_acc, mv.wrapping_add(pv | w));
                    }
                    level *= 2;
                }
                bar.wait(&p, &mut sense);
            }
        });
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::RunStats;
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn run(kind: ProtocolKind, params: &CholeskyParams) -> (RunStats, Vec<u64>) {
        let cfg = MachineConfig::splash_baseline(kind).with_nodes(params.procs);
        let mut b = SimBuilder::new(cfg);
        let base = build(&mut b, params);
        let done = b.run_full();
        let vals: Vec<u64> = (0..params.cols * params.col_words)
            .map(|i| done.peek(Addr(base.0 + i * 8)))
            .collect();
        (done.stats, vals)
    }

    #[test]
    fn results_identical_across_protocols() {
        let params = CholeskyParams::quick();
        let (_, base_vals) = run(ProtocolKind::Baseline, &params);
        let (_, ad_vals) = run(ProtocolKind::Ad, &params);
        let (_, ls_vals) = run(ProtocolKind::Ls, &params);
        assert_eq!(base_vals, ad_vals, "AD changed computation results");
        assert_eq!(base_vals, ls_vals, "LS changed computation results");
    }

    #[test]
    fn load_store_heavy_but_not_migratory_at_4_procs() {
        let (s, _) = run(ProtocolKind::Baseline, &CholeskyParams::quick());
        let t = s.oracle.total();
        assert!(t.ls_writes > 0);
        assert!(
            (t.migratory_writes as f64) < 0.2 * (t.ls_writes as f64),
            "Cholesky at 4 procs should hardly migrate: {}/{}",
            t.migratory_writes,
            t.ls_writes
        );
    }

    #[test]
    fn ls_eliminates_far_more_than_ad_at_4_procs() {
        // The paper's headline: AD removes ~nothing, LS removes most
        // write-related overhead once capacity evictions separate the
        // load-store pairs. Use a capacity-stressed quick config.
        let params = CholeskyParams {
            cols: 16,
            col_words: 1024,
            waves: 3,
            ..CholeskyParams::quick()
        };
        let (base, _) = run(ProtocolKind::Baseline, &params);
        let (ad, _) = run(ProtocolKind::Ad, &params);
        let (ls, _) = run(ProtocolKind::Ls, &params);
        let base_ws = base.write_stall() as f64;
        let ad_cut = 1.0 - ad.write_stall() as f64 / base_ws;
        let ls_cut = 1.0 - ls.write_stall() as f64 / base_ws;
        assert!(
            ls_cut > 0.5,
            "LS should remove most write stall (removed {:.0}%)",
            ls_cut * 100.0
        );
        assert!(
            ls_cut > ad_cut + 0.2,
            "LS ({:.0}%) must far exceed AD ({:.0}%)",
            ls_cut * 100.0,
            ad_cut * 100.0
        );
    }

    #[test]
    fn deterministic() {
        let params = CholeskyParams::quick();
        let (a, va) = run(ProtocolKind::Ls, &params);
        let (b, vb) = run(ProtocolKind::Ls, &params);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(va, vb);
    }
}
