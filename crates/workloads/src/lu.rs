//! LU: dense blocked LU factorization (SPLASH-2, non-contiguous layout).
//!
//! §5.3: "LU performs decompositions of dense matrices and does not contain
//! any migratory data" — yet AD removes about half the write stall because
//! **false sharing** creates an *illusion* of migratory behaviour:
//! "Different processors in turn perform load-store sequences to individual
//! parts of a memory block."
//!
//! The non-contiguous SPLASH-2 layout reproduces that exactly: the matrix is
//! one row-major n×n array of doubles (B = 16, as in SPLASH-2), factored in
//! B×B blocks with a 2-D scatter ownership — and, like the original
//! program's `malloc`-returned array, the matrix base is 8-byte aligned but
//! *not* block aligned. Every 16-double row segment therefore straddles a
//! coherence-block boundary at one end: one line in eight holds doubles
//! from two horizontally adjacent blocks, which belong to *different*
//! processors under the 2-D scatter. Their per-owner load-store sequences
//! interleave within those blocks — the incidental false sharing behind
//! the paper's "illusion of migratory behavior".
//!
//! The factorization is numerically real (f64 stored as bits); tests verify
//! `L·U` against the original matrix.

use ccsim_engine::SimBuilder;
use ccsim_sync::{Barrier, BarrierSense};
use ccsim_types::{Addr, SimRng};

/// LU sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LuParams {
    /// Matrix edge (the paper runs 256; `paper()` defaults to a 128 edge to
    /// keep simulated-instruction counts tractable — use `paper_full()` for
    /// the full size).
    pub n: u64,
    /// Block edge (SPLASH-2 uses 16; 9 maximizes boundary false sharing).
    pub block: u64,
    pub procs: u16,
    pub seed: u64,
}

impl LuParams {
    /// Default evaluation size: 128×128, B=16, 4 processors.
    pub fn paper() -> Self {
        LuParams {
            n: 128,
            block: 16,
            procs: 4,
            seed: 0x4C55,
        }
    }

    /// The paper's full 256×256 run (slower).
    pub fn paper_full() -> Self {
        LuParams {
            n: 256,
            block: 16,
            procs: 4,
            seed: 0x4C55,
        }
    }

    pub fn quick() -> Self {
        LuParams {
            n: 48,
            block: 16,
            procs: 4,
            seed: 0x4C55,
        }
    }

    fn blocks(&self) -> u64 {
        assert_eq!(
            self.n % self.block,
            0,
            "n must be a multiple of the block edge"
        );
        self.n / self.block
    }
}

fn f2u(x: f64) -> u64 {
    x.to_bits()
}
fn u2f(x: u64) -> f64 {
    f64::from_bits(x)
}

/// 2-D scatter owner of block (I,J) for P processors (pr = pc = sqrt-ish).
fn owner(i: u64, j: u64, procs: u16) -> u16 {
    let pr = (procs as f64).sqrt() as u64;
    let pr = pr.max(1);
    let pc = (procs as u64) / pr;
    ((i % pr) * pc + (j % pc)) as u16
}

/// Element address inside the row-major matrix.
fn elem(base: Addr, n: u64, r: u64, c: u64) -> Addr {
    Addr(base.0 + (r * n + c) * 8)
}

/// Build the dense matrix (diagonally dominant so no pivoting is needed,
/// like the SPLASH-2 input) and return its initial values.
pub fn make_matrix(n: u64, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut a = vec![0f64; (n * n) as usize];
    for r in 0..n {
        for c in 0..n {
            let v = (rng.below(1000) as f64) / 500.0 - 1.0;
            a[(r * n + c) as usize] = if r == c { v + 2.0 * n as f64 } else { v };
        }
    }
    a
}

/// Lay out LU and spawn one program per processor. Returns the matrix base
/// address (row-major n×n f64-bit words) for post-run verification.
pub fn build(b: &mut SimBuilder, params: &LuParams) -> Addr {
    let n = params.n;
    let nb = params.blocks();
    let bs = params.block;
    let procs = params.procs;
    // Like the original program's malloc'd array: 8-byte aligned, NOT
    // block aligned — one line in (block/8) straddles two ownership blocks.
    let base = b.alloc().alloc(n * n * 8 + 8, 16).offset(8);
    let bar = Barrier::new(b.alloc(), 64, procs as u64);

    for (idx, &v) in make_matrix(n, params.seed).iter().enumerate() {
        b.init(Addr(base.0 + idx as u64 * 8), f2u(v));
    }

    for pid in 0..procs {
        b.spawn(move |p| {
            let mut sense = BarrierSense::default();
            for k in 0..nb {
                let (kr, kc) = (k * bs, k * bs);
                // 1. Diagonal block factorization by its owner.
                if owner(k, k, procs) == pid {
                    for kk in 0..bs {
                        let piv = u2f(p.load(elem(base, n, kr + kk, kc + kk)));
                        p.busy(8);
                        for r in kk + 1..bs {
                            let a = elem(base, n, kr + r, kc + kk);
                            let l = u2f(p.load(a)) / piv;
                            p.store(a, f2u(l));
                            for c in kk + 1..bs {
                                let t = elem(base, n, kr + r, kc + c);
                                let u = u2f(p.load(elem(base, n, kr + kk, kc + c)));
                                let v = u2f(p.load(t));
                                p.busy(2);
                                p.store(t, f2u(v - l * u));
                            }
                        }
                    }
                }
                bar.wait(&p, &mut sense);

                // 2. Perimeter blocks (row k and column k) by their owners.
                for j in k + 1..nb {
                    // Row-perimeter block (k, j): solve L(k,k)·U = A.
                    if owner(k, j, procs) == pid {
                        for kk in 0..bs {
                            for r in kk + 1..bs {
                                let l = u2f(p.load(elem(base, n, kr + r, kc + kk)));
                                for c in 0..bs {
                                    let t = elem(base, n, kr + r, j * bs + c);
                                    let u = u2f(p.load(elem(base, n, kr + kk, j * bs + c)));
                                    let v = u2f(p.load(t));
                                    p.busy(2);
                                    p.store(t, f2u(v - l * u));
                                }
                            }
                        }
                    }
                    // Column-perimeter block (j, k): compute L = A·U(k,k)^-1.
                    if owner(j, k, procs) == pid {
                        for kk in 0..bs {
                            let piv = u2f(p.load(elem(base, n, kr + kk, kc + kk)));
                            for r in 0..bs {
                                let a = elem(base, n, j * bs + r, kc + kk);
                                let l = u2f(p.load(a)) / piv;
                                p.store(a, f2u(l));
                                for c in kk + 1..bs {
                                    let t = elem(base, n, j * bs + r, kc + c);
                                    let u = u2f(p.load(elem(base, n, kr + kk, kc + c)));
                                    let v = u2f(p.load(t));
                                    p.busy(2);
                                    p.store(t, f2u(v - l * u));
                                }
                            }
                        }
                    }
                }
                bar.wait(&p, &mut sense);

                // 3. Interior update: A(i,j) -= L(i,k)·U(k,j) by block owner.
                for i in k + 1..nb {
                    for j in k + 1..nb {
                        if owner(i, j, procs) != pid {
                            continue;
                        }
                        for kk in 0..bs {
                            for r in 0..bs {
                                let l = u2f(p.load(elem(base, n, i * bs + r, kc + kk)));
                                if l == 0.0 {
                                    continue;
                                }
                                for c in 0..bs {
                                    let t = elem(base, n, i * bs + r, j * bs + c);
                                    let u = u2f(p.load(elem(base, n, kr + kk, j * bs + c)));
                                    let v = u2f(p.load(t));
                                    p.busy(2);
                                    p.store(t, f2u(v - l * u));
                                }
                            }
                        }
                    }
                }
                bar.wait(&p, &mut sense);
            }
        });
    }
    base
}

/// Reference sequential blocked LU (same arithmetic) for verification.
pub fn reference_lu(a: &mut [f64], n: usize) {
    for k in 0..n {
        let piv = a[k * n + k];
        for r in k + 1..n {
            let l = a[r * n + k] / piv;
            a[r * n + k] = l;
            for c in k + 1..n {
                a[r * n + c] -= l * a[k * n + c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::{RunStats, SimBuilder};
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn run(kind: ProtocolKind, params: &LuParams) -> (RunStats, Vec<f64>) {
        let cfg = MachineConfig::splash_baseline(kind);
        let mut b = SimBuilder::new(cfg);
        let base = build(&mut b, params);
        let done = b.run_full();
        let n = params.n;
        let m: Vec<f64> = (0..n * n)
            .map(|i| done.peek_f64(ccsim_types::Addr(base.0 + i * 8)))
            .collect();
        (done.stats, m)
    }

    #[test]
    fn factors_match_reference() {
        let params = LuParams::quick();
        let n = params.n as usize;
        let mut reference = make_matrix(params.n, params.seed);
        reference_lu(&mut reference, n);
        for kind in ProtocolKind::ALL {
            let (_, got) = run(kind, &params);
            let max_err = got
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_err < 1e-9,
                "{kind:?}: parallel factorization diverged from reference by {max_err}"
            );
        }
    }

    #[test]
    fn no_migratory_data_but_false_sharing_makes_some() {
        let (s, _) = run(ProtocolKind::Baseline, &LuParams::quick());
        let t = s.oracle.total();
        assert!(t.ls_writes > 0);
        // Genuine migration is rare; whatever appears comes from false
        // sharing and barriers. It must be well below MP3D levels.
        assert!(
            (t.migratory_writes as f64) < 0.5 * t.ls_writes as f64,
            "LU should not be migratory-dominated: {}/{}",
            t.migratory_writes,
            t.ls_writes
        );
    }

    #[test]
    fn false_sharing_present_at_16_byte_blocks() {
        let (s, _) = run(ProtocolKind::Baseline, &LuParams::quick());
        assert!(
            s.false_sharing.false_sharing > 0,
            "B=9 over 16-byte lines must false-share at block borders"
        );
    }

    #[test]
    fn ls_removes_more_write_stall_than_ad() {
        let (base, _) = run(ProtocolKind::Baseline, &LuParams::quick());
        let (ad, _) = run(ProtocolKind::Ad, &LuParams::quick());
        let (ls, _) = run(ProtocolKind::Ls, &LuParams::quick());
        assert!(ls.write_stall() < base.write_stall());
        assert!(
            ls.write_stall() <= ad.write_stall(),
            "LS {} vs AD {} write stall",
            ls.write_stall(),
            ad.write_stall()
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = run(ProtocolKind::Ad, &LuParams::quick());
        let (b, _) = run(ProtocolKind::Ad, &LuParams::quick());
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.traffic.total_messages(), b.traffic.total_messages());
    }

    #[test]
    fn owner_scatter_is_balanced_for_four_procs() {
        let mut counts = [0u32; 4];
        for i in 0..8 {
            for j in 0..8 {
                counts[owner(i, j, 4) as usize] += 1;
            }
        }
        assert_eq!(counts, [16; 4], "2-D scatter must balance block ownership");
        // Horizontally adjacent blocks always differ in owner — the false
        // sharing at straddling lines is cross-processor.
        for i in 0..8 {
            for j in 0..7 {
                assert_ne!(owner(i, j, 4), owner(i, j + 1, 4));
            }
        }
    }

    #[test]
    fn matrix_is_diagonally_dominant_and_deterministic() {
        let n = 32;
        let a = make_matrix(n, 7);
        let b = make_matrix(n, 7);
        assert_eq!(a, b);
        for r in 0..n as usize {
            let diag = a[r * n as usize + r].abs();
            let off: f64 = (0..n as usize)
                .filter(|&c| c != r)
                .map(|c| a[r * n as usize + c].abs())
                .sum();
            assert!(
                diag > off,
                "row {r} not diagonally dominant: {diag} <= {off}"
            );
        }
    }

    #[test]
    fn reference_lu_reconstructs_the_matrix() {
        let n = 24usize;
        let orig = make_matrix(n as u64, 3);
        let mut f = orig.clone();
        reference_lu(&mut f, n);
        // Rebuild A = L*U and compare.
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { f[r * n + k] };
                    let u = f[k * n + c];
                    if k <= c && k <= r {
                        sum += if k == r { u } else { l * u };
                    }
                }
                let err = (sum - orig[r * n + c]).abs();
                assert!(err < 1e-8, "A[{r}][{c}] reconstruction error {err}");
            }
        }
    }

    #[test]
    fn matrix_base_is_misaligned_like_malloc() {
        let params = LuParams::quick();
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        let mut b = SimBuilder::new(cfg);
        let base = build(&mut b, &params);
        assert_eq!(base.0 % 8, 0, "word aligned");
        assert_ne!(
            base.0 % 16,
            0,
            "but NOT coherence-block aligned (the §5.3 false sharing)"
        );
    }
}
