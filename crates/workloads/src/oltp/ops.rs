//! Serve-facing transaction-class bodies over the TPC-B schema.
//!
//! The closed-loop reproduction drives [`super::transaction`], a full
//! TPC-B transaction (~10k cycles). The serve-scale traffic subsystem
//! instead mixes four smaller *transaction classes* whose proportions are
//! a config knob, so read/write-mix sweeps don't need a new workload:
//!
//! * [`point_read`] — a balance check: catalog + account + buffer-pool
//!   descriptor reads. Leaves rows read-shared across nodes — the
//!   lingering copies that defeat AD's two-copy detection (§5.4).
//! * [`read_modify_write`] — the money movement: account/teller
//!   fetch-adds plus the branch critical section with its history append.
//!   Under zipfian skew this is the hot-row ownership-transfer path.
//! * [`scan`] — a read-only index traversal over a region ≫ L2
//!   (capacity misses on shared data).
//! * [`append`] — WAL/history append: pure-store streams, global writes
//!   outside any load-store sequence.
//!
//! Each body is deterministic given its inputs and advances simulated time
//! through `Proc::busy`, so service time (and therefore queueing) is in
//! simulated cycles end to end.

use ccsim_engine::{Component, Proc};
use ccsim_types::Addr;

use super::layout::DbLayout;

/// Host-side inputs of one serve transaction, drawn from the per-client
/// stream (see `ccsim-serve`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpInputs {
    /// Target account row (the zipf-hot key for point/RMW classes).
    pub account: u64,
    /// Branch the account belongs to.
    pub branch: u64,
    /// Teller offset within the branch (0..10).
    pub teller_off: u64,
    /// Transfer amount.
    pub amount: u64,
    /// Secondary read-only probe account.
    pub probe: u64,
    /// Index words touched by the scan class.
    pub idx: [u64; 8],
}

/// Balance check: parse, catalog, account + descriptor + status reads.
pub fn point_read(p: &Proc, db: &DbLayout, inp: &OpInputs) {
    p.set_component(Component::App);
    p.busy(420); // parse + plan cache hit
    let w = (inp.account.wrapping_mul(31)) % db.catalog_words;
    p.load(Addr(db.catalog_base.0 + w * 8));
    p.load(db.header(inp.account % 3));
    p.load(db.account(inp.account));
    p.load(db.bufdesc(inp.account / 64));
    p.load(db.account(inp.probe));
    p.load(db.status(2));
    p.busy(160); // result marshalling
}

/// Money movement: account/teller fetch-adds and the branch critical
/// section with its consistent-snapshot history append.
pub fn read_modify_write(p: &Proc, db: &DbLayout, inp: &OpInputs, hints: bool) {
    p.set_component(Component::App);
    p.busy(520); // parse + plan
    p.load(db.account(inp.account)); // balance check before the update
    p.busy(40);
    let fadd = |addr: Addr, delta: u64| {
        if hints {
            p.fetch_add_hinted(addr, delta)
        } else {
            p.fetch_add(addr, delta)
        }
    };
    fadd(db.account(inp.account), inp.amount);
    p.busy(45);
    let teller = inp.branch * 10 + inp.teller_off;
    fadd(db.teller(teller), inp.amount);
    p.busy(35);
    let lk = db.branch_lock(inp.branch);
    lk.lock(p);
    let baddr = db.branch(inp.branch);
    let bal = p.load(baddr);
    p.busy(4);
    p.store(baddr, bal.wrapping_add(inp.amount));
    let slot = fadd(db.history_tail, 1);
    let h = db.history(slot);
    p.store(h, inp.account);
    p.store(h.offset(8), teller);
    p.busy(12);
    lk.unlock(p);
    p.busy(180); // commit bookkeeping
}

/// Read-only index traversal (reporting query).
pub fn scan(p: &Proc, db: &DbLayout, index_base: Addr, inp: &OpInputs) {
    p.set_component(Component::App);
    p.busy(360); // parse + plan
    p.load(db.header(0));
    for &i in &inp.idx {
        p.load(Addr(index_base.0 + i * 32));
        p.busy(110); // key comparisons per node
    }
    p.load(db.account(inp.probe));
    p.busy(90);
}

/// WAL/history append: the pure-store output stream.
pub fn append(p: &Proc, db: &DbLayout, inp: &OpInputs, hints: bool) {
    p.set_component(Component::Lib);
    p.busy(260); // record formatting
    let fadd = |addr: Addr, delta: u64| {
        if hints {
            p.fetch_add_hinted(addr, delta)
        } else {
            p.fetch_add(addr, delta)
        }
    };
    let lslot = fadd(db.log_tail, 2);
    p.store(
        Addr(db.log_base.0 + (lslot % db.log_cap) * 8),
        inp.amount ^ inp.account,
    );
    p.store(
        Addr(db.log_base.0 + ((lslot + 1) % db.log_cap) * 8),
        inp.account,
    );
    let slot = fadd(db.history_tail, 1);
    let h = db.history(slot);
    p.store(h, inp.account);
    p.store(h.offset(8), inp.amount);
    p.busy(120);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oltp::layout;
    use ccsim_engine::SimBuilder;
    use ccsim_types::{MachineConfig, ProtocolKind};

    #[test]
    fn ops_run_and_conserve_money() {
        let cfg = MachineConfig::oltp_scaled(ProtocolKind::Ls);
        let mut b = SimBuilder::new(cfg);
        let db = layout::allocate(&mut b, 8, 1024, 4);
        let index_base = b.alloc().alloc(4096 * 8, 64);
        for pid in 0..4u64 {
            b.spawn(move |p| {
                let inp = OpInputs {
                    account: 17 * (pid + 1),
                    branch: pid % 8,
                    teller_off: pid % 10,
                    amount: 10 + pid,
                    probe: 900 - pid,
                    idx: [pid; 8],
                };
                point_read(&p, &db, &inp);
                read_modify_write(&p, &db, &inp, false);
                scan(&p, &db, index_base, &inp);
                append(&p, &db, &inp, false);
            });
        }
        let done = b.run_full();
        let total: u64 = (0..8).map(|i| done.peek(db.branch(i))).sum();
        assert_eq!(total, 10 + 11 + 12 + 13, "branch balances must sum");
        let accounts: u64 = (0..1024).map(|i| done.peek(db.account(i))).sum();
        assert_eq!(accounts, total, "account updates must match");
        assert!(done.stats.exec_cycles > 0);
    }
}
