//! OLTP: a miniature in-memory DBMS running TPC-B-style transactions.
//!
//! Substitute for MySQL 3.22 + SparcLinux + glibc pthreads (§4.1), built to
//! exhibit the mechanisms the paper attributes OLTP's behaviour to:
//!
//! * a working set far beyond the L2 (account table + index), so shared
//!   data misses for capacity/conflict reasons and the migratory two-copy
//!   pattern AD needs rarely survives (§5.4);
//! * lingering read-shared copies (point queries, index scans) that make
//!   ownership acquisitions multi-invalidation writes (the paper's ≈1.4
//!   invalidations per write to a shared block) and defeat AD's
//!   exactly-two-copies detection where LS's last-reader check still fires;
//! * migratory locks and counters (branch locks, log/history tails, the OS
//!   run queue) — the part of the workload both AD and LS capture;
//! * cold, never-migrating load-store sequences (account rows touched once,
//!   connection sort buffers), the LS-only detection territory;
//! * pure-store streams (history, WAL, output marshalling) that are global
//!   writes *not* in load-store sequences, diluting the load-store fraction
//!   toward the paper's Table 2 (~42 %);
//! * three workload components — application (DBMS), libraries, OS —
//!   reported separately (Table 2).
//!
//! TPC-B money conservation (`Σbranch = Σteller = Σaccount = Σamounts`) is
//! asserted in tests under every protocol.

pub mod layout;
pub mod ops;

use ccsim_engine::{Component, Proc, SimBuilder};
use ccsim_types::{Addr, SimRng};

pub use layout::{DbLayout, HISTORY_WORDS, RECORD_WORDS};

/// OLTP sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OltpParams {
    /// TPC-B branches (the paper uses 40).
    pub branches: u64,
    /// Account records (scaled from the paper's ~600 MB database to keep
    /// simulated-instruction counts tractable; still ≫ L2).
    pub accounts: u64,
    /// Index region blocks touched by scans (read-only, sized ≫ L2).
    pub index_words: u64,
    /// Transactions per processor.
    pub txns_per_proc: u64,
    pub procs: u16,
    pub seed: u64,
    /// Use static load-exclusive hints on the read-modify-writes a
    /// compiler's dataflow analysis would transform (the instruction-
    /// centric technique of §2.1 / \[12\]\[15\]): tight fetch-adds only —
    /// pairs separated by calls, conditionals or aliasing stay plain,
    /// which is exactly why the static approach loses coverage on OLTP.
    pub static_hints: bool,
}

impl OltpParams {
    /// Evaluation shape: 40 branches, 64k accounts (2 MB table vs 512 kB
    /// L2), a 2 MB index, 500 transactions per processor.
    pub fn paper() -> Self {
        OltpParams {
            branches: 40,
            accounts: 65_536,
            index_words: 262_144,
            txns_per_proc: 500,
            procs: 4,
            seed: 0x7DB,
            static_hints: false,
        }
    }

    /// Scaled for unit tests — still sized so table + index exceed the
    /// 512 kB L2, preserving the capacity-miss behaviour the paper's OLTP
    /// result hinges on.
    pub fn quick() -> Self {
        OltpParams {
            branches: 16,
            accounts: 16_384,
            index_words: 65_536,
            txns_per_proc: 120,
            procs: 4,
            seed: 0x7DB,
            static_hints: false,
        }
    }
}

/// Pre-generated inputs of one transaction (host-side plan, so that
/// [`expected_total`] and the simulation share one source of truth).
#[derive(Clone, Copy, Debug)]
struct Txn {
    amount: u64,
    account: u64,
    branch: u64,
    teller_off: u64,
    queries: [u64; 2],
    teller_query: u64,
    idx: [u64; 12],
}

fn plan(params: &OltpParams, pid: u16) -> Vec<Txn> {
    let mut seeder = SimRng::seed_from_u64(params.seed);
    let mut rng = seeder.fork(pid as u64);
    let part = params.accounts / 4; // branch-affinity partition
    (0..params.txns_per_proc)
        .map(|_| {
            let mut idx = [0u64; 12];
            let amount = 1 + rng.below(100);
            // TPC-B locality: most transactions touch the connection's home
            // partition (same-processor reuse after eviction — the LS-only
            // territory); the rest roam the whole table.
            let account = if rng.chance(0.7) {
                (pid as u64 % 4) * part + rng.below(part)
            } else {
                rng.below(params.accounts)
            };
            let branch = rng.below(params.branches);
            let teller_off = rng.below(10);
            let queries = [rng.below(params.accounts), rng.below(params.accounts)];
            let teller_query = rng.below(params.branches * 10);
            for i in &mut idx {
                *i = rng.below(params.index_words / 4);
            }
            Txn {
                amount,
                account,
                branch,
                teller_off,
                queries,
                teller_query,
                idx,
            }
        })
        .collect()
}

/// Expected total of all transaction amounts (verification invariant).
pub fn expected_total(params: &OltpParams) -> u64 {
    (0..params.procs)
        .flat_map(|pid| plan(params, pid))
        .fold(0u64, |acc, t| acc.wrapping_add(t.amount))
}

/// Tight fetch-add, optionally compiled with a load-exclusive hint.
fn fadd(p: &Proc, hinted: bool, addr: Addr, delta: u64) -> u64 {
    if hinted {
        p.fetch_add_hinted(addr, delta)
    } else {
        p.fetch_add(addr, delta)
    }
}

/// One TPC-B transaction + DBMS + OS machinery.
fn transaction(p: &Proc, db: &DbLayout, index_base: Addr, t: &Txn, txn_idx: u64, hints: bool) {
    let pid = p.id().0;

    // ---- OS: scheduler dispatch (time-slice granularity: every fourth
    // transaction, not every statement) -------------------------------------
    p.set_component(Component::Os);
    if txn_idx % 4 == pid as u64 % 4 {
        db.runq_lock.with(p, || {
            let slot = Addr(db.runq_slots.0 + (txn_idx % 8) * 8);
            let v = p.load(slot);
            p.store(slot, v + 1);
            p.busy(60); // context-switch bookkeeping
        });
    }
    // My PID table entry (private load-store sequence; cold first time).
    let my_pid = Addr(db.pid_base.0 + pid as u64 * 8);
    let pv = p.load(my_pid);
    p.store(my_pid, pv + 1);
    if txn_idx.is_multiple_of(8) {
        p.fetch_add(db.tick, 1); // timer tick: migratory counter
    }

    // ---- Application: parse + plan ---------------------------------------
    p.set_component(Component::App);
    p.busy(2600); // SQL parse + protocol handling
    for k in 0..4u64 {
        let w = (t.account.wrapping_mul(31).wrapping_add(k * 17)) % db.catalog_words;
        p.load(Addr(db.catalog_base.0 + w * 8));
        p.busy(12);
    }
    // Table headers: read-shared by everyone, occasionally bumped (row
    // counters) — multi-invalidation writes.
    p.load(db.header(0));
    p.load(db.header(1 + txn_idx % 3));
    if txn_idx % 8 == pid as u64 % 8 {
        let hc = p.load(db.header(3));
        p.store(db.header(3), hc + 1);
    }
    p.busy(1400); // plan selection

    // Index traversal: read-only scan over a region far larger than the L2
    // (capacity misses on shared data, §5.4 / Maynard et al.).
    for &i in &t.idx {
        p.load(Addr(index_base.0 + i * 32));
        p.busy(110); // key comparisons per node
    }

    // Point queries: balance checks keep rows read-shared across
    // processors, so later updates are multi-invalidation writes and break
    // AD's exactly-two-copies migratory detection.
    for &q in &t.queries {
        p.load(db.account(q));
        p.load(db.bufdesc(q / 64));
        p.busy(25);
    }
    // Reporting reads of hot rows and threshold checks of the global tails
    // and server status counters (max-connections / flush checks the server
    // performs per query): the lingering shared copies these leave behind
    // defeat AD's exactly-two-copies detection at the next update and make
    // those updates multi-invalidation writes.
    p.load(db.teller(t.teller_query));
    p.load(db.branch(t.teller_query / 10));
    p.load(db.history_tail);
    p.load(db.log_tail);
    // Connection/byte quotas consulted at statement start but not updated
    // until commit — the "loads and stores farther apart" pattern (§1).
    p.load(db.status(2));
    p.load(db.status(3));
    p.busy(30);

    // Buffer-pool descriptor for the updated account page; every second
    // transaction bumps the LRU word (a write to a read-shared block).
    let desc = db.bufdesc(t.account / 64);
    p.load(desc);
    if txn_idx.is_multiple_of(2) {
        let lru = p.load(desc.offset(8));
        p.store(desc.offset(8), lru + 1);
    }

    // Account balance update (row latch is the atomic RMW; a tight pair a
    // compiler can transform into a load-exclusive).
    fadd(p, hints, db.account(t.account), t.amount);
    p.busy(45);

    // Teller balance update.
    let teller = t.branch * 10 + t.teller_off;
    fadd(p, hints, db.teller(teller), t.amount);
    p.busy(35);

    // Branch balance under the branch lock (hot: few branches).
    let lk = db.branch_lock(t.branch);
    lk.lock(p);
    let baddr = db.branch(t.branch);
    let bal = p.load(baddr);
    p.busy(4);
    p.store(baddr, bal.wrapping_add(t.amount));
    // History append inside the critical section (consistent snapshot).
    let slot = fadd(p, hints, db.history_tail, 1);
    let h = db.history(slot);
    p.store(h, t.account);
    p.store(h.offset(8), teller);
    p.store(h.offset(16), t.branch);
    p.store(h.offset(24), t.amount);
    p.busy(18);
    lk.unlock(p);
    p.busy(1800); // statement post-processing / trigger evaluation

    // Optimizer statistics: read every transaction (kept read-shared by the
    // whole machine); periodically refreshed — the multi-invalidation
    // writes behind the ≈1.4 invalidations per shared write.
    let sw = Addr(db.stats_base.0 + (txn_idx % 8) * 8);
    p.load(sw);
    if txn_idx % 2 == pid as u64 % 2 {
        let sv = p.load(sw);
        p.busy(6);
        p.store(sw, sv + 1);
    }

    // ---- Library: WAL append, sort buffer, result marshalling ------------
    p.set_component(Component::Lib);
    let lslot = fadd(p, hints, db.log_tail, 2);
    p.store(
        Addr(db.log_base.0 + (lslot % db.log_cap) * 8),
        t.amount ^ t.account,
    );
    p.store(Addr(db.log_base.0 + ((lslot + 1) % db.log_cap) * 8), teller);
    // Connection sort buffer: a cold private region swept once — half
    // read-modify-write (load-store sequences that never migrate, LS-only
    // territory), half pure output stores (global writes outside any
    // load-store sequence).
    let sort = db.scratch(pid);
    let soff = (txn_idx * 24) % db.scratch_words_per_proc;
    for k in 0..8u64 {
        let a = Addr(sort.0 + ((soff + k) % db.scratch_words_per_proc) * 8);
        let v = p.load(a);
        p.store(a, v.wrapping_add(t.amount + k));
        p.busy(4);
    }
    for k in 8..24u64 {
        let a = Addr(sort.0 + ((soff + k) % db.scratch_words_per_proc) * 8);
        p.store(a, t.amount.rotate_left(k as u32 % 63));
        p.busy(3);
    }
    p.busy(1600); // buffered I/O formatting

    // ---- Application: per-connection record/sort area ---------------------
    // A large private arena swept cyclically, one word per coherence block:
    // by the time the sweep wraps around, the intervening transaction
    // footprint has flushed these blocks from the L2. The read-modify-write
    // part re-creates the *same-processor load-store sequence broken by a
    // replacement* — detected by LS (whose LS-bit waits at the home),
    // undetectable by AD. The pure-store part is the record-output stream:
    // global writes outside any load-store sequence.
    p.set_component(Component::App);
    let stmt = db.stmt(pid);
    let blocks_per_txn = 24u64; // 8 RMW + 16 pure stores
    let arena_blocks = db.stmt_words_per_proc / 4; // 32-byte blocks
    let start = txn_idx * blocks_per_txn;
    for k in 0..8u64 {
        let a = Addr(stmt.0 + ((start + k) % arena_blocks) * 32);
        let v = p.load(a);
        p.store(a, v ^ t.account.rotate_left(k as u32));
        p.busy(6);
    }
    for k in 8..blocks_per_txn {
        let a = Addr(stmt.0 + ((start + k) % arena_blocks) * 32);
        p.store(a, t.amount.wrapping_mul(k | 1));
        p.busy(4);
    }

    // Global server status counters (queries, bytes sent, rows touched,
    // commits): per-query threshold check plus increment of hot,
    // block-isolated words — the classical migratory counters every
    // processor updates in turn. Three are tight read-increment pairs;
    // one is checked well before it is written (txn-start accounting vs
    // txn-end commit), the "loads and stores farther apart" pattern that
    // erodes prediction for both techniques (§1).
    for c in 0..2u64 {
        p.load(db.status(c));
        p.busy(4);
        fadd(p, hints, db.status(c), 1);
        p.busy(3);
    }
    // Commit the quota counters consulted at statement start.
    p.fetch_add(db.status(2), 1);
    p.busy(8);
    p.fetch_add(db.status(3), 1);

    p.busy(2400); // think time / next-statement parsing
}

/// Lay out the database and spawn one worker per processor. Returns the
/// layout for post-run verification.
pub fn build(b: &mut SimBuilder, params: &OltpParams) -> DbLayout {
    let mut db = layout::allocate(b, params.branches, params.accounts, params.procs);
    // Enlarge the per-proc scratch/statement arenas into proper cold-sweep
    // regions (sized so a full cycle exceeds any single reuse window).
    let scratch_words_per_proc = 24 * params.txns_per_proc.max(16);
    db.scratch_base = b
        .alloc()
        .alloc(params.procs as u64 * scratch_words_per_proc * 8, 64);
    db.scratch_words_per_proc = scratch_words_per_proc;
    // Connection record/sort arena: sized so the cyclic 24-block-per-txn
    // sweep wraps after ~1/3 of the run — re-touched blocks have been
    // flushed from the L2 by the intervening footprint by then.
    let stmt_arena_blocks = (24 * params.txns_per_proc / 3).max(96);
    let stmt_words_per_proc = stmt_arena_blocks * 4;
    db.stmt_base = b
        .alloc()
        .alloc(params.procs as u64 * stmt_words_per_proc * 8, 64);
    db.stmt_words_per_proc = stmt_words_per_proc;
    let index_base = b.alloc().alloc(params.index_words * 8, 64);
    for i in (0..params.index_words).step_by(64) {
        b.init(Addr(index_base.0 + i * 8), i);
    }
    for pid in 0..params.procs {
        let txns = plan(params, pid);
        let db = db;
        let hints = params.static_hints;
        b.spawn(move |p| {
            for (i, t) in txns.iter().enumerate() {
                transaction(&p, &db, index_base, t, i as u64, hints);
            }
        });
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::RunStats;
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn run(kind: ProtocolKind, params: &OltpParams) -> (RunStats, u64, u64, u64) {
        // `oltp_scaled`: cache hierarchy scaled with the database so the
        // capacity/conflict-miss behaviour of the paper's 600 MB-vs-512 kB
        // setup is preserved (see DESIGN.md substitutions).
        let cfg = MachineConfig::oltp_scaled(kind);
        let mut b = SimBuilder::new(cfg);
        let db = build(&mut b, params);
        let done = b.run_full();
        let bsum: u64 = (0..db.branches)
            .map(|i| done.peek(db.branch(i)))
            .fold(0, u64::wrapping_add);
        let tsum: u64 = (0..db.tellers)
            .map(|i| done.peek(db.teller(i)))
            .fold(0, u64::wrapping_add);
        let asum: u64 = (0..db.accounts)
            .map(|i| done.peek(db.account(i)))
            .fold(0, u64::wrapping_add);
        (done.stats, bsum, tsum, asum)
    }

    #[test]
    fn money_is_conserved_under_every_protocol() {
        let params = OltpParams::quick();
        let want = expected_total(&params);
        for kind in ProtocolKind::ALL {
            let (_, bsum, tsum, asum) = run(kind, &params);
            assert_eq!(bsum, want, "{kind:?}: branch total wrong");
            assert_eq!(tsum, want, "{kind:?}: teller total wrong");
            assert_eq!(asum, want, "{kind:?}: account total wrong");
        }
    }

    #[test]
    fn multi_invalidation_writes_present() {
        let (s, ..) = run(ProtocolKind::Baseline, &OltpParams::quick());
        // §5.4: "about 1.4 invalidations on average per write to a shared
        // block" — i.e. clearly more than the 0-or-1 of purely private or
        // purely migratory data. Our scaled database reaches ~0.7 at quick
        // size (reported against the paper value in EXPERIMENTS.md); the
        // test guards the mechanism: a substantial fraction of writes must
        // hit multi-reader blocks.
        assert!(
            s.invalidations_per_shared_write() > 0.5,
            "OLTP writes should hit read-shared blocks: {:.2} inv/shared-write",
            s.invalidations_per_shared_write()
        );
        assert!(
            s.dir.invals_on_shared_writes > s.dir.writes_to_shared / 2,
            "multi-invalidation writes too rare"
        );
    }

    #[test]
    fn all_three_components_produce_load_store_sequences() {
        let (s, ..) = run(ProtocolKind::Baseline, &OltpParams::quick());
        for c in Component::ALL {
            let k = s.oracle.component(c);
            assert!(k.global_writes > 0, "{c:?} produced no global writes");
            assert!(k.ls_writes > 0, "{c:?} produced no load-store sequences");
        }
        let f = s.oracle.ls_fraction(None);
        assert!(
            (0.25..0.75).contains(&f),
            "total load-store fraction {f:.2} out of range"
        );
        let m = s.oracle.migratory_fraction(None);
        assert!(
            (0.25..0.8).contains(&m),
            "migratory fraction of load-store sequences {m:.2} out of range"
        );
    }

    #[test]
    fn ls_outperforms_ad_on_oltp() {
        let params = OltpParams::quick();
        let (base, ..) = run(ProtocolKind::Baseline, &params);
        let (ad, ..) = run(ProtocolKind::Ad, &params);
        let (ls, ..) = run(ProtocolKind::Ls, &params);
        let bt = base.total_cycles() as f64;
        let ad_cut = 1.0 - ad.total_cycles() as f64 / bt;
        let ls_cut = 1.0 - ls.total_cycles() as f64 / bt;
        assert!(
            ls_cut > ad_cut,
            "LS ({:.1}%) must beat AD ({:.1}%) on OLTP",
            ls_cut * 100.0,
            ad_cut * 100.0
        );
        assert!(ls.traffic.total_bytes() < base.traffic.total_bytes());
    }

    #[test]
    fn coverage_ls_exceeds_ad() {
        let params = OltpParams::quick();
        let (ad, ..) = run(ProtocolKind::Ad, &params);
        let (ls, ..) = run(ProtocolKind::Ls, &params);
        assert!(
            ls.oracle.ls_coverage() > ad.oracle.ls_coverage(),
            "Table 3 shape: LS coverage {:.2} vs AD {:.2}",
            ls.oracle.ls_coverage(),
            ad.oracle.ls_coverage()
        );
    }

    #[test]
    fn deterministic() {
        let params = OltpParams::quick();
        let (a, ab, at, aa) = run(ProtocolKind::Ls, &params);
        let (b, bb, bt, ba) = run(ProtocolKind::Ls, &params);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!((ab, at, aa), (bb, bt, ba));
    }
}
