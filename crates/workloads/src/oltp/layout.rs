//! Simulated-memory layout of the mini-DBMS.
//!
//! TPC-B schema (scaled): `branches` × branch records, 10 tellers per
//! branch, `accounts` account records, an append-only history, plus the
//! DBMS machinery the paper's MySQL workload exercises — a buffer-pool
//! descriptor table, a read-mostly catalog with hot statistics words, a
//! write-ahead-log ring, a lock table, and the OS structures (run queue,
//! PID table, tick counter).
//!
//! Record layout choices follow the original database, not cache-friendly
//! practice: records are *not* padded to coherence blocks, so neighbouring
//! records written by different processors false-share — increasingly so at
//! larger block sizes, which is exactly what Table 4 measures.

use ccsim_engine::SimBuilder;
use ccsim_sync::{SpinLock, TicketLock};
use ccsim_types::Addr;

/// Words per branch/teller/account record (32 bytes: balance + 3 fields).
pub const RECORD_WORDS: u64 = 4;
/// Words per history entry.
pub const HISTORY_WORDS: u64 = 4;
/// Words per buffer-pool page descriptor.
pub const DESC_WORDS: u64 = 2;

/// All simulated-memory addresses of the database.
#[derive(Clone, Copy, Debug)]
pub struct DbLayout {
    pub branches: u64,
    pub tellers: u64,
    pub accounts: u64,

    pub branch_base: Addr,
    pub teller_base: Addr,
    pub account_base: Addr,
    /// History ring: `history_cap` entries.
    pub history_base: Addr,
    pub history_cap: u64,
    /// Global history tail counter (fetch-add allocated).
    pub history_tail: Addr,

    /// Buffer-pool page descriptors (read-shared headers, LRU counters).
    pub bufpool_base: Addr,
    pub bufpool_descs: u64,

    /// Catalog: read-mostly schema blocks every transaction consults.
    pub catalog_base: Addr,
    pub catalog_words: u64,
    /// Hot statistics words inside the catalog (written periodically while
    /// read-shared by everyone — the multi-invalidation writes behind the
    /// paper's "1.4 invalidations per write").
    pub stats_base: Addr,
    pub stats_words: u64,

    /// Write-ahead-log ring + tail counter.
    pub log_base: Addr,
    pub log_cap: u64,
    pub log_tail: Addr,

    /// Per-branch lock words.
    pub branch_locks: Addr,

    /// OS: run-queue lock, queue slots, PID table, global tick.
    pub runq_lock: TicketLock,
    pub runq_slots: Addr,
    pub pid_base: Addr,
    pub tick: Addr,

    /// Table headers (row counts etc.): read by every transaction,
    /// occasionally updated — multi-invalidation writes.
    pub headers_base: Addr,
    pub header_blocks: u64,
    /// Global server status counters (queries served, bytes sent, …):
    /// incremented by every transaction — the hottest migratory blocks.
    pub status_base: Addr,
    pub status_counters: u64,

    /// Per-processor scratch arenas (transaction-local buffers).
    pub scratch_base: Addr,
    pub scratch_words_per_proc: u64,
    /// Per-processor statement-cache arenas (cold application-side RMWs).
    pub stmt_base: Addr,
    pub stmt_words_per_proc: u64,
}

impl DbLayout {
    pub fn branch_lock(&self, b: u64) -> SpinLock {
        SpinLock::at(Addr(self.branch_locks.0 + b * 64))
    }

    pub fn branch(&self, b: u64) -> Addr {
        Addr(self.branch_base.0 + b * RECORD_WORDS * 8)
    }

    pub fn teller(&self, t: u64) -> Addr {
        Addr(self.teller_base.0 + t * RECORD_WORDS * 8)
    }

    pub fn account(&self, a: u64) -> Addr {
        Addr(self.account_base.0 + a * RECORD_WORDS * 8)
    }

    pub fn history(&self, slot: u64) -> Addr {
        Addr(self.history_base.0 + (slot % self.history_cap) * HISTORY_WORDS * 8)
    }

    pub fn bufdesc(&self, d: u64) -> Addr {
        Addr(self.bufpool_base.0 + (d % self.bufpool_descs) * DESC_WORDS * 8)
    }

    pub fn scratch(&self, pid: u16) -> Addr {
        Addr(self.scratch_base.0 + pid as u64 * self.scratch_words_per_proc * 8)
    }

    pub fn stmt(&self, pid: u16) -> Addr {
        Addr(self.stmt_base.0 + pid as u64 * self.stmt_words_per_proc * 8)
    }

    pub fn header(&self, table: u64) -> Addr {
        Addr(self.headers_base.0 + (table % self.header_blocks) * 64)
    }

    pub fn status(&self, counter: u64) -> Addr {
        Addr(self.status_base.0 + (counter % self.status_counters) * 64)
    }
}

/// Allocate and initialize the whole database image.
pub fn allocate(b: &mut SimBuilder, branches: u64, accounts: u64, procs: u16) -> DbLayout {
    let tellers = branches * 10;
    let history_cap = 16 * 1024;
    let log_cap = 4096;
    let bufpool_descs = 512;
    let catalog_words = 256;
    let stats_words = 8;
    let scratch_words_per_proc = 512;

    let block = 64; // pad region starts; records inside stay unpadded

    let branch_base = b.alloc().alloc(branches * RECORD_WORDS * 8, block);
    let teller_base = b.alloc().alloc(tellers * RECORD_WORDS * 8, block);
    let account_base = b.alloc().alloc(accounts * RECORD_WORDS * 8, block);
    let history_base = b.alloc().alloc(history_cap * HISTORY_WORDS * 8, block);
    let history_tail = b.alloc().alloc_padded(8, block);
    let bufpool_base = b.alloc().alloc(bufpool_descs * DESC_WORDS * 8, block);
    let catalog_base = b.alloc().alloc(catalog_words * 8, block);
    let stats_base = b.alloc().alloc_padded(stats_words * 8, block);
    let log_base = b.alloc().alloc(log_cap * 8, block);
    let log_tail = b.alloc().alloc_padded(8, block);
    let branch_locks = b.alloc().alloc(branches * 64, 64);
    let runq_lock = TicketLock::new(b.alloc(), block);
    let runq_slots = b.alloc().alloc(64 * 8, block);
    let pid_base = b.alloc().alloc(procs as u64 * 8, 8);
    let tick = b.alloc().alloc_padded(8, block);
    let headers_base = b.alloc().alloc(4 * 64, 64);
    let status_base = b.alloc().alloc(4 * 64, 64);
    let scratch_base = b
        .alloc()
        .alloc(procs as u64 * scratch_words_per_proc * 8, block);
    let stmt_base = b
        .alloc()
        .alloc(procs as u64 * scratch_words_per_proc * 8, block);

    // Seed the catalog with schema-like constants.
    for i in 0..catalog_words {
        b.init(Addr(catalog_base.0 + i * 8), 0xCA7A_0000 + i);
    }

    DbLayout {
        branches,
        tellers,
        accounts,
        branch_base,
        teller_base,
        account_base,
        history_base,
        history_cap,
        history_tail,
        bufpool_base,
        bufpool_descs,
        catalog_base,
        catalog_words,
        stats_base,
        stats_words,
        log_base,
        log_cap,
        log_tail,
        branch_locks,
        runq_lock,
        runq_slots,
        pid_base,
        tick,
        headers_base,
        header_blocks: 4,
        status_base,
        status_counters: 4,
        scratch_base,
        scratch_words_per_proc,
        stmt_base,
        stmt_words_per_proc: scratch_words_per_proc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::{MachineConfig, ProtocolKind};

    #[test]
    fn layout_regions_do_not_overlap() {
        let mut b = SimBuilder::new(MachineConfig::oltp_baseline(ProtocolKind::Baseline));
        let l = allocate(&mut b, 8, 1024, 4);
        // Spot-check strictly increasing region starts.
        let starts = [
            l.branch_base.0,
            l.teller_base.0,
            l.account_base.0,
            l.history_base.0,
            l.history_tail.0,
            l.bufpool_base.0,
            l.catalog_base.0,
            l.stats_base.0,
            l.log_base.0,
            l.log_tail.0,
            l.branch_locks.0,
        ];
        for w in starts.windows(2) {
            assert!(w[0] < w[1], "regions out of order: {w:?}");
        }
        // Last account record ends before the history region starts.
        assert!(l.account(1023).0 + RECORD_WORDS * 8 <= l.history_base.0);
    }

    #[test]
    fn records_are_unpadded_so_blocks_are_shared_at_64b() {
        let mut b = SimBuilder::new(MachineConfig::oltp_baseline(ProtocolKind::Baseline));
        let l = allocate(&mut b, 8, 1024, 4);
        // Two adjacent 32-byte teller records fall into one 64-byte block.
        let t0 = l.teller(0);
        let t1 = l.teller(1);
        assert_eq!(
            t0.block(64),
            t1.block(64),
            "adjacent records must false-share at 64B"
        );
        assert_ne!(
            t0.block(32),
            t1.block(32),
            "but not at the default 32B block"
        );
    }

    #[test]
    fn branch_locks_are_block_isolated() {
        let mut b = SimBuilder::new(MachineConfig::oltp_baseline(ProtocolKind::Baseline));
        let l = allocate(&mut b, 8, 1024, 4);
        assert_ne!(
            l.branch_lock(0).addr().block(64),
            l.branch_lock(1).addr().block(64)
        );
    }
}
