//! Fail-safe harness tests: a batch of experiments must survive its worst
//! members. One job panicking, or one cache entry rotting on disk, costs
//! exactly that job or that entry — never the batch.

use std::path::PathBuf;

use ccsim_harness::{cache, CacheMode, JobSet};
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{mp3d, run_spec, Spec};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ccsim-robustness-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tiny_spec(particles: u64) -> Spec {
    let mut p = mp3d::Mp3dParams::quick();
    p.particles = particles;
    p.steps = 1;
    Spec::Mp3d(p)
}

/// A config that passes no validation: the simulation for it panics the
/// moment it is built, exercising the `catch_unwind` isolation path.
fn poisoned_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::splash_baseline(ProtocolKind::Ad);
    cfg.schedule_quantum = 0;
    cfg
}

fn entry_path(dir: &std::path::Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

fn quarantine_path(dir: &std::path::Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json.corrupt"))
}

/// Corruption recovery, all three rot modes: a truncated entry, pure
/// garbage, and a wrong-format-version entry each read as a miss, get
/// quarantined for inspection, and are repaired by the next read-write run.
#[test]
fn cache_recovers_from_every_corruption_mode() {
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    let spec = tiny_spec(24);
    let key = cache::run_key(&cfg, &spec);
    let expected = run_spec(cfg, &spec);

    #[allow(clippy::type_complexity)]
    let corruptions: [(&str, Box<dyn Fn(&str) -> String>); 3] = [
        // Truncated mid-write (e.g. a crashed process, a full disk).
        (
            "truncated",
            Box::new(|text: &str| text[..text.len() / 2].to_string()),
        ),
        // Arbitrary garbage.
        (
            "garbage",
            Box::new(|_: &str| "not json at all \u{0}\u{1}".to_string()),
        ),
        // A valid document from a different (older) format version.
        (
            "wrong-format",
            Box::new(|text: &str| text.replace("ccsim-run-cache-v2", "ccsim-run-cache-v1")),
        ),
    ];

    for (tag, corrupt) in corruptions {
        let dir = temp_dir(&format!("rot-{tag}"));
        // Seed a healthy entry, then rot it.
        let healthy = cache::run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        assert_eq!(healthy, expected, "{tag}: seeding run");
        let path = entry_path(&dir, &key);
        let text = std::fs::read_to_string(&path).unwrap();
        let rotted = corrupt(&text);
        assert_ne!(text, rotted, "{tag}: corruption must change the entry");
        std::fs::write(&path, rotted).unwrap();

        // The rotted entry is a miss — the run still returns correct stats —
        // and the file is quarantined, then healed by the miss's write-back.
        let recovered = cache::run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        assert_eq!(recovered, expected, "{tag}: recovery run");
        assert!(
            quarantine_path(&dir, &key).exists(),
            "{tag}: corrupt entry must be quarantined, not deleted"
        );
        let healed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(healed, text, "{tag}: healed entry matches the original");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite: one panicking job in a parallel batch yields `Err` in that
/// job's slot — with index, workload, protocol and panic message — while
/// every other job completes, in submission order.
#[test]
fn one_panicking_job_does_not_poison_the_batch() {
    let good = MachineConfig::splash_baseline(ProtocolKind::Baseline);
    let mut set = JobSet::new();
    set.push(good.with_protocol(ProtocolKind::Ls), tiny_spec(24));
    set.push(poisoned_cfg(), tiny_spec(24));
    set.push(good.with_protocol(ProtocolKind::Ad), tiny_spec(24));
    set.push(good, tiny_spec(16));
    let results = set.run_checked_with(3, CacheMode::Off, cache::default_dir());

    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_ref().unwrap().protocol, ProtocolKind::Ls);
    assert_eq!(results[2].as_ref().unwrap().protocol, ProtocolKind::Ad);
    assert_eq!(
        results[3].as_ref().unwrap().protocol,
        ProtocolKind::Baseline
    );

    let err = results[1].as_ref().unwrap_err();
    assert_eq!(err.index, 1);
    assert_eq!(err.protocol, ProtocolKind::Ad);
    assert!(
        err.detail.contains("schedule quantum"),
        "panic message must reach the error: {err}"
    );
    assert!(
        err.to_string().contains("Mp3d"),
        "error must name the workload: {err}"
    );

    // The healthy results equal fresh standalone runs.
    assert_eq!(
        *results[0].as_ref().unwrap(),
        run_spec(good.with_protocol(ProtocolKind::Ls), &tiny_spec(24))
    );
}

/// The acceptance batch: a panicking job AND a corrupt cache entry in the
/// same `JobSet`. Every healthy job completes (the one whose entry rotted
/// recomputes), both failures are visible — the panic as a structured
/// `JobError`, the rot as a quarantined file — and nothing hangs.
#[test]
fn batch_survives_panic_and_corrupt_cache_together() {
    let dir = temp_dir("acceptance");
    let good = MachineConfig::splash_baseline(ProtocolKind::Baseline);
    let rotted_spec = tiny_spec(32);
    let rotted_key = cache::run_key(&good, &rotted_spec);

    // Seed the cache for one job, then rot its entry.
    let seeded = cache::run_cached_at(good, &rotted_spec, CacheMode::ReadWrite, &dir);
    let path = entry_path(&dir, &rotted_key);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 3]).unwrap();

    let mut set = JobSet::new();
    set.push(good, rotted_spec.clone());
    set.push(poisoned_cfg(), tiny_spec(24));
    set.push(good.with_protocol(ProtocolKind::Ls), tiny_spec(24));
    let results = set.run_checked_with(3, CacheMode::ReadWrite, dir.clone());

    // Healthy jobs completed with correct results, in order.
    assert_eq!(results[0].as_ref().unwrap(), &seeded);
    assert_eq!(results[2].as_ref().unwrap().protocol, ProtocolKind::Ls);
    // The panic is reported with actionable context…
    let err = results[1].as_ref().unwrap_err();
    assert_eq!(err.index, 1);
    assert!(err.detail.contains("schedule quantum"), "{err}");
    // …and so is the corruption: quarantined on disk, entry healed.
    assert!(quarantine_path(&dir, &rotted_key).exists());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_with` (the panicking façade) still dies on a failed job — but now
/// with the job's context in the message, not a bare worker panic.
#[test]
#[should_panic(expected = "job #0")]
fn run_with_panics_with_job_context() {
    let mut set = JobSet::new();
    set.push(poisoned_cfg(), tiny_spec(16));
    set.run_with(1, CacheMode::Off, cache::default_dir());
}
