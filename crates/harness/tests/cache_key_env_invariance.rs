//! Cache keys are a pure function of (config, spec): no environment
//! variable — in particular `CCSIM_SIM_THREADS` — may leak into them, or a
//! parallel replay could serve different bytes than a serial one from the
//! same cache entry. The parallel-determinism guarantee extends to the
//! cache layer only because of this invariance.

use ccsim_harness::run_key;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{mp3d::Mp3dParams, Spec};

#[test]
fn sim_thread_setting_does_not_change_cache_keys() {
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    let spec = Spec::Mp3d(Mp3dParams::quick());
    let before = run_key(&cfg, &spec);
    // CCSIM_SERVE_THREADS is pinned alongside the engine's variable so a
    // future serve-side knob can never silently join the key either.
    for var in ["CCSIM_SIM_THREADS", "CCSIM_SERVE_THREADS"] {
        for setting in ["1", "4", "8", "banana"] {
            std::env::set_var(var, setting);
            assert_eq!(
                run_key(&cfg, &spec),
                before,
                "{var}={setting} changed the cache key"
            );
        }
        std::env::remove_var(var);
    }
    assert_eq!(run_key(&cfg, &spec), before);

    // Keys do respond to what actually determines results.
    let other = run_key(&cfg.with_protocol(ProtocolKind::Ad), &spec);
    assert_ne!(other, before);
}
