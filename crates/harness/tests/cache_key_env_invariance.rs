//! Cache keys are a pure function of (config, spec): no environment
//! variable — in particular `CCSIM_SIM_THREADS` — may leak into them, or a
//! parallel replay could serve different bytes than a serial one from the
//! same cache entry. The parallel-determinism guarantee extends to the
//! cache layer only because of this invariance.

use ccsim_harness::run_key;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{mp3d::Mp3dParams, Spec};

#[test]
fn sim_thread_setting_does_not_change_cache_keys() {
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    let spec = Spec::Mp3d(Mp3dParams::quick());
    let before = run_key(&cfg, &spec);
    for setting in ["1", "4", "8", "banana"] {
        std::env::set_var("CCSIM_SIM_THREADS", setting);
        assert_eq!(
            run_key(&cfg, &spec),
            before,
            "CCSIM_SIM_THREADS={setting} changed the cache key"
        );
    }
    std::env::remove_var("CCSIM_SIM_THREADS");
    assert_eq!(run_key(&cfg, &spec), before);

    // Keys do respond to what actually determines results.
    let other = run_key(&cfg.with_protocol(ProtocolKind::Ad), &spec);
    assert_ne!(other, before);
}
