//! The chaos sweep's worker count is an execution knob, not an input: it
//! must affect neither the run-cache key (the chaos gate shares cached
//! fault-free runs with every other experiment) nor any swept result.
//! Same contract as `CCSIM_SIM_THREADS` in `cache_key_env_invariance`.

use ccsim_harness::chaos::{sweep, ChaosConfig, CHAOS_THREADS_ENV};
use ccsim_harness::run_key;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::{lu::LuParams, Spec};

/// One test function on purpose: both halves mutate the same process-global
/// environment variable and must not interleave.
#[test]
fn chaos_thread_setting_changes_neither_cache_keys_nor_sweep_results() {
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    let spec = Spec::Lu(LuParams::quick());

    // Half 1: the cache key is a pure function of (config, spec).
    let key = run_key(&cfg, &spec);
    for setting in ["1", "4", "16", "banana"] {
        std::env::set_var(CHAOS_THREADS_ENV, setting);
        assert_eq!(
            run_key(&cfg, &spec),
            key,
            "{CHAOS_THREADS_ENV}={setting} changed the cache key"
        );
    }
    std::env::remove_var(CHAOS_THREADS_ENV);
    assert_eq!(run_key(&cfg, &spec), key);

    // Half 2: the sweep's cells are bit-identical for every worker count.
    let cc = ChaosConfig {
        protocols: vec![ProtocolKind::Baseline],
        specs: vec![spec],
        rates: vec![60],
        seeds: vec![1, 2],
        check_sc: false,
        shrink: false,
        mutation: None,
    };
    let serial = sweep(&cc).unwrap();
    std::env::set_var(CHAOS_THREADS_ENV, "4");
    let parallel = sweep(&cc).unwrap();
    std::env::remove_var(CHAOS_THREADS_ENV);

    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.failure, p.failure);
        assert_eq!(s.retransmits, p.retransmits, "seed {}", s.seed);
        assert_eq!(s.nacks, p.nacks, "seed {}", s.seed);
    }
    assert_eq!(serial.summary(), parallel.summary());
    assert!(serial.is_clean(), "control sweep must be clean");
    assert!(
        serial.cells.iter().all(|c| c.retransmits > 0),
        "fault injector never fired — the sweep proves nothing"
    );
}
