//! Determinism regression tests for the run cache and the worker pool.
//!
//! The whole harness rests on one property: a `(MachineConfig, Spec)` pair
//! always produces bit-for-bit identical `RunStats`. These tests pin the
//! two consequences the harness exploits — a cached entry's bytes equal a
//! fresh run's canonical encoding, and the worker count never changes
//! results — at the integration level, across protocols and workloads.

use std::path::PathBuf;

use ccsim_harness::{cache, CacheMode, JobSet};
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_util::{fnv1a64, Json, ToJson};
use ccsim_workloads::{cholesky, mp3d, run_spec, Spec};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ccsim-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tiny_mp3d() -> Spec {
    let mut p = mp3d::Mp3dParams::quick();
    p.particles = 32;
    p.steps = 1;
    Spec::Mp3d(p)
}

fn tiny_cholesky() -> Spec {
    let mut p = cholesky::CholeskyParams::quick();
    p.cols = 8;
    p.col_words = 16;
    p.waves = 1;
    Spec::Cholesky(p)
}

/// The bytes the cache stores are exactly the fresh run's pretty-printed
/// canonical JSON inside the checksummed v2 envelope — so a warm replay is
/// not merely equal, it is the same document, under every protocol.
#[test]
fn cached_entry_bytes_equal_fresh_encoding() {
    let dir = temp_dir("bytes");
    let spec = tiny_mp3d();
    for kind in ProtocolKind::ALL {
        let cfg = MachineConfig::splash_baseline(kind);
        let fresh = run_spec(cfg, &spec);
        let cached = cache::run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        assert_eq!(cached, fresh, "{kind:?}: cache round trip changed a field");

        let entry = dir.join(format!("{}.json", cache::run_key(&cfg, &spec)));
        let on_disk = std::fs::read_to_string(&entry).unwrap();
        let stats_json = fresh.to_json();
        let checksum = format!("{:016x}", fnv1a64(stats_json.to_string().as_bytes()));
        let expected = Json::obj(vec![
            ("format", "ccsim-run-cache-v2".to_json()),
            ("checksum", checksum.to_json()),
            ("stats", stats_json),
        ]);
        assert_eq!(on_disk, expected.pretty(), "{kind:?}: entry bytes");

        // And the stored document re-encodes to itself (canonical form).
        let reparsed = Json::parse(&on_disk).unwrap();
        assert_eq!(reparsed.pretty(), on_disk, "{kind:?}: not canonical");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cache hit returns stats field-identical to simulating from scratch,
/// even when the entry was written by a different configuration's sibling
/// runs filling the same directory.
#[test]
fn warm_cache_replays_field_identical_stats() {
    let dir = temp_dir("replay");
    let specs = [tiny_mp3d(), tiny_cholesky()];
    let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
    // Fill the cache.
    for spec in &specs {
        cache::run_cached_at(cfg, spec, CacheMode::ReadWrite, &dir);
    }
    // Replay must match a from-scratch simulation exactly.
    for spec in &specs {
        let replayed = cache::run_cached_at(cfg, spec, CacheMode::ReadOnly, &dir);
        assert_eq!(replayed, run_spec(cfg, spec), "{}", spec.name());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// JobSet results are identical whatever the worker count — one inline
/// worker, a small pool, or more workers than jobs — and identical again
/// when served from a warm cache.
#[test]
fn worker_count_and_cache_state_never_change_results() {
    let dir = temp_dir("workers");
    let build = || {
        let mut set = JobSet::new();
        for kind in ProtocolKind::ALL {
            set.push(MachineConfig::splash_baseline(kind), tiny_mp3d());
            set.push(MachineConfig::splash_baseline(kind), tiny_cholesky());
        }
        set
    };
    let inline = build().run_with(1, CacheMode::Off, dir.clone());
    let pooled = build().run_with(3, CacheMode::Off, dir.clone());
    let oversubscribed = build().run_with(64, CacheMode::Off, dir.clone());
    assert_eq!(inline, pooled);
    assert_eq!(inline, oversubscribed);

    // Cold rw fills the cache; warm rw replays it. Same results throughout.
    let cold = build().run_with(3, CacheMode::ReadWrite, dir.clone());
    let warm = build().run_with(3, CacheMode::ReadWrite, dir.clone());
    assert_eq!(inline, cold);
    assert_eq!(inline, warm);
    let _ = std::fs::remove_dir_all(&dir);
}
