//! A set of independent simulation jobs fanned across a bounded worker
//! pool, with deterministic result ordering.
//!
//! Each simulation run already spawns one OS thread per simulated processor
//! and serializes them under the engine lock, so a run occupies roughly one
//! core regardless of its node count — but its *threads* all exist at once.
//! The pool budget therefore divides the host's cores by the widest job's
//! processor count, keeping the total live-thread count bounded while still
//! running independent experiments concurrently.
//!
//! Results come back in submission order no matter which worker finished
//! first, and every job goes through the run cache, so a `JobSet` is a
//! drop-in replacement for a sequential `for` loop over `run_spec` calls:
//! same values, same order, less wall-clock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ccsim_engine::RunStats;
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_workloads::Spec;

use crate::cache::{run_cached_at, CacheMode};

/// One independent simulation: a machine configuration plus a workload.
#[derive(Clone, Debug)]
pub struct Job {
    pub cfg: MachineConfig,
    pub spec: Spec,
}

/// One job's failure, with enough context to reproduce it: which slot in
/// the batch, what was being simulated, and the panic message.
#[derive(Clone, Debug)]
pub struct JobError {
    /// The job's index in submission order.
    pub index: usize,
    /// Workload description (the spec's debug form).
    pub workload: String,
    /// Protocol the failing run was configured with.
    pub protocol: ProtocolKind,
    /// Node count of the failing run.
    pub nodes: u16,
    /// The panic payload, stringified.
    pub detail: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job #{} ({} under {:?}, {} nodes) panicked: {}",
            self.index, self.workload, self.protocol, self.nodes, self.detail
        )
    }
}

/// Stringify a panic payload (panics carry `&str` or `String` in practice;
/// anything else gets a placeholder rather than being dropped).
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker budget for jobs that each spawn `procs_per_run` simulated
/// processors: host cores divided by that width, at least 1. The
/// `CCSIM_JOBS` environment variable overrides the result (0 is ignored).
pub fn default_workers(procs_per_run: usize) -> usize {
    if let Some(n) = std::env::var("CCSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (host / procs_per_run.max(1)).max(1)
}

/// An ordered batch of independent simulation jobs.
#[derive(Default)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    pub fn new() -> Self {
        JobSet::default()
    }

    /// Queue one run; returns its index in the result vector.
    pub fn push(&mut self, cfg: MachineConfig, spec: Spec) -> usize {
        self.jobs.push(Job { cfg, spec });
        self.jobs.len() - 1
    }

    /// Queue the same workload under several protocols (the shape every
    /// figure uses); returns the index of the first.
    pub fn push_protocols(
        &mut self,
        cfg: MachineConfig,
        spec: &Spec,
        kinds: &[ProtocolKind],
    ) -> usize {
        let first = self.jobs.len();
        for &k in kinds {
            self.push(cfg.with_protocol(k), spec.clone());
        }
        first
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The environment-configured worker budget for this batch: host cores
    /// divided by the widest job's node count.
    fn env_workers(&self) -> usize {
        let widest = self
            .jobs
            .iter()
            .map(|j| j.cfg.nodes as usize)
            .max()
            .unwrap_or(1);
        default_workers(widest)
    }

    /// Run every job and return results in submission order, using the
    /// environment-configured cache mode and worker budget. Panics on the
    /// first failed job; use [`JobSet::run_checked`] to keep the healthy
    /// results of a partially failing batch.
    pub fn run(self) -> Vec<RunStats> {
        let workers = self.env_workers();
        self.run_with(workers, CacheMode::from_env(), crate::cache::default_dir())
    }

    /// Run with an explicit worker count, cache mode and cache directory
    /// (the form tests use — no environment reads). Panics with the failing
    /// job's context if any job fails.
    pub fn run_with(self, workers: usize, mode: CacheMode, dir: PathBuf) -> Vec<RunStats> {
        self.run_checked_with(workers, mode, dir)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Like [`JobSet::run`], but fail-safe: each job runs under
    /// `catch_unwind`, so one panicking job yields an `Err` carrying its
    /// context in that job's result slot while every other job still runs
    /// to completion.
    pub fn run_checked(self) -> Vec<Result<RunStats, JobError>> {
        let workers = self.env_workers();
        self.run_checked_with(workers, CacheMode::from_env(), crate::cache::default_dir())
    }

    /// [`JobSet::run_checked`] with an explicit worker count, cache mode
    /// and cache directory.
    pub fn run_checked_with(
        self,
        workers: usize,
        mode: CacheMode,
        dir: PathBuf,
    ) -> Vec<Result<RunStats, JobError>> {
        let jobs = self.jobs;
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, n);
        let run_one = |i: usize, job: &Job| -> Result<RunStats, JobError> {
            catch_unwind(AssertUnwindSafe(|| {
                run_cached_at(job.cfg, &job.spec, mode, &dir)
            }))
            .map_err(|payload| JobError {
                index: i,
                workload: format!("{:?}", job.spec),
                protocol: job.cfg.protocol.kind,
                nodes: job.cfg.nodes,
                detail: panic_detail(payload),
            })
        };
        // The shared bounded pool keeps submission order in the result
        // vector regardless of which worker finished first; `run_one`
        // already catches panics, so a worker never dies mid-batch.
        ccsim_util::pool::run_indexed(workers, n, |i| run_one(i, &jobs[i]))
    }
}

/// Run one workload under each of `kinds` in parallel; results align with
/// `kinds` by index. The common "all three protocols" case in one call.
pub fn run_protocols(cfg: MachineConfig, spec: &Spec, kinds: &[ProtocolKind]) -> Vec<RunStats> {
    let mut set = JobSet::new();
    set.push_protocols(cfg, spec, kinds);
    set.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::MachineConfig;
    use ccsim_workloads::mp3d::Mp3dParams;

    fn tiny_spec(particles: u64) -> Spec {
        let mut p = Mp3dParams::quick();
        p.particles = particles;
        p.steps = 1;
        Spec::Mp3d(p)
    }

    #[test]
    fn results_keep_submission_order() {
        let mut set = JobSet::new();
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        for kind in [ProtocolKind::Ls, ProtocolKind::Baseline, ProtocolKind::Ad] {
            set.push(cfg.with_protocol(kind), tiny_spec(24));
        }
        assert_eq!(set.len(), 3);
        let out = set.run_with(3, CacheMode::Off, crate::cache::default_dir());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].protocol, ProtocolKind::Ls);
        assert_eq!(out[1].protocol, ProtocolKind::Baseline);
        assert_eq!(out[2].protocol, ProtocolKind::Ad);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        let build = || {
            let mut set = JobSet::new();
            for kind in ProtocolKind::ALL {
                set.push(cfg.with_protocol(kind), tiny_spec(32));
            }
            for particles in [16, 24] {
                set.push(cfg, tiny_spec(particles));
            }
            set
        };
        let serial = build().run_with(1, CacheMode::Off, crate::cache::default_dir());
        let parallel = build().run_with(4, CacheMode::Off, crate::cache::default_dir());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn push_protocols_expands_in_order() {
        let mut set = JobSet::new();
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        let first = set.push_protocols(cfg, &tiny_spec(16), &ProtocolKind::ALL);
        assert_eq!(first, 0);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn empty_set_runs_to_empty() {
        assert!(JobSet::new().is_empty());
        assert_eq!(
            JobSet::new()
                .run_with(4, CacheMode::Off, crate::cache::default_dir())
                .len(),
            0
        );
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers(4) >= 1);
        assert!(default_workers(0) >= 1);
        assert!(default_workers(usize::MAX) >= 1);
    }
}
