//! Parallel experiment harness: a bounded worker-pool [`JobSet`] plus a
//! content-addressed on-disk run cache.
//!
//! The simulator is *internally* parallel (one OS thread per simulated
//! processor) but fully deterministic: the engine admits exactly one
//! simulated processor at a time, chosen from simulated state alone, so a
//! `(MachineConfig, Spec)` pair always produces bit-for-bit identical
//! [`RunStats`](ccsim_engine::RunStats). Two consequences this crate
//! exploits:
//!
//! 1. **Independent runs are embarrassingly parallel.** A figure needs the
//!    same workload under Baseline/AD/LS, a sweep needs many cache sizes —
//!    none of those runs communicate. [`JobSet`] fans them out across a
//!    bounded pool of OS threads (budget: host cores divided by the threads
//!    each run spawns itself) and returns results in submission order.
//! 2. **Results are pure functions of their inputs.** [`cache`] memoizes
//!    `RunStats` on disk, keyed by a stable hash of the serialized config +
//!    spec + a crate-version salt. A warm cache replays an entire
//!    experiment suite without simulating anything.

pub mod cache;
pub mod chaos;
pub mod jobset;

pub use cache::{default_dir, run_cached, run_cached_at, run_key, CacheMode, CacheStats};
pub use chaos::{
    chaos_plan, sweep, ChaosCell, ChaosConfig, ChaosOutcome, ChaosWitness, CHAOS_THREADS_ENV,
    SEQUENTIAL_QUANTUM,
};
pub use jobset::{default_workers, run_protocols, Job, JobError, JobSet};
