//! Chaos sweep: fault-rate grids over workloads × protocols, checked
//! against the exactly-once delivery theorem, with a delta-debugging
//! shrinker that reduces any failure to a minimal witness.
//!
//! Replay pins the access interleaving: every cell replays the *same*
//! captured trace, so a lossy, duplicating, reordering interconnect may
//! only perturb *latencies* — never memory behaviour. (This is the replay
//! analogue of the engine soaks' sequential-quantum regime; unlike a live
//! sequential-quantum run it also works for barrier workloads, whose
//! spin-waiters would never yield inside a near-infinite quantum.) Each
//! grid cell replays one captured workload trace through a faulty
//! transport and convicts any observable divergence from the fault-free
//! run:
//!
//! 1. coherence invariants (SWMR, directory/cache agreement, data values)
//!    must stay clean under [`InvariantMode::Check`];
//! 2. the oracle / directory / false-sharing / cache-hit statistics must be
//!    bit-identical to the fault-free replay (latency counters are exempt —
//!    retransmits and NACK backoff legitimately add cycles);
//! 3. optionally, the SC-conformance analyzer must find the *same*
//!    sequential witness (fingerprint equality) as the fault-free run.
//!
//! When a cell fails — in practice only when a seeded transport mutation
//! like skip-dedup is installed — the sweep shrinks the failing trace with
//! ddmin and then zeroes every fault rate that is not needed to reproduce,
//! yielding a minimal (trace, fault plan) witness small enough to read.

use ccsim_engine::{
    replay_checked, replay_events, InvariantMode, RunStats, Trace, TraceEvent, TraceOp,
};
use ccsim_race::check;
use ccsim_stats::ChaosSummary;
use ccsim_types::{FaultConfig, MachineConfig, ProtocolKind};
use ccsim_workloads::{capture_spec, Spec};

/// Scheduling quantum that serializes processors into round-robin slices
/// long enough that every program runs sequentially — the live-simulation
/// regime of the result-identity theorem (see the engine's fault soaks).
/// Only usable for barrier-free programs: a spin-waiter inside a
/// near-infinite quantum is never preempted, so a live barrier workload
/// under this quantum livelocks. The sweep itself does not need it —
/// replay pins the interleaving via the captured trace instead.
pub const SEQUENTIAL_QUANTUM: u64 = 1 << 40;

/// Environment variable consulted for the sweep's worker-thread count.
/// Results are bit-identical for every setting (cells are independent and
/// collected in grid order), which `chaos_threads_do_not_affect_cache_keys`
/// and the sweep determinism test pin.
pub const CHAOS_THREADS_ENV: &str = "CCSIM_CHAOS_THREADS";

/// The canonical chaos fault plan at a given intensity. `rate` scales all
/// five fault classes together; at `rate = 60` this is exactly the
/// reference plan from the robustness suite (nack 40, delay 30, drop 60,
/// dup 50, reorder 40).
pub fn chaos_plan(rate: u16, seed: u64) -> FaultConfig {
    let scaled = |num: u32, den: u32| (rate as u32 * num / den).min(1000) as u16;
    FaultConfig {
        nack_per_mille: scaled(2, 3),
        delay_per_mille: scaled(1, 2),
        drop_per_mille: scaled(1, 1),
        dup_per_mille: scaled(5, 6),
        reorder_per_mille: scaled(2, 3),
        max_delay_cycles: 120,
        seed,
        ..FaultConfig::default()
    }
}

/// Sweep description: the grid is `specs × protocols × rates × seeds`.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    pub protocols: Vec<ProtocolKind>,
    pub specs: Vec<Spec>,
    /// Fault intensities (per-mille; see [`chaos_plan`]). `0` cells are
    /// legal and always clean — useful as in-grid controls.
    pub rates: Vec<u16>,
    pub seeds: Vec<u64>,
    /// Cross-check every cell with the SC-conformance analyzer (slower:
    /// two extra event-capturing replays per cell).
    pub check_sc: bool,
    /// Shrink the first failing cell to a minimal witness.
    pub shrink: bool,
    /// Seeded transport mutation to install in every cell's faulty replay
    /// (requires the `testing` cargo feature). This is how the shrinker is
    /// demonstrated: a broken transport must be convicted with a small
    /// witness, not a 10k-access trace.
    pub mutation: Option<ccsim_types::TransportMutation>,
}

impl ChaosConfig {
    pub fn new() -> ChaosConfig {
        ChaosConfig {
            protocols: vec![ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls],
            specs: vec![Spec::Mp3d(ccsim_workloads::mp3d::Mp3dParams::quick())],
            rates: vec![60],
            seeds: vec![1, 2, 3],
            check_sc: true,
            shrink: true,
            mutation: None,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::new()
    }
}

/// One grid cell's verdict.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    pub workload: String,
    pub protocol: ProtocolKind,
    pub rate_per_mille: u16,
    pub seed: u64,
    /// Program accesses in the replayed trace.
    pub accesses: u64,
    /// Transport recoveries the faulty replay performed (proof the fault
    /// injector actually fired).
    pub retransmits: u64,
    pub nacks: u64,
    /// Whether the SC cross-check ran for this cell.
    pub sc_checked: bool,
    /// `None` = clean; otherwise the first divergence, rendered.
    pub failure: Option<String>,
}

/// A shrunken failing cell: the minimal trace and fault plan that still
/// reproduce the divergence.
#[derive(Clone, Debug)]
pub struct ChaosWitness {
    pub workload: String,
    pub protocol: ProtocolKind,
    pub faults: FaultConfig,
    pub procs: u16,
    pub events: Vec<TraceEvent>,
    pub failure: String,
}

impl ChaosWitness {
    /// Program accesses in the minimal trace (loads + stores +
    /// read-exclusives; `Busy`/`SetComponent` bookkeeping excluded).
    pub fn accesses(&self) -> usize {
        access_count(&self.events)
    }

    /// Human-readable rendering: the fault plan plus one line per event.
    pub fn render(&self) -> String {
        let mut s = format!(
            "minimal witness: {} under {:?}, {} access(es)\nfault plan: nack {} delay {} drop {} dup {} reorder {} (per mille), seed {:#x}\nfailure: {}\n",
            self.workload,
            self.protocol,
            self.accesses(),
            self.faults.nack_per_mille,
            self.faults.delay_per_mille,
            self.faults.drop_per_mille,
            self.faults.dup_per_mille,
            self.faults.reorder_per_mille,
            self.faults.seed,
            self.failure
        );
        for e in &self.events {
            s.push_str(&format!("  P{} {:?}\n", e.proc, e.op));
        }
        s
    }
}

/// The whole sweep's result.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    pub cells: Vec<ChaosCell>,
    /// Minimal witness of the first failing cell (when `shrink` was set).
    pub witness: Option<ChaosWitness>,
}

impl ChaosOutcome {
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.failure.is_some()).count()
    }

    pub fn is_clean(&self) -> bool {
        self.failures() == 0
    }

    /// Flatten into the serializable [`ChaosSummary`].
    pub fn summary(&self) -> ChaosSummary {
        ChaosSummary {
            cells: self.cells.len() as u64,
            failures: self.failures() as u64,
            sc_checked: self.cells.iter().filter(|c| c.sc_checked).count() as u64,
            retransmits: self.cells.iter().map(|c| c.retransmits).sum(),
            nacks: self.cells.iter().map(|c| c.nacks).sum(),
            witness_accesses: self.witness.as_ref().map_or(0, |w| w.accesses() as u64),
            witness_protocol: self
                .witness
                .as_ref()
                .map_or(String::new(), |w| format!("{:?}", w.protocol)),
            witness_failure: self
                .witness
                .as_ref()
                .map_or(String::new(), |w| w.failure.clone()),
        }
    }
}

fn access_count(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.op,
                TraceOp::Load(_) | TraceOp::Store(..) | TraceOp::LoadExclusive(_)
            )
        })
        .count()
}

/// Attach the configured transport mutation to a fault plan. Errors when a
/// mutation is requested without the `testing` feature — release builds
/// cannot run a broken transport.
fn apply_mutation(
    plan: FaultConfig,
    mutation: Option<ccsim_types::TransportMutation>,
) -> Result<FaultConfig, String> {
    match mutation {
        None => Ok(plan),
        Some(_m) => {
            #[cfg(feature = "testing")]
            {
                Ok(plan.with_transport_mutation(_m))
            }
            #[cfg(not(feature = "testing"))]
            Err(format!(
                "transport mutation {} requires the `testing` cargo feature",
                _m.label()
            ))
        }
    }
}

/// First statistic group where a faulty replay diverged from the
/// fault-free run, or `None` when the result-identity theorem held.
/// Latency-side counters (cycles, traffic, retransmits, NACK backoff) are
/// deliberately not compared — transport recovery legitimately spends
/// cycles and messages; it must never change *results*.
fn stats_divergence(base: &RunStats, faulty: &RunStats) -> Option<&'static str> {
    if faulty.oracle != base.oracle {
        return Some("oracle classification");
    }
    if faulty.dir != base.dir {
        return Some("directory event counts");
    }
    if faulty.false_sharing != base.false_sharing {
        return Some("false/true sharing split");
    }
    let hits = |s: &RunStats| {
        (
            s.machine.l1_hits,
            s.machine.l2_hits,
            s.machine.silent_stores,
            s.machine.dirty_hits,
        )
    };
    if hits(faulty) != hits(base) {
        return Some("cache hit counters");
    }
    None
}

/// RAII guard that silences the global panic hook. A broken transport can
/// drive the engine into debug asserts (e.g. the directory front-end's
/// same-owner check) — the sweep *counts* those as failures via
/// `catch_unwind`, and without this guard every ddmin probe would print a
/// full panic banner to stderr.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanics(Option<PanicHook>);

impl QuietPanics {
    fn install() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics(Some(prev))
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            std::panic::set_hook(h);
        }
    }
}

/// Replay `trace` fault-free and through `faults`, returning the faulty
/// stats and the first divergence (if any). The fault-free replay must be
/// clean for the comparison to be meaningful; a dirty base is reported as
/// its own failure class (it would indicate an engine bug, not a transport
/// one). An engine *panic* during a faulty replay — a mutated transport
/// can corrupt the directory badly enough to trip front-end asserts before
/// the invariant checker sees the divergence — is itself a conviction, so
/// it is caught and reported rather than propagated.
fn diverges(
    cfg: MachineConfig,
    faults: FaultConfig,
    trace: &Trace,
    check_sc: bool,
) -> (RunStats, Option<String>) {
    let (base, base_report) = replay_checked(cfg, trace, &[], InvariantMode::Check);
    if !base_report.is_clean() {
        let v = &base_report.violations()[0];
        return (base, Some(format!("fault-free replay is dirty: {v}")));
    }
    let fcfg = cfg.with_faults(faults);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        replay_checked(fcfg, trace, &[], InvariantMode::Check)
    }));
    let (faulty, report) = match caught {
        Ok(r) => r,
        Err(payload) => {
            let msg = crate::jobset::panic_detail(payload);
            return (base, Some(format!("engine panic: {msg}")));
        }
    };
    if !report.is_clean() {
        let v = &report.violations()[0];
        return (faulty, Some(format!("invariant violation: {v}")));
    }
    if let Some(group) = stats_divergence(&base, &faulty) {
        return (
            faulty,
            Some(format!("result divergence from fault-free run: {group}")),
        );
    }
    if check_sc {
        let (_, base_log) = replay_events(cfg, trace, &[]);
        let (_, faulty_log) = replay_events(fcfg, trace, &[]);
        let b = check(&cfg.protocol, &base_log);
        let f = check(&fcfg.protocol, &faulty_log);
        if !f.is_clean() {
            return (faulty, Some("faulty run is not SC-conformant".to_string()));
        }
        if f.sc_fingerprint != b.sc_fingerprint {
            return (
                faulty,
                Some("SC witness fingerprint diverged from fault-free run".to_string()),
            );
        }
    }
    (faulty, None)
}

/// ddmin (complement-reduction variant) over the trace events: repeatedly
/// drop chunks whose removal keeps the failure reproducible, refining the
/// chunk size until the trace is 1-minimal with respect to chunk removal.
/// Deterministic: candidates are tried in a fixed order.
fn ddmin(events: &[TraceEvent], fails: &dyn Fn(&[TraceEvent]) -> bool) -> Vec<TraceEvent> {
    let mut cur = events.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && fails(&cand) {
                cur = cand;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Shrink a failing cell: ddmin the trace, then zero every fault rate the
/// minimal trace does not need to reproduce the failure.
fn shrink_failure(
    cfg: MachineConfig,
    faults: FaultConfig,
    trace: &Trace,
    check_sc: bool,
    workload: &str,
) -> ChaosWitness {
    let _quiet = QuietPanics::install();
    let procs = trace.procs();
    let failing = |plan: FaultConfig, events: &[TraceEvent]| -> bool {
        match Trace::from_events(procs, events.to_vec()) {
            Ok(t) => diverges(cfg, plan, &t, check_sc).1.is_some(),
            Err(_) => false,
        }
    };
    let minimal = ddmin(trace.events(), &|ev| failing(faults, ev));

    let mut plan = faults;
    let zeroed: [fn(&mut FaultConfig); 5] = [
        |f| f.nack_per_mille = 0,
        |f| f.delay_per_mille = 0,
        |f| f.drop_per_mille = 0,
        |f| f.dup_per_mille = 0,
        |f| f.reorder_per_mille = 0,
    ];
    for zero in zeroed {
        let mut cand = plan;
        zero(&mut cand);
        if failing(cand, &minimal) {
            plan = cand;
        }
    }

    // ccsim-lint: allow(unwrap): `minimal` still fails by construction
    let failure = match Trace::from_events(procs, minimal.clone()) {
        Ok(t) => diverges(cfg, plan, &t, check_sc)
            .1
            .unwrap_or_else(|| "failure did not reproduce on the minimal trace".to_string()),
        Err(e) => format!("minimal trace failed to rebuild: {e:?}"),
    };
    ChaosWitness {
        workload: workload.to_string(),
        protocol: cfg.protocol.kind,
        faults: plan,
        procs,
        events: minimal,
        failure,
    }
}

/// Worker-thread count for the sweep: [`CHAOS_THREADS_ENV`] when set and
/// sane, else 1. The count never affects results — only wall-clock.
pub fn chaos_threads_from_env() -> usize {
    std::env::var(CHAOS_THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| (1..=64).contains(&n))
        .unwrap_or(1)
}

/// Run the whole grid. Captures each `(spec, protocol)` base trace once
/// (fault-free, default quantum), then checks every `(rate, seed)` cell
/// against it, fanning cells across [`chaos_threads_from_env`] workers.
/// Cell order — and therefore every result — is independent of the worker
/// count.
pub fn sweep(cc: &ChaosConfig) -> Result<ChaosOutcome, String> {
    // Pre-flight the mutation gate so a misconfigured release build fails
    // before burning capture time.
    apply_mutation(FaultConfig::default(), cc.mutation)?;
    let _quiet = QuietPanics::install();

    // One capture per (spec, protocol); cells replay these traces, which
    // pins the interleaving — faults can only move latencies.
    let mut bases: Vec<(String, MachineConfig, Trace)> = Vec::new();
    for spec in &cc.specs {
        for &kind in &cc.protocols {
            let cfg = MachineConfig::splash_baseline(kind);
            let (_, trace) = capture_spec(cfg, spec);
            bases.push((spec.name().to_string(), cfg, trace));
        }
    }

    // The flat cell grid, in deterministic order.
    let mut grid: Vec<(usize, u16, u64)> = Vec::new();
    for base_idx in 0..bases.len() {
        for &rate in &cc.rates {
            for &seed in &cc.seeds {
                grid.push((base_idx, rate, seed));
            }
        }
    }

    let run_cell = |&(base_idx, rate, seed): &(usize, u16, u64)| -> Result<ChaosCell, String> {
        let (workload, cfg, trace) = &bases[base_idx];
        let plan = apply_mutation(chaos_plan(rate, seed), cc.mutation)?;
        let (fstats, failure) = diverges(*cfg, plan, trace, cc.check_sc);
        Ok(ChaosCell {
            workload: workload.clone(),
            protocol: cfg.protocol.kind,
            rate_per_mille: rate,
            seed,
            accesses: access_count(trace.events()) as u64,
            retransmits: fstats.machine.retransmits,
            nacks: fstats.machine.nacks,
            sc_checked: cc.check_sc,
            failure,
        })
    };

    let workers = chaos_threads_from_env().min(grid.len().max(1));
    let cells: Vec<ChaosCell> = if workers <= 1 {
        grid.iter().map(run_cell).collect::<Result<_, _>>()?
    } else {
        // Round-robin sharding; slots are written by index, so collection
        // order equals grid order no matter which worker finishes first.
        let slots: Vec<std::sync::Mutex<Option<Result<ChaosCell, String>>>> =
            grid.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let grid = &grid;
                let slots = &slots;
                scope.spawn(move || {
                    for (i, cell) in grid.iter().enumerate() {
                        if i % workers == w {
                            // ccsim-lint: allow(unwrap): slot mutexes are never poisoned
                            *slots[i].lock().unwrap() = Some(run_cell(cell));
                        }
                    }
                });
            }
        });
        slots
            .into_iter()
            // ccsim-lint: allow(unwrap): every slot was filled by its worker
            .map(|s| s.into_inner().unwrap().unwrap())
            .collect::<Result<_, _>>()?
    };

    let witness = if cc.shrink {
        match cells.iter().position(|c| c.failure.is_some()) {
            Some(i) => {
                let (base_idx, rate, seed) = grid[i];
                let (workload, cfg, trace) = &bases[base_idx];
                let plan = apply_mutation(chaos_plan(rate, seed), cc.mutation)?;
                Some(shrink_failure(*cfg, plan, trace, cc.check_sc, workload))
            }
            None => None,
        }
    } else {
        None
    };

    Ok(ChaosOutcome { cells, witness })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::Addr;

    /// A migratory two-block ping-pong across four processors — the access
    /// pattern that maximizes ownership hand-offs and therefore transport
    /// traffic. Small enough to shrink fast in tests.
    fn migratory_trace(rounds: u64) -> Trace {
        let (a, b) = (Addr(0x100), Addr(4096 + 0x100));
        let mut events = Vec::new();
        for i in 0..rounds {
            let p = (i % 4) as u16;
            events.push(TraceEvent {
                proc: p,
                op: TraceOp::Load(a),
            });
            events.push(TraceEvent {
                proc: p,
                op: TraceOp::Store(a, i),
            });
            events.push(TraceEvent {
                proc: p,
                op: TraceOp::Load(b),
            });
            events.push(TraceEvent {
                proc: p,
                op: TraceOp::Store(b, i),
            });
        }
        // ccsim-lint: allow(unwrap): hand-built trace is well-formed
        Trace::from_events(4, events).unwrap()
    }

    fn seq_cfg(kind: ProtocolKind) -> MachineConfig {
        let mut cfg = MachineConfig::splash_baseline(kind);
        cfg.schedule_quantum = SEQUENTIAL_QUANTUM;
        cfg
    }

    #[test]
    fn chaos_plan_at_rate_60_is_the_reference_plan() {
        let p = chaos_plan(60, 7);
        assert_eq!(
            (
                p.nack_per_mille,
                p.delay_per_mille,
                p.drop_per_mille,
                p.dup_per_mille,
                p.reorder_per_mille
            ),
            (40, 30, 60, 50, 40)
        );
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn a_faulty_migratory_replay_matches_its_fault_free_run() {
        for kind in [ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls] {
            let trace = migratory_trace(40);
            let (_, failure) = diverges(seq_cfg(kind), chaos_plan(60, 0xFA17), &trace, false);
            assert_eq!(failure, None, "{kind:?}");
        }
    }

    #[test]
    fn ddmin_reaches_a_small_subset() {
        // Synthetic predicate: fails whenever events 3 and 11 are both
        // present. ddmin must isolate exactly those two.
        let events: Vec<TraceEvent> = (0..32)
            .map(|i| TraceEvent {
                proc: 0,
                op: TraceOp::Busy(i),
            })
            .collect();
        let fails = |ev: &[TraceEvent]| {
            let has = |k: u64| {
                ev.iter()
                    .any(|e| matches!(e.op, TraceOp::Busy(x) if x == k))
            };
            has(3) && has(11)
        };
        let min = ddmin(&events, &fails);
        assert_eq!(min.len(), 2);
        assert!(fails(&min));
    }

    #[cfg(feature = "testing")]
    #[test]
    fn skip_dedup_is_convicted_and_shrunk_to_a_small_witness() {
        use ccsim_types::TransportMutation;
        let cfg = seq_cfg(ProtocolKind::Baseline);
        let trace = migratory_trace(40);
        let plan = chaos_plan(600, 0xD0D0).with_transport_mutation(TransportMutation::SkipDedup);
        let (_, failure) = diverges(cfg, plan, &trace, false);
        let failure = failure.expect("skip-dedup must be observable under a dup-heavy plan");
        assert!(failure.contains("invariant violation") || failure.contains("divergence"));

        let witness = shrink_failure(cfg, plan, &trace, false, "migratory");
        assert!(
            witness.accesses() <= 16,
            "witness has {} accesses:\n{}",
            witness.accesses(),
            witness.render()
        );
        assert!(!witness.failure.is_empty());
        // The duplicate rate must survive plan reduction — it is the fault
        // class the mutation leaks.
        assert!(witness.faults.dup_per_mille > 0);
    }
}
