//! Content-addressed on-disk cache of simulation results.
//!
//! A run's result is a pure function of its `(MachineConfig, Spec)` inputs
//! (the simulator is deterministic), so results are memoized under a key
//! derived from content alone:
//!
//! ```text
//! key = fnv1a64( canonical JSON of { format, version, config, spec } )
//! ```
//!
//! The `format` constant and crate `version` act as a salt: bumping either
//! (e.g. when the statistics schema or an encoding changes) orphans every
//! old entry instead of replaying stale results. Entries live as pretty
//! JSON files under `target/ccsim-cache/` — human-inspectable, `rm -rf`able,
//! and written atomically (temp file + rename) so concurrent writers of the
//! same key are safe.
//!
//! Behaviour is controlled by `CCSIM_CACHE`:
//!
//! * `rw` (default) — read hits, write misses back.
//! * `ro` — read hits, never write (e.g. CI consuming a seeded cache).
//! * `off` — bypass entirely; always simulate.
//!
//! `CCSIM_CACHE_DIR` overrides the cache directory.
//!
//! # Corruption safety
//!
//! Every entry embeds a checksum of its statistics payload, verified on
//! every read. An entry that is truncated, garbled, checksum-mismatched, or
//! written by a different format version is never trusted: it counts as a
//! miss, and the offending file is *quarantined* — renamed to
//! `<key>.json.corrupt` — so it can be inspected after the fact instead of
//! being silently overwritten (a fresh store then heals the key). Only a
//! cleanly absent file is a plain miss with no quarantine.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ccsim_engine::RunStats;
use ccsim_types::MachineConfig;
use ccsim_util::{fnv1a64, FromJson, Json, ToJson};
use ccsim_workloads::{run_spec, Spec};

/// Bumped whenever the cache key derivation or the stored encoding changes
/// shape; combined with the crate version it salts every key.
/// v2: entries carry a verified checksum over the statistics payload.
const CACHE_FORMAT: &str = "ccsim-run-cache-v2";

/// How the cache participates in a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Never consult or write the cache.
    Off,
    /// Read hits, write misses back (the default).
    ReadWrite,
    /// Read hits, never write.
    ReadOnly,
}

impl CacheMode {
    /// Read `CCSIM_CACHE` (`off` | `rw` | `ro`; default `rw`). Unknown
    /// values fall back to `rw` — an experiment run should not die on a
    /// typo'd tuning variable — but warn once on stderr, naming the value
    /// and the accepted set, so the typo is visible.
    pub fn from_env() -> CacheMode {
        match std::env::var("CCSIM_CACHE").as_deref() {
            Ok("off") => CacheMode::Off,
            Ok("ro") => CacheMode::ReadOnly,
            Ok("rw") | Ok("") | Err(_) => CacheMode::ReadWrite,
            Ok(other) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                let other = other.to_string();
                WARNED.call_once(|| {
                    eprintln!(
                        "ccsim: unknown CCSIM_CACHE value {other:?} \
                         (accepted: \"off\", \"ro\", \"rw\"); using \"rw\""
                    );
                });
                CacheMode::ReadWrite
            }
        }
    }
}

/// Default cache directory: `target/ccsim-cache` of this workspace
/// (anchored to the crate's manifest, not the current directory, so every
/// test binary and example shares one cache), unless `CCSIM_CACHE_DIR`
/// overrides it.
pub fn default_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CCSIM_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/ccsim-cache")
}

/// Hit/miss/bypass accounting, process-wide.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYPASSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Runs answered from disk.
    pub hits: u64,
    /// Runs simulated because no (valid) entry existed.
    pub misses: u64,
    /// Runs simulated because the cache was off.
    pub bypasses: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Corrupt entries renamed to `*.corrupt` instead of being trusted.
    pub quarantined: u64,
}

impl CacheStats {
    /// Current counter values.
    pub fn snapshot() -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            bypasses: BYPASSES.load(Ordering::Relaxed),
            stores: STORES.load(Ordering::Relaxed),
            quarantined: QUARANTINED.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            bypasses: self.bypasses - earlier.bypasses,
            stores: self.stores - earlier.stores,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }

    /// One-line human summary (experiment binaries print this at exit).
    pub fn summary(&self) -> String {
        format!(
            "run cache: {} hits, {} misses, {} bypasses, {} stores, {} quarantined",
            self.hits, self.misses, self.bypasses, self.stores, self.quarantined
        )
    }
}

/// The content key of one run: a 16-hex-digit stable hash of the canonical
/// encoding of its inputs plus the format/version salt.
pub fn run_key(cfg: &MachineConfig, spec: &Spec) -> String {
    let doc = Json::obj(vec![
        ("format", CACHE_FORMAT.to_json()),
        ("version", env!("CARGO_PKG_VERSION").to_json()),
        ("config", cfg.to_json()),
        ("spec", spec.to_json()),
    ]);
    format!("{:016x}", fnv1a64(doc.to_string().as_bytes()))
}

fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Where a corrupt entry is moved for post-mortem inspection.
fn quarantine_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json.corrupt"))
}

/// Checksum of the statistics payload: the stable hash of its compact
/// canonical encoding, as 16 hex digits.
fn stats_checksum(stats_json: &Json) -> String {
    format!("{:016x}", fnv1a64(stats_json.to_string().as_bytes()))
}

/// Decode and verify one entry's text: format marker, checksum over the
/// statistics payload, then a full statistics decode.
fn decode_entry(text: &str) -> Result<RunStats, String> {
    let j = Json::parse(text)?;
    let format: String = j.field("format")?;
    if format != CACHE_FORMAT {
        return Err(format!(
            "entry format {format:?}, expected {CACHE_FORMAT:?}"
        ));
    }
    let stored: String = j.field("checksum")?;
    let stats_json = j.req("stats")?;
    let computed = stats_checksum(stats_json);
    if stored != computed {
        return Err(format!(
            "checksum mismatch: stored {stored}, computed {computed}"
        ));
    }
    RunStats::from_json(stats_json)
}

/// Sideline a corrupt entry as `<key>.json.corrupt` (best-effort; the
/// rename is atomic so concurrent readers either see the bad entry or no
/// entry, never half of each).
fn quarantine(dir: &Path, key: &str) {
    let _ = std::fs::rename(entry_path(dir, key), quarantine_path(dir, key));
    QUARANTINED.fetch_add(1, Ordering::Relaxed);
}

/// Load a cached result, verifying format, checksum and a clean decode.
/// A cleanly absent file is a plain miss; anything else that fails is
/// quarantined and then a miss.
fn load(dir: &Path, key: &str) -> Option<RunStats> {
    let text = match std::fs::read_to_string(entry_path(dir, key)) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(_) => {
            quarantine(dir, key);
            return None;
        }
    };
    match decode_entry(&text) {
        Ok(stats) => Some(stats),
        Err(_) => {
            quarantine(dir, key);
            None
        }
    }
}

/// Store a result atomically: write a unique temp file in the cache
/// directory, then rename over the final path (rename is atomic on the
/// same filesystem, so concurrent writers of the same key are safe and
/// readers never observe a partial entry).
fn store(dir: &Path, key: &str, stats: &RunStats) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stats_json = stats.to_json();
    let doc = Json::obj(vec![
        ("format", CACHE_FORMAT.to_json()),
        ("checksum", stats_checksum(&stats_json).to_json()),
        ("stats", stats_json),
    ]);
    let tmp = dir.join(format!(
        ".{key}.tmp.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&tmp, doc.pretty())?;
    std::fs::rename(&tmp, entry_path(dir, key))
}

/// Run one workload through the cache at an explicit mode and directory
/// (the form tests use — no environment reads, no races).
pub fn run_cached_at(cfg: MachineConfig, spec: &Spec, mode: CacheMode, dir: &Path) -> RunStats {
    if mode == CacheMode::Off {
        BYPASSES.fetch_add(1, Ordering::Relaxed);
        return run_spec(cfg, spec);
    }
    let key = run_key(&cfg, spec);
    if let Some(stats) = load(dir, &key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return stats;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let stats = run_spec(cfg, spec);
    if mode == CacheMode::ReadWrite {
        // A failed store (read-only filesystem, disk full) costs only the
        // memoization, not the result.
        if store(dir, &key, &stats).is_ok() {
            STORES.fetch_add(1, Ordering::Relaxed);
        }
    }
    stats
}

/// Run one workload through the cache, honouring `CCSIM_CACHE` and
/// `CCSIM_CACHE_DIR`. This is the entry point experiments use.
pub fn run_cached(cfg: MachineConfig, spec: &Spec) -> RunStats {
    run_cached_at(cfg, spec, CacheMode::from_env(), &default_dir())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::ProtocolKind;
    use ccsim_workloads::mp3d::Mp3dParams;

    fn tiny_spec() -> Spec {
        let mut p = Mp3dParams::quick();
        p.particles = 24;
        p.steps = 1;
        Spec::Mp3d(p)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccsim-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_stable_and_input_sensitive() {
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let spec = tiny_spec();
        assert_eq!(run_key(&cfg, &spec), run_key(&cfg, &spec));
        let other_cfg = cfg.with_protocol(ProtocolKind::Ad);
        assert_ne!(run_key(&cfg, &spec), run_key(&other_cfg, &spec));
        let mut p = Mp3dParams::quick();
        p.particles = 25;
        p.steps = 1;
        assert_ne!(run_key(&cfg, &spec), run_key(&cfg, &Spec::Mp3d(p)));
    }

    #[test]
    fn miss_then_hit_returns_identical_stats() {
        let dir = temp_dir("hit");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        let spec = tiny_spec();
        let before = CacheStats::snapshot();
        let fresh = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        let cached = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        let d = CacheStats::snapshot().since(&before);
        assert_eq!(cached, fresh);
        assert_eq!((d.hits, d.misses, d.stores), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_never_writes() {
        let dir = temp_dir("ro");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let spec = tiny_spec();
        let before = CacheStats::snapshot();
        run_cached_at(cfg, &spec, CacheMode::ReadOnly, &dir);
        run_cached_at(cfg, &spec, CacheMode::ReadOnly, &dir);
        let d = CacheStats::snapshot().since(&before);
        assert_eq!((d.misses, d.stores), (2, 0));
        assert!(!entry_path(&dir, &run_key(&cfg, &spec)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_mode_bypasses() {
        let dir = temp_dir("off");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ad);
        let spec = tiny_spec();
        let before = CacheStats::snapshot();
        run_cached_at(cfg, &spec, CacheMode::Off, &dir);
        let d = CacheStats::snapshot().since(&before);
        assert_eq!((d.hits, d.misses, d.bypasses), (0, 0, 1));
        assert!(!dir.exists());
    }

    #[test]
    fn corrupt_entries_are_misses_and_healed() {
        let dir = temp_dir("corrupt");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let spec = tiny_spec();
        let key = run_key(&cfg, &spec);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(entry_path(&dir, &key), "{ not json").unwrap();
        let before = CacheStats::snapshot();
        let stats = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        let d = CacheStats::snapshot().since(&before);
        assert_eq!((d.hits, d.misses, d.stores), (0, 1, 1));
        // The corrupt entry was sidelined for inspection, not overwritten
        // blindly, and the healed entry now round-trips.
        assert!(quarantine_path(&dir, &key).exists());
        assert_eq!(load(&dir, &key).unwrap(), stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_is_quarantined() {
        let dir = temp_dir("checksum");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ad);
        let spec = tiny_spec();
        let key = run_key(&cfg, &spec);
        let stats = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        // Flip one digit inside the stored statistics payload: the entry
        // still parses as JSON but no longer matches its checksum.
        let path = entry_path(&dir, &key);
        let text = std::fs::read_to_string(&path).unwrap();
        let needle = format!("\"exec_cycles\": {}", stats.exec_cycles);
        let tampered = text.replace(
            &needle,
            &format!("\"exec_cycles\": {}", stats.exec_cycles + 1),
        );
        assert_ne!(text, tampered, "tamper target not found in entry");
        std::fs::write(&path, tampered).unwrap();
        assert!(load(&dir, &key).is_none(), "tampered entry must not load");
        assert!(quarantine_path(&dir, &key).exists());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_format_version_is_quarantined_not_trusted() {
        let dir = temp_dir("format");
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        let spec = tiny_spec();
        let key = run_key(&cfg, &spec);
        let stats = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        let path = entry_path(&dir, &key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace(CACHE_FORMAT, "ccsim-run-cache-v0")).unwrap();
        assert!(load(&dir, &key).is_none());
        assert!(quarantine_path(&dir, &key).exists());
        // The next read-write run heals the key.
        let again = run_cached_at(cfg, &spec, CacheMode::ReadWrite, &dir);
        assert_eq!(again, stats);
        assert_eq!(load(&dir, &key).unwrap(), stats);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
