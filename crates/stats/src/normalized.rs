//! Normalization of run statistics against the Baseline run.

use ccsim_engine::RunStats;
use ccsim_types::{MsgClass, ProtocolKind};

/// One protocol's results normalized so Baseline totals are 100.
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizedRun {
    pub protocol: ProtocolKind,
    /// Execution-time components, % of Baseline total (busy, read, write).
    pub busy: f64,
    pub read_stall: f64,
    pub write_stall: f64,
    /// Traffic components, % of Baseline total bytes (read, write, other).
    pub traffic_read: f64,
    pub traffic_write: f64,
    pub traffic_other: f64,
    /// Global read misses per home-state class, % of Baseline total
    /// (Clean, Dirty, CleanExclusive, DirtyExclusive).
    pub read_class: [f64; 4],
}

impl NormalizedRun {
    pub fn time_total(&self) -> f64 {
        self.busy + self.read_stall + self.write_stall
    }

    pub fn traffic_total(&self) -> f64 {
        self.traffic_read + self.traffic_write + self.traffic_other
    }

    pub fn read_miss_total(&self) -> f64 {
        self.read_class.iter().sum()
    }
}

/// The three runs of one paper figure, normalized to the first (Baseline).
#[derive(Clone, Debug)]
pub struct Triptych {
    pub workload: String,
    pub runs: Vec<NormalizedRun>,
}

fn pct(x: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * x as f64 / base as f64
    }
}

impl Triptych {
    /// Normalize `[baseline, ad, ls]` (any number ≥1; the first run is the
    /// normalization base and is conventionally the Baseline protocol).
    pub fn new(workload: impl Into<String>, runs: &[RunStats]) -> Self {
        assert!(!runs.is_empty());
        let base = &runs[0];
        let base_time = base.total_cycles();
        let base_bytes = base.traffic.total_bytes();
        let base_misses = base.dir.global_reads;
        let normalized = runs
            .iter()
            .map(|r| NormalizedRun {
                protocol: r.protocol,
                busy: pct(r.busy(), base_time),
                read_stall: pct(r.read_stall(), base_time),
                write_stall: pct(r.write_stall(), base_time),
                traffic_read: pct(r.traffic.class(MsgClass::Read).bytes, base_bytes),
                traffic_write: pct(r.traffic.class(MsgClass::Write).bytes, base_bytes),
                traffic_other: pct(r.traffic.class(MsgClass::Other).bytes, base_bytes),
                read_class: [
                    pct(r.dir.read_class[0], base_misses),
                    pct(r.dir.read_class[1], base_misses),
                    pct(r.dir.read_class[2], base_misses),
                    pct(r.dir.read_class[3], base_misses),
                ],
            })
            .collect();
        Triptych {
            workload: workload.into(),
            runs: normalized,
        }
    }

    /// The run for one protocol, if present.
    pub fn run(&self, p: ProtocolKind) -> Option<&NormalizedRun> {
        self.runs.iter().find(|r| r.protocol == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::SimBuilder;
    use ccsim_types::MachineConfig;

    fn toy_run(kind: ProtocolKind) -> RunStats {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(kind));
        let a = b.alloc().alloc_words(8);
        for _ in 0..2 {
            b.spawn(move |p| {
                for i in 0..40u64 {
                    let x = p.load(ccsim_types::Addr(a.0 + (i % 8) * 8));
                    p.store(ccsim_types::Addr(a.0 + (i % 8) * 8), x + 1);
                    p.busy(10);
                }
            });
        }
        b.run()
    }

    #[test]
    fn baseline_normalizes_to_100() {
        let base = toy_run(ProtocolKind::Baseline);
        let t = Triptych::new("toy", &[base]);
        let n = &t.runs[0];
        assert!((n.time_total() - 100.0).abs() < 1e-9);
        assert!((n.traffic_total() - 100.0).abs() < 1e-9);
        assert!((n.read_miss_total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ls_run_normalizes_below_baseline() {
        let base = toy_run(ProtocolKind::Baseline);
        let ls = toy_run(ProtocolKind::Ls);
        let t = Triptych::new("toy", &[base, ls]);
        let n = t.run(ProtocolKind::Ls).unwrap();
        assert!(
            n.time_total() < 100.0,
            "LS should beat baseline on a migratory toy"
        );
        assert!(n.write_stall < t.run(ProtocolKind::Baseline).unwrap().write_stall);
    }

    #[test]
    fn pct_of_zero_base_is_zero() {
        assert_eq!(pct(5, 0), 0.0);
        assert_eq!(pct(0, 10), 0.0);
        assert_eq!(pct(5, 10), 50.0);
    }
}
