//! ASCII renderings of the paper's figures and tables.

use crate::normalized::Triptych;
use ccsim_engine::{Component, RunStats};
use ccsim_types::ProtocolKind;
use std::fmt::Write as _;

fn bar(width_per_unit: f64, value: f64) -> String {
    let n = (value * width_per_unit).round().max(0.0) as usize;
    "█".repeat(n)
}

/// Render one application's triptych (Figures 3, 4, 6, 7): three stacked
/// sections — execution time, traffic, global read misses — each with one
/// row per protocol, normalized to Baseline = 100.
pub fn render_triptych(t: &Triptych) -> String {
    let mut s = String::new();
    let w = 0.35; // chars per percentage point
    let _ = writeln!(s, "== {} ==", t.workload);
    let _ = writeln!(
        s,
        "-- Normalized execution time (busy | read stall | write stall) --"
    );
    for r in &t.runs {
        let _ = writeln!(
            s,
            "{:>8} {:6.1} = busy {:5.1} + read {:5.1} + write {:5.1}  {}{}{}",
            r.protocol.label(),
            r.time_total(),
            r.busy,
            r.read_stall,
            r.write_stall,
            bar(w, r.busy),
            "▒".repeat((r.read_stall * w).round().max(0.0) as usize),
            "░".repeat((r.write_stall * w).round().max(0.0) as usize),
        );
    }
    let _ = writeln!(s, "-- Normalized traffic bytes (read | write | other) --");
    for r in &t.runs {
        let _ = writeln!(
            s,
            "{:>8} {:6.1} = read {:5.1} + write {:5.1} + other {:5.1}  {}{}{}",
            r.protocol.label(),
            r.traffic_total(),
            r.traffic_read,
            r.traffic_write,
            r.traffic_other,
            bar(w, r.traffic_read),
            "▒".repeat((r.traffic_write * w).round().max(0.0) as usize),
            "░".repeat((r.traffic_other * w).round().max(0.0) as usize),
        );
    }
    let _ = writeln!(
        s,
        "-- Normalized global read misses (clean | dirty | clean-excl | dirty-excl) --"
    );
    for r in &t.runs {
        let _ = writeln!(
            s,
            "{:>8} {:6.1} = C {:5.1} + D {:5.1} + CX {:5.1} + DX {:5.1}",
            r.protocol.label(),
            r.read_miss_total(),
            r.read_class[0],
            r.read_class[1],
            r.read_class[2],
            r.read_class[3],
        );
    }
    s
}

/// Figure 5: invalidation traffic split into ownership acquisitions
/// ("Global Inv's" — upgrades) and invalidation messages, for several
/// processor counts, normalized to each count's Baseline total.
pub fn render_fig5(rows: &[(u16, Vec<RunStats>)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Cholesky invalidation traffic (Figure 5) ==");
    let _ = writeln!(
        s,
        "{:>6} {:>9} | {:>12} {:>13} {:>7}",
        "procs", "protocol", "global-inv's", "invalidations", "total"
    );
    for (procs, runs) in rows {
        let base = &runs[0];
        let base_total = base.dir.upgrades + base.dir.invalidations_requested;
        for r in runs {
            let gi = 100.0 * r.dir.upgrades as f64 / base_total.max(1) as f64;
            let iv = 100.0 * r.dir.invalidations_requested as f64 / base_total.max(1) as f64;
            let _ = writeln!(
                s,
                "{:>6} {:>9} | {:>12.1} {:>13.1} {:>7.1}",
                procs,
                r.protocol.label(),
                gi,
                iv,
                gi + iv
            );
        }
    }
    s
}

/// Table 2: occurrence of load-store sequences and migratory behaviour in
/// the OLTP workload, split by component.
pub fn render_table2(base: &RunStats) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table 2: load-store occurrence in OLTP (Baseline run) =="
    );
    let _ = writeln!(
        s,
        "{:<38} {:>8} {:>10} {:>8} {:>8}",
        "fraction of accesses", "App", "Libraries", "OS", "Total"
    );
    let row1: Vec<f64> = Component::ALL
        .iter()
        .map(|&c| 100.0 * base.oracle.ls_fraction(Some(c)))
        .chain([100.0 * base.oracle.ls_fraction(None)])
        .collect();
    let row2: Vec<f64> = Component::ALL
        .iter()
        .map(|&c| 100.0 * base.oracle.migratory_fraction(Some(c)))
        .chain([100.0 * base.oracle.migratory_fraction(None)])
        .collect();
    let _ = writeln!(
        s,
        "{:<38} {:>7.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
        "load-store of all global write actions", row1[0], row1[1], row1[2], row1[3]
    );
    let _ = writeln!(
        s,
        "{:<38} {:>7.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
        "migratory of load-store sequences", row2[0], row2[1], row2[2], row2[3]
    );
    s
}

/// Table 3: coverage of LS and AD for load-store and migratory sequences.
pub fn render_table3(ls: &RunStats, ad: &RunStats) -> String {
    assert_eq!(ls.protocol, ProtocolKind::Ls);
    assert_eq!(ad.protocol, ProtocolKind::Ad);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table 3: removed ownership acquisitions (coverage) =="
    );
    let _ = writeln!(
        s,
        "{:<10} {:>12} {:>11}",
        "Technique", "Load-Store", "Migratory"
    );
    for r in [ls, ad] {
        let _ = writeln!(
            s,
            "{:<10} {:>11.1}% {:>10.1}%",
            r.protocol.label(),
            100.0 * r.oracle.ls_coverage(),
            100.0 * r.oracle.migratory_coverage()
        );
    }
    s
}

/// Table 4: impact of cache block size on the fraction of false-sharing
/// misses. Each row pairs a block size with a Baseline run at that size.
pub fn render_table4(rows: &[(u64, RunStats)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table 4: false-sharing misses vs block size (OLTP) =="
    );
    let mut top = String::from("Block size (Bytes)   ");
    let mut bot = String::from("False sharing misses ");
    for (bs, r) in rows {
        let _ = write!(top, "{:>8}", bs);
        let _ = write!(bot, "{:>7.1}%", 100.0 * r.false_sharing.false_fraction());
    }
    let _ = writeln!(s, "{top}");
    let _ = writeln!(s, "{bot}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalized::Triptych;
    use ccsim_engine::SimBuilder;
    use ccsim_types::MachineConfig;

    fn toy_run(kind: ProtocolKind) -> RunStats {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(kind));
        let a = b.alloc().alloc_words(4);
        for _ in 0..2 {
            b.spawn(move |p| {
                for _ in 0..20 {
                    p.fetch_add(a, 1);
                    p.busy(20);
                }
            });
        }
        b.run()
    }

    #[test]
    fn triptych_renders_all_protocols() {
        let runs: Vec<RunStats> = ProtocolKind::ALL.iter().map(|&k| toy_run(k)).collect();
        let t = Triptych::new("TOY", &runs);
        let out = render_triptych(&t);
        assert!(out.contains("== TOY =="));
        assert!(out.contains("Baseline"));
        assert!(out.contains("AD"));
        assert!(out.contains("LS"));
        assert!(out.contains("Normalized execution time"));
        assert!(out.contains("Normalized traffic bytes"));
        assert!(out.contains("Normalized global read misses"));
    }

    #[test]
    fn fig5_renders_rows_per_proc_count() {
        let runs: Vec<RunStats> = ProtocolKind::ALL.iter().map(|&k| toy_run(k)).collect();
        let out = render_fig5(&[(4, runs)]);
        assert!(out.contains("global-inv's"));
        assert_eq!(out.lines().filter(|l| l.contains("| ")).count(), 3 + 1);
    }

    #[test]
    fn table_renders_do_not_panic() {
        let base = toy_run(ProtocolKind::Baseline);
        let ad = toy_run(ProtocolKind::Ad);
        let ls = toy_run(ProtocolKind::Ls);
        let t2 = render_table2(&base);
        assert!(t2.contains("Total"));
        let t3 = render_table3(&ls, &ad);
        assert!(t3.contains("Load-Store"));
        let t4 = render_table4(&[(16, base)]);
        assert!(t4.contains("16"));
    }

    #[test]
    fn bar_scales_with_value() {
        assert_eq!(bar(1.0, 3.0).chars().count(), 3);
        assert_eq!(bar(0.5, 10.0).chars().count(), 5);
        assert_eq!(bar(1.0, 0.0).chars().count(), 0);
    }
}
