//! Result aggregation, normalization and paper-style rendering.
//!
//! The paper presents every application as a *triptych* (Figures 3, 4, 6,
//! 7): normalized execution time (busy / read stall / write stall),
//! normalized message counts (read / write / other), and normalized global
//! read misses by home-state class — each as three bars (Baseline, AD, LS)
//! normalized to Baseline = 100. Figure 5 shows invalidation traffic
//! (ownership acquisitions vs invalidation messages) across processor
//! counts. This crate renders all of those as aligned ASCII charts and
//! exports machine-readable JSON for EXPERIMENTS.md.

pub mod export;
pub mod figures;
pub mod normalized;

pub use export::{
    AnalysisSummary, ChaosSummary, ModelCheckSummary, RaceSummary, RunSummary, ServeClassLatency,
    ServeRow, ServeSummary, VerifySummary, SERVE_SCHEMA,
};
pub use figures::{render_fig5, render_table2, render_table3, render_table4, render_triptych};
pub use normalized::{NormalizedRun, Triptych};
