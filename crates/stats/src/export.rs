//! Machine-readable export of run statistics (JSON), consumed by the
//! reproduction harness to assemble EXPERIMENTS.md.

use ccsim_engine::{Component, RunStats};
use ccsim_types::MsgClass;
use ccsim_util::{FromJson, Json, ToJson};

/// Flat, serializable summary of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    pub protocol: String,
    pub nodes: u16,
    pub block_bytes: u64,
    pub exec_cycles: u64,
    pub busy: u64,
    pub read_stall: u64,
    pub write_stall: u64,
    pub traffic_read_bytes: u64,
    pub traffic_write_bytes: u64,
    pub traffic_other_bytes: u64,
    pub traffic_messages: u64,
    pub global_reads: u64,
    pub read_class: [u64; 4],
    pub upgrades: u64,
    pub write_misses: u64,
    pub invalidations: u64,
    pub invalidations_per_shared_write: f64,
    pub exclusive_grants: u64,
    pub silent_stores: u64,
    pub retries: u64,
    /// Oracle: [global_writes, ls_writes, migratory_writes] per component
    /// App/Lib/Os and total.
    pub oracle_app: [u64; 3],
    pub oracle_lib: [u64; 3],
    pub oracle_os: [u64; 3],
    pub ls_fraction: f64,
    pub migratory_fraction: f64,
    pub ls_coverage: f64,
    pub migratory_coverage: f64,
    pub false_sharing_fraction: f64,
}

impl RunSummary {
    pub fn from_stats(r: &RunStats) -> Self {
        let comp = |c: Component| {
            let k = r.oracle.component(c);
            [k.global_writes, k.ls_writes, k.migratory_writes]
        };
        RunSummary {
            protocol: r.protocol.label().to_string(),
            nodes: r.config.nodes,
            block_bytes: r.config.block_bytes(),
            exec_cycles: r.exec_cycles,
            busy: r.busy(),
            read_stall: r.read_stall(),
            write_stall: r.write_stall(),
            traffic_read_bytes: r.traffic.class(MsgClass::Read).bytes,
            traffic_write_bytes: r.traffic.class(MsgClass::Write).bytes,
            traffic_other_bytes: r.traffic.class(MsgClass::Other).bytes,
            traffic_messages: r.traffic.total_messages(),
            global_reads: r.dir.global_reads,
            read_class: r.dir.read_class,
            upgrades: r.dir.upgrades,
            write_misses: r.dir.write_misses,
            invalidations: r.dir.invalidations_requested,
            invalidations_per_shared_write: r.invalidations_per_shared_write(),
            exclusive_grants: r.dir.exclusive_grants,
            silent_stores: r.machine.silent_stores,
            retries: r.machine.retries,
            oracle_app: comp(Component::App),
            oracle_lib: comp(Component::Lib),
            oracle_os: comp(Component::Os),
            ls_fraction: r.oracle.ls_fraction(None),
            migratory_fraction: r.oracle.migratory_fraction(None),
            ls_coverage: r.oracle.ls_coverage(),
            migratory_coverage: r.oracle.migratory_coverage(),
            false_sharing_fraction: r.false_sharing.false_fraction(),
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`RunSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("nodes", self.nodes.to_json()),
            ("block_bytes", self.block_bytes.to_json()),
            ("exec_cycles", self.exec_cycles.to_json()),
            ("busy", self.busy.to_json()),
            ("read_stall", self.read_stall.to_json()),
            ("write_stall", self.write_stall.to_json()),
            ("traffic_read_bytes", self.traffic_read_bytes.to_json()),
            ("traffic_write_bytes", self.traffic_write_bytes.to_json()),
            ("traffic_other_bytes", self.traffic_other_bytes.to_json()),
            ("traffic_messages", self.traffic_messages.to_json()),
            ("global_reads", self.global_reads.to_json()),
            ("read_class", self.read_class.to_json()),
            ("upgrades", self.upgrades.to_json()),
            ("write_misses", self.write_misses.to_json()),
            ("invalidations", self.invalidations.to_json()),
            (
                "invalidations_per_shared_write",
                self.invalidations_per_shared_write.to_json(),
            ),
            ("exclusive_grants", self.exclusive_grants.to_json()),
            ("silent_stores", self.silent_stores.to_json()),
            ("retries", self.retries.to_json()),
            ("oracle_app", self.oracle_app.to_json()),
            ("oracle_lib", self.oracle_lib.to_json()),
            ("oracle_os", self.oracle_os.to_json()),
            ("ls_fraction", self.ls_fraction.to_json()),
            ("migratory_fraction", self.migratory_fraction.to_json()),
            ("ls_coverage", self.ls_coverage.to_json()),
            ("migratory_coverage", self.migratory_coverage.to_json()),
            (
                "false_sharing_fraction",
                self.false_sharing_fraction.to_json(),
            ),
        ])
    }
}

impl FromJson for RunSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(RunSummary {
            protocol: j.field("protocol")?,
            nodes: j.field("nodes")?,
            block_bytes: j.field("block_bytes")?,
            exec_cycles: j.field("exec_cycles")?,
            busy: j.field("busy")?,
            read_stall: j.field("read_stall")?,
            write_stall: j.field("write_stall")?,
            traffic_read_bytes: j.field("traffic_read_bytes")?,
            traffic_write_bytes: j.field("traffic_write_bytes")?,
            traffic_other_bytes: j.field("traffic_other_bytes")?,
            traffic_messages: j.field("traffic_messages")?,
            global_reads: j.field("global_reads")?,
            read_class: j.field("read_class")?,
            upgrades: j.field("upgrades")?,
            write_misses: j.field("write_misses")?,
            invalidations: j.field("invalidations")?,
            invalidations_per_shared_write: j.field("invalidations_per_shared_write")?,
            exclusive_grants: j.field("exclusive_grants")?,
            silent_stores: j.field("silent_stores")?,
            retries: j.field("retries")?,
            oracle_app: j.field("oracle_app")?,
            oracle_lib: j.field("oracle_lib")?,
            oracle_os: j.field("oracle_os")?,
            ls_fraction: j.field("ls_fraction")?,
            migratory_fraction: j.field("migratory_fraction")?,
            ls_coverage: j.field("ls_coverage")?,
            migratory_coverage: j.field("migratory_coverage")?,
            false_sharing_fraction: j.field("false_sharing_fraction")?,
        })
    }
}

/// Flat, serializable summary of one bounded model-checking run
/// (`ccsim-model`), exported through the same canonical-JSON path as
/// [`RunSummary`] so state-space metrics land next to performance metrics
/// in the harness's artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelCheckSummary {
    pub protocol: String,
    pub nodes: u16,
    pub blocks: u8,
    pub max_ops: u8,
    /// Unique states visited.
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Successors already in the visited set.
    pub dedup_hits: u64,
    /// Peak BFS frontier size.
    pub max_frontier: u64,
    /// Deepest state reached.
    pub max_depth: u32,
    pub wall_ms: u64,
    /// Order-independent fingerprint of the visited state set (XOR of
    /// fnv1a64 over canonical encodings) — equal state spaces compare
    /// equal across runs and machines.
    pub state_fingerprint: u64,
    /// Empty = exploration clean; otherwise the violation description.
    pub violation: String,
}

impl ModelCheckSummary {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`ModelCheckSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for ModelCheckSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("nodes", self.nodes.to_json()),
            ("blocks", self.blocks.to_json()),
            ("max_ops", self.max_ops.to_json()),
            ("states", self.states.to_json()),
            ("transitions", self.transitions.to_json()),
            ("dedup_hits", self.dedup_hits.to_json()),
            ("max_frontier", self.max_frontier.to_json()),
            ("max_depth", self.max_depth.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("state_fingerprint", self.state_fingerprint.to_json()),
            ("violation", self.violation.to_json()),
        ])
    }
}

impl FromJson for ModelCheckSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ModelCheckSummary {
            protocol: j.field("protocol")?,
            nodes: j.field("nodes")?,
            blocks: j.field("blocks")?,
            max_ops: j.field("max_ops")?,
            states: j.field("states")?,
            transitions: j.field("transitions")?,
            dedup_hits: j.field("dedup_hits")?,
            max_frontier: j.field("max_frontier")?,
            max_depth: j.field("max_depth")?,
            wall_ms: j.field("wall_ms")?,
            state_fingerprint: j.field("state_fingerprint")?,
            violation: j.field("violation")?,
        })
    }
}

/// Flat, serializable summary of one parametric verification run
/// (`ccsim verify`): abstract reachability over the counter-abstraction
/// lattice, plus the refinement verdict when an abstract counterexample
/// was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifySummary {
    pub protocol: String,
    /// Unique abstract states reached.
    pub abstract_states: u64,
    /// Concrete probe transitions executed across all materializations.
    pub transitions: u64,
    /// Transitions that first saturated a sharer counter to ω.
    pub widenings: u64,
    /// Deepest abstract state reached.
    pub max_depth: u32,
    pub wall_ms: u64,
    /// Order-independent fingerprint of the abstract reachable set.
    pub fingerprint: u64,
    /// True when the fixpoint was reached with zero violations — a proof
    /// for every node count, not just the bounded configurations.
    pub parametric: bool,
    /// Empty = clean; otherwise the abstract violation description.
    pub violation: String,
    /// Refinement verdict: "" (clean run), "genuine", or "spurious".
    pub refinement: String,
    /// Node count at which the counterexample concretized (0 if none).
    pub concretized_nodes: u16,
    /// Runtime invariant violations reported by the engine replay of the
    /// concretized counterexample (0 if none was replayed).
    pub engine_violations: u64,
}

impl VerifySummary {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`VerifySummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for VerifySummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("abstract_states", self.abstract_states.to_json()),
            ("transitions", self.transitions.to_json()),
            ("widenings", self.widenings.to_json()),
            ("max_depth", self.max_depth.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("fingerprint", self.fingerprint.to_json()),
            ("parametric", self.parametric.to_json()),
            ("violation", self.violation.to_json()),
            ("refinement", self.refinement.to_json()),
            ("concretized_nodes", self.concretized_nodes.to_json()),
            ("engine_violations", self.engine_violations.to_json()),
        ])
    }
}

impl FromJson for VerifySummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(VerifySummary {
            protocol: j.field("protocol")?,
            abstract_states: j.field("abstract_states")?,
            transitions: j.field("transitions")?,
            widenings: j.field("widenings")?,
            max_depth: j.field("max_depth")?,
            wall_ms: j.field("wall_ms")?,
            fingerprint: j.field("fingerprint")?,
            parametric: j.field("parametric")?,
            violation: j.field("violation")?,
            refinement: j.field("refinement")?,
            concretized_nodes: j.field("concretized_nodes")?,
            engine_violations: j.field("engine_violations")?,
        })
    }
}

/// Flat, serializable output of the static trace analyzer (`ccsim analyze`,
/// `ccsim-lint` pass 2). Pairs the paper-taxonomy block classification
/// (computed on an idealized infinite-cache stream pass) with a
/// finite-cache coherence replay whose counters match the engine's LS
/// oracle exactly on quantum-deterministic runs.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisSummary {
    pub protocol: String,
    pub nodes: u16,
    pub block_bytes: u64,
    /// Total trace events (including Busy/SetComponent bookkeeping).
    pub events: u64,
    /// Memory accesses analyzed (loads + stores + load-exclusives).
    pub accesses: u64,
    /// Distinct blocks touched.
    pub blocks: u64,
    // Paper-taxonomy sharing-pattern labels. private/read_shared/
    // producer_consumer/load_store/irregular partition the touched blocks;
    // migratory is a strict subset of load_store, and the false-sharing
    // candidate label is orthogonal to all of them.
    pub private_blocks: u64,
    pub read_shared_blocks: u64,
    pub producer_consumer_blocks: u64,
    pub load_store_blocks: u64,
    /// Strict subset of `load_store_blocks`: LS blocks whose sequences
    /// migrate between processors.
    pub migratory_blocks: u64,
    pub irregular_blocks: u64,
    /// Orthogonal label: multi-node blocks whose per-node word footprints
    /// never overlap (candidates for false sharing at this block size).
    pub false_sharing_candidates: u64,
    // Idealized (infinite-cache) action counts from the stream pass.
    pub ideal_global_reads: u64,
    pub ideal_global_writes: u64,
    pub ideal_ls_writes: u64,
    pub ideal_migratory_writes: u64,
    // Finite-cache coherence replay (exact match with the engine oracle).
    pub global_reads: u64,
    pub global_writes: u64,
    pub ls_writes: u64,
    pub migratory_writes: u64,
    pub eliminated: u64,
    pub eliminated_ls: u64,
    pub eliminated_migratory: u64,
    pub silent_stores: u64,
    /// Static upper bound on the ownership transactions the LS protocol can
    /// eliminate for this trace and geometry: every load-store-sequence
    /// write's acquisition is eliminable in the limit, so this is
    /// `ls_writes`; the engine's `eliminated_ls` never exceeds it.
    pub ls_upper_bound: u64,
    pub false_sharing_fraction: f64,
}

impl AnalysisSummary {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`AnalysisSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for AnalysisSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("nodes", self.nodes.to_json()),
            ("block_bytes", self.block_bytes.to_json()),
            ("events", self.events.to_json()),
            ("accesses", self.accesses.to_json()),
            ("blocks", self.blocks.to_json()),
            ("private_blocks", self.private_blocks.to_json()),
            ("read_shared_blocks", self.read_shared_blocks.to_json()),
            (
                "producer_consumer_blocks",
                self.producer_consumer_blocks.to_json(),
            ),
            ("load_store_blocks", self.load_store_blocks.to_json()),
            ("migratory_blocks", self.migratory_blocks.to_json()),
            ("irregular_blocks", self.irregular_blocks.to_json()),
            (
                "false_sharing_candidates",
                self.false_sharing_candidates.to_json(),
            ),
            ("ideal_global_reads", self.ideal_global_reads.to_json()),
            ("ideal_global_writes", self.ideal_global_writes.to_json()),
            ("ideal_ls_writes", self.ideal_ls_writes.to_json()),
            (
                "ideal_migratory_writes",
                self.ideal_migratory_writes.to_json(),
            ),
            ("global_reads", self.global_reads.to_json()),
            ("global_writes", self.global_writes.to_json()),
            ("ls_writes", self.ls_writes.to_json()),
            ("migratory_writes", self.migratory_writes.to_json()),
            ("eliminated", self.eliminated.to_json()),
            ("eliminated_ls", self.eliminated_ls.to_json()),
            ("eliminated_migratory", self.eliminated_migratory.to_json()),
            ("silent_stores", self.silent_stores.to_json()),
            ("ls_upper_bound", self.ls_upper_bound.to_json()),
            (
                "false_sharing_fraction",
                self.false_sharing_fraction.to_json(),
            ),
        ])
    }
}

impl FromJson for AnalysisSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(AnalysisSummary {
            protocol: j.field("protocol")?,
            nodes: j.field("nodes")?,
            block_bytes: j.field("block_bytes")?,
            events: j.field("events")?,
            accesses: j.field("accesses")?,
            blocks: j.field("blocks")?,
            private_blocks: j.field("private_blocks")?,
            read_shared_blocks: j.field("read_shared_blocks")?,
            producer_consumer_blocks: j.field("producer_consumer_blocks")?,
            load_store_blocks: j.field("load_store_blocks")?,
            migratory_blocks: j.field("migratory_blocks")?,
            irregular_blocks: j.field("irregular_blocks")?,
            false_sharing_candidates: j.field("false_sharing_candidates")?,
            ideal_global_reads: j.field("ideal_global_reads")?,
            ideal_global_writes: j.field("ideal_global_writes")?,
            ideal_ls_writes: j.field("ideal_ls_writes")?,
            ideal_migratory_writes: j.field("ideal_migratory_writes")?,
            global_reads: j.field("global_reads")?,
            global_writes: j.field("global_writes")?,
            ls_writes: j.field("ls_writes")?,
            migratory_writes: j.field("migratory_writes")?,
            eliminated: j.field("eliminated")?,
            eliminated_ls: j.field("eliminated_ls")?,
            eliminated_migratory: j.field("eliminated_migratory")?,
            silent_stores: j.field("silent_stores")?,
            ls_upper_bound: j.field("ls_upper_bound")?,
            false_sharing_fraction: j.field("false_sharing_fraction")?,
        })
    }
}

/// Flat, serializable summary of one SC-conformance analysis (`ccsim race`,
/// `ccsim-race`). Counts describe the size of the checked problem (so a
/// "clean" verdict is auditable: zero checked grants would also be clean);
/// the fingerprint pins the sequential witness for determinism comparisons.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceSummary {
    pub protocol: String,
    pub nodes: u16,
    /// Events in the analyzed log (including `Init` seeds).
    pub events: u64,
    /// Program accesses (reads + read-exclusives + writes).
    pub accesses: u64,
    pub reads: u64,
    pub writes: u64,
    /// Distinct coherence blocks replayed by the shadow pass.
    pub blocks: u64,
    /// Distinct words tracked by the happens-before pass.
    pub words: u64,
    // Happens-before graph size, by edge origin.
    pub po_edges: u64,
    pub rf_edges: u64,
    pub co_edges: u64,
    pub fr_edges: u64,
    pub ack_edges: u64,
    // How much the shadow replay actually verified.
    pub excl_grants_checked: u64,
    pub notls_checked: u64,
    pub ls_writes_checked: u64,
    /// True when the happens-before graph is acyclic and a total sequential
    /// order was exhibited.
    pub sc_witness: bool,
    /// fnv1a64 fingerprint of the witness order (0 when `sc_witness` is
    /// false). Bit-exact across runs on deterministic workloads.
    pub sc_order_fingerprint: u64,
    /// Distinct violations reported (post-dedup).
    pub violations: u64,
    /// Further violations suppressed by the per-kind/per-location cap.
    pub suppressed: u64,
    /// Empty = conformant; otherwise the first violation, rendered.
    pub first_violation: String,
}

impl RaceSummary {
    pub fn from_report(protocol: &str, nodes: u16, r: &ccsim_race::RaceReport) -> Self {
        let c = &r.counts;
        RaceSummary {
            protocol: protocol.to_string(),
            nodes,
            events: c.events,
            accesses: c.accesses,
            reads: c.reads,
            writes: c.writes,
            blocks: c.blocks,
            words: c.words,
            po_edges: c.po_edges,
            rf_edges: c.rf_edges,
            co_edges: c.co_edges,
            fr_edges: c.fr_edges,
            ack_edges: c.ack_edges,
            excl_grants_checked: c.excl_grants_checked,
            notls_checked: c.notls_checked,
            ls_writes_checked: c.ls_writes_checked,
            sc_witness: r.sc_fingerprint.is_some(),
            sc_order_fingerprint: r.sc_fingerprint.unwrap_or(0),
            violations: r.violations.len() as u64,
            suppressed: r.suppressed,
            first_violation: r
                .first_violation()
                .map(|v| format!("{}: {}", v.kind.label(), v.detail))
                .unwrap_or_default(),
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`RaceSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for RaceSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("nodes", self.nodes.to_json()),
            ("events", self.events.to_json()),
            ("accesses", self.accesses.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("blocks", self.blocks.to_json()),
            ("words", self.words.to_json()),
            ("po_edges", self.po_edges.to_json()),
            ("rf_edges", self.rf_edges.to_json()),
            ("co_edges", self.co_edges.to_json()),
            ("fr_edges", self.fr_edges.to_json()),
            ("ack_edges", self.ack_edges.to_json()),
            ("excl_grants_checked", self.excl_grants_checked.to_json()),
            ("notls_checked", self.notls_checked.to_json()),
            ("ls_writes_checked", self.ls_writes_checked.to_json()),
            ("sc_witness", self.sc_witness.to_json()),
            ("sc_order_fingerprint", self.sc_order_fingerprint.to_json()),
            ("violations", self.violations.to_json()),
            ("suppressed", self.suppressed.to_json()),
            ("first_violation", self.first_violation.to_json()),
        ])
    }
}

impl FromJson for RaceSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(RaceSummary {
            protocol: j.field("protocol")?,
            nodes: j.field("nodes")?,
            events: j.field("events")?,
            accesses: j.field("accesses")?,
            reads: j.field("reads")?,
            writes: j.field("writes")?,
            blocks: j.field("blocks")?,
            words: j.field("words")?,
            po_edges: j.field("po_edges")?,
            rf_edges: j.field("rf_edges")?,
            co_edges: j.field("co_edges")?,
            fr_edges: j.field("fr_edges")?,
            ack_edges: j.field("ack_edges")?,
            excl_grants_checked: j.field("excl_grants_checked")?,
            notls_checked: j.field("notls_checked")?,
            ls_writes_checked: j.field("ls_writes_checked")?,
            sc_witness: j.field("sc_witness")?,
            sc_order_fingerprint: j.field("sc_order_fingerprint")?,
            violations: j.field("violations")?,
            suppressed: j.field("suppressed")?,
            first_violation: j.field("first_violation")?,
        })
    }
}

/// Flat, serializable summary of one chaos sweep (`ccsim chaos`,
/// `ccsim-harness::chaos`). The counts make a "clean" verdict auditable: a
/// sweep with zero cells — or zero retransmits, meaning the fault injector
/// never fired — proves nothing, and the consumer can see that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Grid cells checked (workloads × protocols × rates × seeds).
    pub cells: u64,
    /// Cells that diverged from their fault-free run.
    pub failures: u64,
    /// Cells that were additionally cross-checked by the SC-conformance
    /// analyzer (witness fingerprint equality with the fault-free run).
    pub sc_checked: u64,
    /// Total transport retransmissions across all faulty replays — proof
    /// the interconnect actually dropped and duplicated messages.
    pub retransmits: u64,
    /// Total NACK-and-retry recoveries across all faulty replays.
    pub nacks: u64,
    /// Program accesses in the shrunken minimal witness (0 = no witness,
    /// i.e. the sweep was clean or shrinking was disabled).
    pub witness_accesses: u64,
    /// Protocol of the witness cell (empty when no witness).
    pub witness_protocol: String,
    /// First divergence of the witness cell, rendered (empty when none).
    pub witness_failure: String,
}

impl ChaosSummary {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`ChaosSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

impl ToJson for ChaosSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cells", self.cells.to_json()),
            ("failures", self.failures.to_json()),
            ("sc_checked", self.sc_checked.to_json()),
            ("retransmits", self.retransmits.to_json()),
            ("nacks", self.nacks.to_json()),
            ("witness_accesses", self.witness_accesses.to_json()),
            ("witness_protocol", self.witness_protocol.to_json()),
            ("witness_failure", self.witness_failure.to_json()),
        ])
    }
}

impl FromJson for ChaosSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ChaosSummary {
            cells: j.field("cells")?,
            failures: j.field("failures")?,
            sc_checked: j.field("sc_checked")?,
            retransmits: j.field("retransmits")?,
            nacks: j.field("nacks")?,
            witness_accesses: j.field("witness_accesses")?,
            witness_protocol: j.field("witness_protocol")?,
            witness_failure: j.field("witness_failure")?,
        })
    }
}

/// Schema tag stamped into every [`ServeSummary`] document.
pub const SERVE_SCHEMA: &str = "ccsim-serve-v1";

/// Latency percentiles of one transaction class in one serve run. All
/// values are simulated cycles from log-bucketed integer histograms —
/// deterministic and exactly reproducible, never wall-clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeClassLatency {
    /// Class label: `point_read` / `rmw` / `scan` / `append`.
    pub class: String,
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl ToJson for ServeClassLatency {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("class", self.class.to_json()),
            ("count", self.count.to_json()),
            ("p50", self.p50.to_json()),
            ("p90", self.p90.to_json()),
            ("p99", self.p99.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

impl FromJson for ServeClassLatency {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ServeClassLatency {
            class: j.field("class")?,
            count: j.field("count")?,
            p50: j.field("p50")?,
            p90: j.field("p90")?,
            p99: j.field("p99")?,
            max: j.field("max")?,
        })
    }
}

/// One protocol's row in a serve comparison: service-level numbers (stop
/// reason, throughput, queue behaviour, per-class latency) next to the
/// coherence-level numbers the paper cares about (ownership acquisitions,
/// invalidations, write stall) so the overhead→latency link is in one
/// record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRow {
    pub protocol: String,
    /// Ward that ended the run: `converged` / `max-cycles` /
    /// `queue-divergence`.
    pub stop: String,
    pub cycles: u64,
    pub admitted: u64,
    pub completed: u64,
    pub dropped: u64,
    pub throughput_per_mcycle: u64,
    pub max_queue_depth: u64,
    pub hot_row_conflicts: u64,
    pub ownership_acquisitions: u64,
    pub invalidations: u64,
    pub write_stall: u64,
    pub traffic_bytes: u64,
    pub classes: Vec<ServeClassLatency>,
}

impl ToJson for ServeRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.to_json()),
            ("stop", self.stop.to_json()),
            ("cycles", self.cycles.to_json()),
            ("admitted", self.admitted.to_json()),
            ("completed", self.completed.to_json()),
            ("dropped", self.dropped.to_json()),
            (
                "throughput_per_mcycle",
                self.throughput_per_mcycle.to_json(),
            ),
            ("max_queue_depth", self.max_queue_depth.to_json()),
            ("hot_row_conflicts", self.hot_row_conflicts.to_json()),
            (
                "ownership_acquisitions",
                self.ownership_acquisitions.to_json(),
            ),
            ("invalidations", self.invalidations.to_json()),
            ("write_stall", self.write_stall.to_json()),
            ("traffic_bytes", self.traffic_bytes.to_json()),
            ("classes", self.classes.to_json()),
        ])
    }
}

impl FromJson for ServeRow {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ServeRow {
            protocol: j.field("protocol")?,
            stop: j.field("stop")?,
            cycles: j.field("cycles")?,
            admitted: j.field("admitted")?,
            completed: j.field("completed")?,
            dropped: j.field("dropped")?,
            throughput_per_mcycle: j.field("throughput_per_mcycle")?,
            max_queue_depth: j.field("max_queue_depth")?,
            hot_row_conflicts: j.field("hot_row_conflicts")?,
            ownership_acquisitions: j.field("ownership_acquisitions")?,
            invalidations: j.field("invalidations")?,
            write_stall: j.field("write_stall")?,
            traffic_bytes: j.field("traffic_bytes")?,
            classes: j.field("classes")?,
        })
    }
}

/// Flat, serializable summary of one serve sweep (`ccsim serve`,
/// `ccsim-serve`): the offered-load configuration echoed back (so the
/// document is self-describing) plus one [`ServeRow`] per protocol. The
/// whole document is a pure function of `(machine, serve config)` — the
/// determinism suite pins its bytes across reruns and thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSummary {
    /// Always [`SERVE_SCHEMA`]; parsing rejects anything else.
    pub schema: String,
    pub nodes: u16,
    pub clients: u64,
    pub skew_per_mille: u32,
    pub rate_per_mcycle: u64,
    /// Per-mille class mix, [`ServeClassLatency::class`] label order.
    pub mix_per_mille: [u16; 4],
    pub seed: u64,
    pub rows: Vec<ServeRow>,
}

impl ServeSummary {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parse a summary previously written by [`ServeSummary::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let s: ServeSummary = FromJson::from_json(&Json::parse(text)?)?;
        if s.schema != SERVE_SCHEMA {
            return Err(format!(
                "serve: unknown schema {:?} (expected {SERVE_SCHEMA:?})",
                s.schema
            ));
        }
        Ok(s)
    }
}

impl ToJson for ServeSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", self.schema.to_json()),
            ("nodes", self.nodes.to_json()),
            ("clients", self.clients.to_json()),
            ("skew_per_mille", self.skew_per_mille.to_json()),
            ("rate_per_mcycle", self.rate_per_mcycle.to_json()),
            ("mix_per_mille", self.mix_per_mille.to_json()),
            ("seed", self.seed.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl FromJson for ServeSummary {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ServeSummary {
            schema: j.field("schema")?,
            nodes: j.field("nodes")?,
            clients: j.field("clients")?,
            skew_per_mille: j.field("skew_per_mille")?,
            rate_per_mcycle: j.field("rate_per_mcycle")?,
            mix_per_mille: j.field("mix_per_mille")?,
            seed: j.field("seed")?,
            rows: j.field("rows")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::SimBuilder;
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn toy_run() -> RunStats {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Ls));
        let a = b.alloc().alloc_words(1);
        b.spawn(move |p| {
            let v = p.load(a);
            p.store(a, v + 1);
        });
        b.run()
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = RunSummary::from_stats(&toy_run());
        let json = s.to_json();
        let back = RunSummary::parse(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.protocol, "LS");
        assert_eq!(back.nodes, 4);
    }

    #[test]
    fn model_check_summary_round_trips_through_json() {
        let s = ModelCheckSummary {
            protocol: "LS".into(),
            nodes: 3,
            blocks: 1,
            max_ops: 4,
            states: 1234,
            transitions: 5678,
            dedup_hits: 42,
            max_frontier: 99,
            max_depth: 12,
            wall_ms: 7,
            // Bit-exactness of the u64 fingerprint matters: Json keeps a
            // dedicated U64 variant, so no f64 round-trip loss.
            state_fingerprint: u64::MAX - 1,
            violation: String::new(),
        };
        let back = ModelCheckSummary::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.state_fingerprint, u64::MAX - 1);
    }

    #[test]
    fn chaos_summary_round_trips_through_json() {
        let s = ChaosSummary {
            cells: 27,
            failures: 1,
            sc_checked: 27,
            retransmits: 4242,
            nacks: 199,
            witness_accesses: 9,
            witness_protocol: "Baseline".into(),
            witness_failure: "invariant violation: SWMR".into(),
        };
        let back = ChaosSummary::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.witness_accesses, 9);
    }

    #[test]
    fn analysis_summary_round_trips_through_json() {
        let s = AnalysisSummary {
            protocol: "LS".into(),
            nodes: 4,
            block_bytes: 64,
            events: 100,
            accesses: 80,
            blocks: 7,
            private_blocks: 2,
            read_shared_blocks: 1,
            producer_consumer_blocks: 1,
            load_store_blocks: 2,
            migratory_blocks: 1,
            irregular_blocks: 1,
            false_sharing_candidates: 1,
            ideal_global_reads: 10,
            ideal_global_writes: 9,
            ideal_ls_writes: 8,
            ideal_migratory_writes: 3,
            global_reads: 12,
            global_writes: 11,
            ls_writes: 9,
            migratory_writes: 4,
            eliminated: 5,
            eliminated_ls: 5,
            eliminated_migratory: 2,
            silent_stores: 5,
            ls_upper_bound: 9,
            false_sharing_fraction: 0.25,
        };
        let back = AnalysisSummary::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn race_summary_round_trips_through_json() {
        let s = RaceSummary {
            protocol: "LS".into(),
            nodes: 4,
            events: 1000,
            accesses: 800,
            reads: 500,
            writes: 300,
            blocks: 40,
            words: 120,
            po_edges: 999,
            rf_edges: 500,
            co_edges: 260,
            fr_edges: 17,
            ack_edges: 123,
            excl_grants_checked: 21,
            notls_checked: 4,
            ls_writes_checked: 300,
            sc_witness: true,
            // Bit-exactness of the u64 fingerprint matters: Json keeps a
            // dedicated U64 variant, so no f64 round-trip loss.
            sc_order_fingerprint: u64::MAX - 3,
            violations: 0,
            suppressed: 0,
            first_violation: String::new(),
        };
        let back = RaceSummary::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.sc_order_fingerprint, u64::MAX - 3);
    }

    #[test]
    fn race_summary_from_report_matches_the_analysis() {
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let mut b = SimBuilder::new(cfg);
        b.capture_events();
        let a = b.alloc().alloc_words(1);
        b.spawn(move |p| {
            let v = p.load(a);
            p.store(a, v + 1);
        });
        let mut done = b.run_full();
        let log = done.take_event_log().unwrap();
        let report = ccsim_race::check(&cfg.protocol, &log);
        let s = RaceSummary::from_report(cfg.protocol.kind.label(), cfg.nodes, &report);
        assert_eq!(s.events, report.counts.events);
        assert!(s.sc_witness, "clean toy run must have an SC witness");
        assert_eq!(s.sc_order_fingerprint, report.sc_fingerprint.unwrap());
        assert!(s.first_violation.is_empty());
    }

    #[test]
    fn serve_summary_round_trips_and_pins_its_schema() {
        let class = |name: &str, p99: u64| ServeClassLatency {
            class: name.into(),
            count: 1000,
            p50: p99 / 4,
            p90: p99 / 2,
            p99,
            max: p99 + 17,
        };
        let s = ServeSummary {
            schema: SERVE_SCHEMA.into(),
            nodes: 8,
            clients: 2_000_000,
            skew_per_mille: 990,
            rate_per_mcycle: 1600,
            mix_per_mille: [450, 300, 150, 100],
            seed: u64::MAX - 7,
            rows: vec![ServeRow {
                protocol: "LS".into(),
                stop: "converged".into(),
                cycles: 12_345_678,
                admitted: 20_000,
                completed: 19_900,
                dropped: 100,
                throughput_per_mcycle: 1612,
                max_queue_depth: 31,
                hot_row_conflicts: 420,
                ownership_acquisitions: 9_999,
                invalidations: 1_234,
                write_stall: 777_777,
                traffic_bytes: 88_888_888,
                classes: vec![class("point_read", 4_000), class("rmw", 9_000)],
            }],
        };
        let back = ServeSummary::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
        // u64 bit-exactness through the dedicated U64 Json variant.
        assert_eq!(back.seed, u64::MAX - 7);
        // A wrong schema tag is rejected, not silently accepted.
        let mut other = s.clone();
        other.schema = "ccsim-serve-v0".into();
        let err = ServeSummary::parse(&other.to_json()).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn summary_is_consistent_with_stats() {
        let r = toy_run();
        let s = RunSummary::from_stats(&r);
        assert_eq!(s.exec_cycles, r.exec_cycles);
        assert_eq!(s.busy + s.read_stall + s.write_stall, r.total_cycles());
        assert_eq!(s.global_reads, 1);
        assert_eq!(s.oracle_app[0], 1, "one global write");
        assert_eq!(s.oracle_app[1], 1, "which was a load-store sequence");
    }
}
