//! Golden-file test for the figure renderer: a `Triptych` built from fixed
//! `NormalizedRun` values must render byte-identically to the checked-in
//! snapshot. Catches accidental format drift (column widths, bar scaling,
//! section titles) that value-based tests cannot see.
//!
//! To update after an intentional format change, run with
//! `CCSIM_BLESS=1 cargo test -p ccsim-stats --test figures_golden` and
//! commit the rewritten `tests/golden/triptych.txt`.

use ccsim_stats::{render_triptych, NormalizedRun, Triptych};
use ccsim_types::ProtocolKind;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/triptych.txt");

fn run(protocol: ProtocolKind, scale: f64) -> NormalizedRun {
    NormalizedRun {
        protocol,
        busy: 50.0 * scale,
        read_stall: 30.0 * scale,
        write_stall: 20.0 * scale,
        traffic_read: 60.0 * scale,
        traffic_write: 30.0 * scale,
        traffic_other: 10.0 * scale,
        read_class: [50.0 * scale, 25.0 * scale, 15.0 * scale, 10.0 * scale],
    }
}

#[test]
fn triptych_rendering_matches_golden_file() {
    let t = Triptych {
        workload: "GOLDEN".to_string(),
        runs: vec![
            run(ProtocolKind::Baseline, 1.0),
            run(ProtocolKind::Ad, 0.9),
            run(ProtocolKind::Ls, 0.75),
        ],
    };
    let rendered = render_triptych(&t);
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "render_triptych drifted from the golden file; \
         re-bless with CCSIM_BLESS=1 if intentional"
    );
}
