//! Hand-computed checks of the normalization arithmetic.
//!
//! The component statistics carry private fields, so synthetic `RunStats`
//! are built through the public JSON surface: encode a real (tiny) run,
//! overwrite the numeric fields with chosen values, decode back. Every
//! expected percentage below is computed by hand from those values.

use ccsim_engine::{RunStats, SimBuilder};
use ccsim_stats::{RunSummary, Triptych};
use ccsim_types::{MachineConfig, ProtocolKind};
use ccsim_util::{FromJson, Json, ToJson};

/// Overwrite the field at `path` inside nested JSON objects.
fn set(j: &mut Json, path: &[&str], v: Json) {
    let Json::Obj(fields) = j else {
        panic!("not an object at {path:?}")
    };
    let (head, rest) = (path[0], &path[1..]);
    let slot = fields
        .iter_mut()
        .find(|(k, _)| k == head)
        .unwrap_or_else(|| panic!("no field `{head}`"));
    if rest.is_empty() {
        slot.1 = v;
    } else {
        set(&mut slot.1, rest, v);
    }
}

fn u(v: u64) -> Json {
    v.to_json()
}

/// A real run of the given protocol, used only as a valid JSON skeleton.
fn skeleton(kind: ProtocolKind) -> Json {
    let mut b = SimBuilder::new(MachineConfig::splash_baseline(kind));
    let a = b.alloc().alloc_words(1);
    b.spawn(move |p| {
        let x = p.load(a);
        p.store(a, x + 1);
    });
    b.run().to_json()
}

/// One processor with the given times; replaces the whole `per_proc` array
/// so the aggregate equals these values exactly.
fn one_proc(busy: u64, read_stall: u64, write_stall: u64) -> Json {
    Json::Arr(vec![Json::obj(vec![
        ("busy", u(busy)),
        ("read_stall", u(read_stall)),
        ("write_stall", u(write_stall)),
    ])])
}

fn synthetic(
    kind: ProtocolKind,
    times: (u64, u64, u64),
    traffic_bytes: (u64, u64, u64),
    read_class: [u64; 4],
) -> RunStats {
    let mut j = skeleton(kind);
    set(&mut j, &["per_proc"], one_proc(times.0, times.1, times.2));
    for (class, bytes) in [
        ("read", traffic_bytes.0),
        ("write", traffic_bytes.1),
        ("other", traffic_bytes.2),
    ] {
        set(&mut j, &["traffic", class, "bytes"], u(bytes));
    }
    set(
        &mut j,
        &["dir", "read_class"],
        Json::Arr(read_class.iter().map(|&x| u(x)).collect()),
    );
    set(&mut j, &["dir", "global_reads"], u(read_class.iter().sum()));
    RunStats::from_json(&j).expect("synthetic stats decode")
}

#[test]
fn triptych_percentages_match_hand_computation() {
    // Baseline totals: time 500+300+200 = 1000, traffic 600+300+100 = 1000
    // bytes, read misses 100+50+30+20 = 200.
    let base = synthetic(
        ProtocolKind::Baseline,
        (500, 300, 200),
        (600, 300, 100),
        [100, 50, 30, 20],
    );
    // Variant: time 500+250+50 = 800, traffic 500+100+50 = 650, misses 100.
    let ls = synthetic(
        ProtocolKind::Ls,
        (500, 250, 50),
        (500, 100, 50),
        [50, 25, 15, 10],
    );

    let t = Triptych::new("synthetic", &[base, ls]);
    let b = t.run(ProtocolKind::Baseline).unwrap();
    let l = t.run(ProtocolKind::Ls).unwrap();

    // Baseline normalizes to exactly 100 in every section.
    assert_eq!((b.busy, b.read_stall, b.write_stall), (50.0, 30.0, 20.0));
    assert_eq!(b.time_total(), 100.0);
    assert_eq!(
        (b.traffic_read, b.traffic_write, b.traffic_other),
        (60.0, 30.0, 10.0)
    );
    assert_eq!(b.read_class, [50.0, 25.0, 15.0, 10.0]);

    // Variant percentages, each against the *Baseline* total:
    // 500/1000, 250/1000, 50/1000 of time; 500/1000, 100/1000, 50/1000 of
    // bytes; 50/200, 25/200, 15/200, 10/200 of read misses.
    assert_eq!((l.busy, l.read_stall, l.write_stall), (50.0, 25.0, 5.0));
    assert_eq!(l.time_total(), 80.0);
    assert_eq!(
        (l.traffic_read, l.traffic_write, l.traffic_other),
        (50.0, 10.0, 5.0)
    );
    assert_eq!(l.traffic_total(), 65.0);
    assert_eq!(l.read_class, [25.0, 12.5, 7.5, 5.0]);
    assert_eq!(l.read_miss_total(), 50.0);
}

#[test]
fn zero_baseline_denominators_normalize_to_zero() {
    let base = synthetic(ProtocolKind::Baseline, (100, 0, 0), (0, 0, 0), [0, 0, 0, 0]);
    let ls = synthetic(ProtocolKind::Ls, (80, 0, 0), (10, 0, 0), [1, 0, 0, 0]);
    let t = Triptych::new("zeros", &[base, ls]);
    let l = t.run(ProtocolKind::Ls).unwrap();
    // No division by zero: zero-denominator sections report 0, time is real.
    assert_eq!(l.traffic_total(), 0.0);
    assert_eq!(l.read_miss_total(), 0.0);
    assert_eq!(l.time_total(), 80.0);
}

#[test]
fn run_summary_reflects_synthetic_values_and_round_trips() {
    let r = synthetic(
        ProtocolKind::Ad,
        (500, 300, 200),
        (600, 300, 100),
        [100, 50, 30, 20],
    );
    let s = RunSummary::from_stats(&r);
    assert_eq!(s.protocol, "AD");
    assert_eq!((s.busy, s.read_stall, s.write_stall), (500, 300, 200));
    assert_eq!(s.exec_cycles, r.exec_cycles);
    assert_eq!(
        (
            s.traffic_read_bytes,
            s.traffic_write_bytes,
            s.traffic_other_bytes
        ),
        (600, 300, 100)
    );
    assert_eq!(s.read_class, [100, 50, 30, 20]);
    assert_eq!(s.global_reads, 200);
    let back = RunSummary::parse(&s.to_json()).unwrap();
    assert_eq!(back, s);
}
