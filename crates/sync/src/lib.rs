//! Synchronization primitives built **on simulated memory**.
//!
//! These generate exactly the coherence traffic real lock implementations
//! would: a test-and-test-and-set acquire spins *in cache* (the spin loads
//! hit locally until the holder's release invalidates the line), the release
//! is an ownership acquisition, and lock handoff is the canonical migratory
//! pattern the paper's workloads exhibit around critical sections.
//!
//! All primitives are `Copy` descriptors of simulated addresses; state lives
//! in simulated memory, never in host memory.

use ccsim_engine::Proc;
use ccsim_mem::Allocator;
use ccsim_types::Addr;

/// Test-and-test-and-set spinlock with proportional backoff.
#[derive(Clone, Copy, Debug)]
pub struct SpinLock {
    word: Addr,
}

impl SpinLock {
    /// Allocate the lock word, padded to its own coherence block so lock
    /// traffic never false-shares with data.
    pub fn new(alloc: &mut Allocator, block_bytes: u64) -> Self {
        SpinLock {
            word: alloc.alloc_padded(8, block_bytes),
        }
    }

    /// Wrap an existing word (for embedding in larger structures).
    pub fn at(word: Addr) -> Self {
        SpinLock { word }
    }

    pub fn addr(&self) -> Addr {
        self.word
    }

    /// Acquire: atomic test-and-set, then spin on local loads while held.
    pub fn lock(&self, p: &Proc) {
        let mut backoff = 4u64;
        loop {
            if p.swap(self.word, 1) == 0 {
                return;
            }
            // Spin in cache until the line is invalidated by the release.
            while p.load(self.word) != 0 {
                p.busy(backoff);
                backoff = (backoff * 2).min(64);
            }
        }
    }

    /// Try once; true on success.
    pub fn try_lock(&self, p: &Proc) -> bool {
        p.swap(self.word, 1) == 0
    }

    /// Release (plain store; SC makes it globally visible immediately).
    pub fn unlock(&self, p: &Proc) {
        p.store(self.word, 0);
    }

    /// Run `f` under the lock.
    pub fn with<R>(&self, p: &Proc, f: impl FnOnce() -> R) -> R {
        self.lock(p);
        let r = f();
        self.unlock(p);
        r
    }
}

/// FIFO ticket lock: fair handoff, classic for run queues.
#[derive(Clone, Copy, Debug)]
pub struct TicketLock {
    next: Addr,
    serving: Addr,
}

impl TicketLock {
    pub fn new(alloc: &mut Allocator, block_bytes: u64) -> Self {
        // Separate blocks: the ticket counter is write-hot, the serving
        // word is read-spun.
        TicketLock {
            next: alloc.alloc_padded(8, block_bytes),
            serving: alloc.alloc_padded(8, block_bytes),
        }
    }

    pub fn lock(&self, p: &Proc) {
        let my = p.fetch_add(self.next, 1);
        while p.load(self.serving) != my {
            p.busy(8);
        }
    }

    pub fn unlock(&self, p: &Proc) {
        let s = p.load(self.serving);
        p.store(self.serving, s + 1);
    }

    pub fn with<R>(&self, p: &Proc, f: impl FnOnce() -> R) -> R {
        self.lock(p);
        let r = f();
        self.unlock(p);
        r
    }
}

/// MCS queue lock (Mellor-Crummey & Scott) — the canonical NUMA-friendly
/// lock of the paper's era: each waiter spins on its *own* cache block, so
/// a release invalidates exactly one spinner instead of the whole pack.
///
/// Queue nodes live in simulated memory, one padded block per (lock,
/// processor) pair.
#[derive(Clone, Copy, Debug)]
pub struct McsLock {
    /// Tail pointer: 0 = free, otherwise 1 + owner node id.
    tail: Addr,
    /// Per-processor queue nodes: [locked-flag, next-pointer] words.
    nodes: Addr,
    node_stride: u64,
}

impl McsLock {
    pub fn new(alloc: &mut Allocator, block_bytes: u64, procs: u16) -> Self {
        let stride = (2 * 8).max(block_bytes);
        let nodes = alloc.alloc_padded(stride * procs as u64, block_bytes);
        McsLock {
            tail: alloc.alloc_padded(8, block_bytes),
            nodes,
            node_stride: stride,
        }
    }

    fn node(&self, id: u16) -> Addr {
        Addr(self.nodes.0 + id as u64 * self.node_stride)
    }

    pub fn lock(&self, p: &Proc) {
        let me = p.id().0;
        let my = self.node(me);
        p.store(my, 1); // locked = true
        p.store(my.offset(8), 0); // next = null
        let prev = p.swap(self.tail, 1 + me as u64);
        if prev != 0 {
            // Link behind the predecessor and spin on OUR flag only.
            let pred = self.node((prev - 1) as u16);
            p.store(pred.offset(8), 1 + me as u64);
            while p.load(my) != 0 {
                p.busy(6);
            }
        }
    }

    pub fn unlock(&self, p: &Proc) {
        let me = p.id().0;
        let my = self.node(me);
        let next = p.load(my.offset(8));
        if next == 0 {
            // No known successor: try to swing the tail back to free.
            if p.cas(self.tail, 1 + me as u64, 0) == 1 + me as u64 {
                return;
            }
            // A successor is linking itself; wait for the pointer.
            let mut n = p.load(my.offset(8));
            while n == 0 {
                p.busy(4);
                n = p.load(my.offset(8));
            }
            p.store(self.node((n - 1) as u16), 0);
        } else {
            p.store(self.node((next - 1) as u16), 0);
        }
    }

    pub fn with<R>(&self, p: &Proc, f: impl FnOnce() -> R) -> R {
        self.lock(p);
        let r = f();
        self.unlock(p);
        r
    }
}

/// Combining-tree barrier: arrivals propagate up a binary tree of counters
/// and the release fans down sense flags — O(log P) contention per node
/// instead of one hot counter.
#[derive(Clone, Copy, Debug)]
pub struct TreeBarrier {
    /// Per-internal-node arrival counters (padded blocks).
    counts: Addr,
    /// Per-node release sense flags (padded blocks).
    senses: Addr,
    stride: u64,
    parties: u64,
}

impl TreeBarrier {
    pub fn new(alloc: &mut Allocator, block_bytes: u64, parties: u64) -> Self {
        assert!(parties > 0);
        let stride = block_bytes.max(8);
        TreeBarrier {
            counts: alloc.alloc_padded(stride * parties, block_bytes),
            senses: alloc.alloc_padded(stride * parties, block_bytes),
            stride,
            parties,
        }
    }

    fn count(&self, node: u64) -> Addr {
        Addr(self.counts.0 + node * self.stride)
    }

    fn sense(&self, node: u64) -> Addr {
        Addr(self.senses.0 + node * self.stride)
    }

    /// Expected arrivals at internal node `n`: itself plus children that
    /// exist in the binary tree over `parties` leaves-as-nodes.
    fn fan_in(&self, n: u64) -> u64 {
        let mut k = 1;
        if 2 * n + 1 < self.parties {
            k += 1;
        }
        if 2 * n + 2 < self.parties {
            k += 1;
        }
        k
    }

    pub fn wait(&self, p: &Proc, s: &mut BarrierSense) {
        s.local ^= 1;
        let me = p.id().0 as u64;
        // Arrive: children first bump their parent chain.
        let mut node = me;
        loop {
            let arrived = p.fetch_add(self.count(node), 1) + 1;
            if arrived < self.fan_in(node) {
                break; // not the last at this node; wait for release below
            }
            p.store(self.count(node), 0);
            if node == 0 {
                // Root complete: release the whole tree.
                for n in 0..self.parties {
                    p.store(self.sense(n), s.local);
                }
                return;
            }
            node = (node - 1) / 2;
        }
        while p.load(self.sense(me)) != s.local {
            p.busy(10);
        }
    }
}

/// Sense-reversing centralized barrier.
///
/// The caller keeps the per-processor sense in host-local state
/// ([`BarrierSense`]), mirroring how real implementations keep it in a
/// register or private memory.
#[derive(Clone, Copy, Debug)]
pub struct Barrier {
    count: Addr,
    sense: Addr,
    parties: u64,
}

/// Per-processor barrier sense (host-local; no coherence traffic).
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierSense {
    local: u64,
}

impl Barrier {
    pub fn new(alloc: &mut Allocator, block_bytes: u64, parties: u64) -> Self {
        assert!(parties > 0);
        Barrier {
            count: alloc.alloc_padded(8, block_bytes),
            sense: alloc.alloc_padded(8, block_bytes),
            parties,
        }
    }

    /// Wait until all `parties` processors arrive.
    pub fn wait(&self, p: &Proc, s: &mut BarrierSense) {
        s.local ^= 1;
        let arrived = p.fetch_add(self.count, 1) + 1;
        if arrived == self.parties {
            p.store(self.count, 0);
            p.store(self.sense, s.local);
        } else {
            while p.load(self.sense) != s.local {
                p.busy(12);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_engine::SimBuilder;
    use ccsim_types::{MachineConfig, ProtocolKind};

    fn cfg() -> MachineConfig {
        MachineConfig::splash_baseline(ProtocolKind::Baseline)
    }

    #[test]
    fn spinlock_protects_a_counter() {
        let mut b = SimBuilder::new(cfg());
        let lock = SpinLock::new(b.alloc(), 16);
        let x = b.alloc().alloc_padded(8, 16);
        let y = b.alloc().alloc_padded(8, 16);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..60 {
                    lock.with(&p, || {
                        let vx = p.load(x);
                        p.busy(5);
                        let vy = p.load(y);
                        assert_eq!(vx, vy, "lock failed to serialize");
                        p.store(x, vx + 1);
                        p.store(y, vy + 1);
                    });
                    p.busy(11);
                }
            });
        }
        b.run();
    }

    #[test]
    fn try_lock_fails_when_held() {
        let mut b = SimBuilder::new(cfg());
        let lock = SpinLock::new(b.alloc(), 16);
        let flag = b.alloc().alloc_padded(8, 16);
        b.spawn(move |p| {
            assert!(lock.try_lock(&p));
            p.store(flag, 1); // signal holder
            while p.load(flag) != 2 {
                p.busy(8);
            }
            lock.unlock(&p);
        });
        b.spawn(move |p| {
            while p.load(flag) != 1 {
                p.busy(8);
            }
            assert!(!lock.try_lock(&p), "lock is held by P0");
            p.store(flag, 2);
        });
        b.run();
    }

    #[test]
    fn ticket_lock_is_safe() {
        let mut b = SimBuilder::new(cfg());
        let lock = TicketLock::new(b.alloc(), 16);
        let ctr = b.alloc().alloc_padded(8, 16);
        let order = b.alloc().alloc_padded(8 * 64, 16);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..10 {
                    lock.with(&p, || {
                        let n = p.load(ctr);
                        // Record who held the lock n-th.
                        p.store(Addr(order.0 + n * 8), p.id().0 as u64 + 1);
                        p.store(ctr, n + 1);
                    });
                    p.busy(23);
                }
            });
        }
        let s = b.run();
        assert!(s.exec_cycles > 0);
        // 40 total acquisitions happened without losing any.
        assert!(s.oracle.total().global_writes > 0);
    }

    #[test]
    fn barrier_separates_phases() {
        let mut b = SimBuilder::new(cfg());
        let bar = Barrier::new(b.alloc(), 16, 4);
        let cells = b.alloc().alloc_padded(8 * 4, 16);
        for i in 0..4u64 {
            b.spawn(move |p| {
                let mut sense = BarrierSense::default();
                let my = Addr(cells.0 + i * 8);
                // Phase 1: everyone writes its own cell.
                p.store(my, i + 100);
                bar.wait(&p, &mut sense);
                // Phase 2: everyone must see all phase-1 writes.
                for j in 0..4u64 {
                    let v = p.load(Addr(cells.0 + j * 8));
                    assert_eq!(v, j + 100, "phase-1 write not visible after barrier");
                }
                bar.wait(&p, &mut sense);
            });
        }
        b.run();
    }

    #[test]
    fn barrier_reusable_many_rounds() {
        let mut b = SimBuilder::new(cfg());
        let bar = Barrier::new(b.alloc(), 16, 4);
        let round_cell = b.alloc().alloc_padded(8, 16);
        for i in 0..4u64 {
            b.spawn(move |p| {
                let mut sense = BarrierSense::default();
                for r in 0..8u64 {
                    if i == r % 4 {
                        p.store(round_cell, r);
                    }
                    bar.wait(&p, &mut sense);
                    assert_eq!(p.load(round_cell), r);
                    bar.wait(&p, &mut sense);
                }
            });
        }
        b.run();
    }

    #[test]
    fn mcs_lock_mutual_exclusion() {
        let mut b = SimBuilder::new(cfg());
        let lock = McsLock::new(b.alloc(), 16, 4);
        let x = b.alloc().alloc_padded(8, 16);
        let y = b.alloc().alloc_padded(8, 16);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..50 {
                    lock.with(&p, || {
                        let vx = p.load(x);
                        p.busy(7);
                        let vy = p.load(y);
                        assert_eq!(vx, vy, "MCS mutual exclusion violated");
                        p.store(x, vx + 1);
                        p.store(y, vy + 1);
                    });
                    p.busy(13);
                }
            });
        }
        let done = b.run_full();
        assert_eq!(done.peek(x), 200);
        assert_eq!(done.peek(y), 200);
    }

    #[test]
    fn mcs_waiters_spin_on_distinct_blocks() {
        // The defining MCS property: every processor's spin flag lives in
        // its own coherence block, so a release invalidates exactly one
        // waiter's copy (never the whole pack, as a test-and-set lock does).
        let mut b = SimBuilder::new(cfg());
        let lock = McsLock::new(b.alloc(), 16, 4);
        let mut blocks = std::collections::HashSet::new();
        for id in 0..4u16 {
            assert!(
                blocks.insert(lock.node(id).block(16)),
                "node {id} shares a spin block"
            );
            // The tail pointer is isolated from every spin flag too.
            assert_ne!(lock.node(id).block(16), lock.tail.block(16));
        }
        // And the lock still works under full contention with long queues.
        let work = b.alloc().alloc_padded(8, 16);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..40 {
                    lock.with(&p, || {
                        let v = p.load(work);
                        p.busy(150); // long critical section: queue forms
                        p.store(work, v + 1);
                    });
                }
            });
        }
        let done = b.run_full();
        assert_eq!(done.peek(work), 160);
    }

    #[test]
    fn tree_barrier_separates_phases() {
        let mut b = SimBuilder::new(cfg());
        let bar = TreeBarrier::new(b.alloc(), 16, 4);
        let cells = b.alloc().alloc_padded(8 * 4, 64);
        for i in 0..4u64 {
            b.spawn(move |p| {
                let mut sense = BarrierSense::default();
                for round in 0..6u64 {
                    p.store(Addr(cells.0 + i * 8), round * 10 + i);
                    bar.wait(&p, &mut sense);
                    for j in 0..4u64 {
                        assert_eq!(
                            p.load(Addr(cells.0 + j * 8)),
                            round * 10 + j,
                            "tree barrier leaked a phase"
                        );
                    }
                    bar.wait(&p, &mut sense);
                }
            });
        }
        b.run();
    }

    #[test]
    fn tree_barrier_single_party() {
        let mut b = SimBuilder::new(cfg());
        let bar = TreeBarrier::new(b.alloc(), 16, 1);
        b.spawn(move |p| {
            let mut sense = BarrierSense::default();
            for _ in 0..5 {
                bar.wait(&p, &mut sense); // must not deadlock
            }
        });
        b.run();
    }

    #[test]
    fn lock_handoff_is_migratory_for_the_oracle() {
        // Lock word + protected counter bounce between processors: the
        // canonical migratory pattern (§2) as seen by the oracle.
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Ls));
        let lock = SpinLock::new(b.alloc(), 16);
        let ctr = b.alloc().alloc_padded(8, 16);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..40 {
                    lock.with(&p, || {
                        let v = p.load(ctr);
                        p.store(ctr, v + 1);
                    });
                    p.busy(97);
                }
            });
        }
        let s = b.run();
        let t = s.oracle.total();
        assert!(t.ls_writes > 0);
        assert!(t.migratory_writes > 0, "lock handoff should migrate");
        assert!(
            s.machine.silent_stores > 0,
            "LS should fire on the handoffs"
        );
    }
}
