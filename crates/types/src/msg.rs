//! Coherence message taxonomy.
//!
//! Every global transaction the protocol performs is decomposed into explicit
//! messages so that network traffic can be accounted per message, in the
//! three classes the paper's traffic figures use: *read-related*,
//! *write-related* and *other* (retries, replacement hints, `NotLS`
//! notifications, replacement writebacks).

/// Traffic class used in the paper's message diagrams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Read requests, data replies to reads, read forwards, sharing
    /// writebacks on read-on-dirty.
    Read,
    /// Ownership acquisitions, write-miss requests/replies, invalidations
    /// and their acknowledgements.
    Write,
    /// Retries, replacement writebacks/hints, `NotLS` notifications.
    Other,
}

impl MsgClass {
    pub const ALL: [MsgClass; 3] = [MsgClass::Read, MsgClass::Write, MsgClass::Other];

    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Read => "Read",
            MsgClass::Write => "Write",
            MsgClass::Other => "Other",
        }
    }
}

/// One kind of coherence message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Requester -> home: global read request.
    ReadReq,
    /// Home -> requester: data reply, shared grant.
    ReadReply,
    /// Home -> requester: data reply, *exclusive* grant (LS-tagged or
    /// migratory block). Same size as `ReadReply`.
    ReadExclReply,
    /// Home -> current owner: forward of a read (read-on-dirty or
    /// read-on-exclusive).
    ReadForward,
    /// Owner -> requester: data reply on a forwarded read.
    OwnerReply,
    /// Owner -> home: sharing writeback accompanying a read-on-dirty
    /// (the home's memory copy is refreshed).
    SharingWriteback,
    /// Requester -> home: ownership acquisition for a block the requester
    /// already caches in shared state (an upgrade).
    UpgradeReq,
    /// Home -> requester: upgrade acknowledgement (no data).
    UpgradeAck,
    /// Requester -> home: write miss (ownership + data needed).
    WriteMissReq,
    /// Home -> requester: data + ownership reply to a write miss.
    WriteMissReply,
    /// Home -> owner: forward of a write miss to the dirty/exclusive owner.
    WriteForward,
    /// Owner -> requester: data + ownership on a forwarded write miss.
    OwnerWriteReply,
    /// Home -> sharer: invalidation.
    Inval,
    /// Sharer -> requester: invalidation acknowledgement.
    InvalAck,
    /// Cache -> home: replacement writeback of a modified block (data).
    ReplWriteback,
    /// Cache -> home: replacement hint for a shared or exclusive-clean
    /// block (keeps the full-map directory exact; header only).
    ReplHint,
    /// Cache -> home: the exclusive-clean (`LStemp`) copy was downgraded by
    /// a foreign read before being written; the home clears the LS-bit
    /// (§3.1 case 2). Header only.
    NotLs,
    /// Home -> requester: transaction bounced because another transaction
    /// on the same block is in flight; retry later.
    Retry,
    /// Receiver -> sender: transport-level acknowledgement of a sequenced
    /// message (recovery transport only; header only, never seen by the
    /// protocol layer).
    Ack,
}

impl MsgKind {
    /// Traffic class for the paper's read/write/other split.
    pub fn class(self) -> MsgClass {
        use MsgKind::*;
        match self {
            ReadReq | ReadReply | ReadExclReply | ReadForward | OwnerReply | SharingWriteback => {
                MsgClass::Read
            }
            UpgradeReq | UpgradeAck | WriteMissReq | WriteMissReply | WriteForward
            | OwnerWriteReply | Inval | InvalAck => MsgClass::Write,
            ReplWriteback | ReplHint | NotLs | Retry | Ack => MsgClass::Other,
        }
    }

    /// Whether the message carries a data payload of one memory block.
    pub fn carries_data(self) -> bool {
        use MsgKind::*;
        matches!(
            self,
            ReadReply
                | ReadExclReply
                | OwnerReply
                | SharingWriteback
                | WriteMissReply
                | OwnerWriteReply
                | ReplWriteback
        )
    }

    /// Message size in bytes: an 8-byte header (command + address + ids)
    /// plus one block of data where applicable, the accounting model used
    /// by comparable directory-protocol studies.
    pub fn size_bytes(self, block_bytes: u64) -> u64 {
        const HEADER_BYTES: u64 = 8;
        if self.carries_data() {
            HEADER_BYTES + block_bytes
        } else {
            HEADER_BYTES
        }
    }

    /// True for home-to-sharer invalidation messages (the "Invalidations"
    /// series of Figure 5).
    pub fn is_invalidation(self) -> bool {
        self == MsgKind::Inval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KINDS: [MsgKind; 19] = [
        MsgKind::ReadReq,
        MsgKind::ReadReply,
        MsgKind::ReadExclReply,
        MsgKind::ReadForward,
        MsgKind::OwnerReply,
        MsgKind::SharingWriteback,
        MsgKind::UpgradeReq,
        MsgKind::UpgradeAck,
        MsgKind::WriteMissReq,
        MsgKind::WriteMissReply,
        MsgKind::WriteForward,
        MsgKind::OwnerWriteReply,
        MsgKind::Inval,
        MsgKind::InvalAck,
        MsgKind::ReplWriteback,
        MsgKind::ReplHint,
        MsgKind::NotLs,
        MsgKind::Retry,
        MsgKind::Ack,
    ];

    #[test]
    fn every_kind_has_a_class_and_size() {
        for k in ALL_KINDS {
            let _ = k.class();
            assert!(k.size_bytes(32) >= 8);
        }
    }

    #[test]
    fn data_messages_are_header_plus_block() {
        assert_eq!(MsgKind::ReadReply.size_bytes(32), 40);
        assert_eq!(MsgKind::ReadReq.size_bytes(32), 8);
        assert_eq!(MsgKind::ReplWriteback.size_bytes(64), 72);
        assert_eq!(MsgKind::Inval.size_bytes(64), 8);
    }

    #[test]
    fn classes_follow_the_paper_split() {
        assert_eq!(MsgKind::ReadReq.class(), MsgClass::Read);
        assert_eq!(MsgKind::ReadExclReply.class(), MsgClass::Read);
        assert_eq!(MsgKind::SharingWriteback.class(), MsgClass::Read);
        assert_eq!(MsgKind::UpgradeReq.class(), MsgClass::Write);
        assert_eq!(MsgKind::Inval.class(), MsgClass::Write);
        assert_eq!(MsgKind::InvalAck.class(), MsgClass::Write);
        assert_eq!(MsgKind::Retry.class(), MsgClass::Other);
        assert_eq!(MsgKind::NotLs.class(), MsgClass::Other);
        assert_eq!(MsgKind::ReplWriteback.class(), MsgClass::Other);
        assert_eq!(MsgKind::Ack.class(), MsgClass::Other);
        assert!(!MsgKind::Ack.carries_data());
    }

    #[test]
    fn exclusive_grants_do_not_cost_extra() {
        // The LS/AD optimization must not be charged extra bytes for the
        // exclusive grant: it is the same data reply with a different grant.
        assert_eq!(
            MsgKind::ReadReply.size_bytes(16),
            MsgKind::ReadExclReply.size_bytes(16)
        );
    }

    #[test]
    fn invalidation_predicate() {
        assert!(MsgKind::Inval.is_invalidation());
        assert!(!MsgKind::InvalAck.is_invalidation());
        assert!(!MsgKind::UpgradeReq.is_invalidation());
    }

    #[test]
    fn class_labels() {
        assert_eq!(MsgClass::Read.label(), "Read");
        assert_eq!(MsgClass::Write.label(), "Write");
        assert_eq!(MsgClass::Other.label(), "Other");
    }
}
