//! Machine configuration: cache geometry, latency model, protocol selection.
//!
//! Defaults mirror Table 1 and Figure 2 of the paper:
//!
//! * L1: 1-cycle access, 4 kB direct-mapped, 16-byte blocks (OLTP uses
//!   64 kB 2-way with 32-byte blocks — see [`MachineConfig::oltp_baseline`]).
//! * L2: 10-cycle access, 64 kB direct-mapped (OLTP: 512 kB).
//! * Memory 40 cycles, memory controller 20 cycles, network traversal
//!   40 cycles; composed so that an uncontended *local* L2 miss costs 100
//!   cycles, a 2-hop *home* miss 220 cycles and a 4-hop *remote*
//!   (read-on-dirty) miss 420 cycles, exactly the derived rows of Table 1.

/// Geometry and access time of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
    /// Block (line) size in bytes. Must be a power of two, and equal across
    /// levels (the machine has a single coherence granularity).
    pub block_bytes: u64,
    /// Hit access time in cycles.
    pub access_cycles: u64,
}

impl CacheConfig {
    /// Number of blocks the cache holds.
    pub fn num_blocks(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_blocks() / self.assoc as u64
    }

    /// Validate size/assoc/block invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !self.size_bytes.is_power_of_two() {
            return Err(format!("cache size {} not a power of two", self.size_bytes));
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(format!(
                "block size {} not a power of two",
                self.block_bytes
            ));
        }
        if self.block_bytes < crate::WORD_BYTES {
            return Err("block smaller than one word".into());
        }
        if self.assoc == 0 || !self.assoc.is_power_of_two() {
            return Err(format!("associativity {} not a power of two", self.assoc));
        }
        if self.num_blocks() < self.assoc as u64 {
            return Err("cache smaller than one set".into());
        }
        Ok(())
    }
}

/// Component latencies of the simulated machine (cycles), per Figure 2.
///
/// Derived end-to-end costs (uncontended):
///
/// * [`LatencyConfig::local_miss`] — L2 miss served by the local memory:
///   `l1_hit + l2_hit + 2*mc + mem + node_bus` = 100 by default.
/// * [`LatencyConfig::home_miss`] — 2-hop miss served by a remote home:
///   `local_miss + 2*(net + mc)` = 220.
/// * [`LatencyConfig::remote_miss`] — 4-hop read-on-dirty miss:
///   `l1_hit + l2_hit + 3*(net + mc) + 2*mc + owner_access + node_bus` = 420.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// First-level cache hit.
    pub l1_hit: u64,
    /// Second-level cache hit (additional to the L1 lookup).
    pub l2_hit: u64,
    /// DRAM access.
    pub mem: u64,
    /// Memory-controller / directory occupancy per message handled.
    pub mc: u64,
    /// One network traversal between two nodes.
    pub net: u64,
    /// Remote owner's cache lookup + data extraction on a forwarded request.
    pub owner_access: u64,
    /// Intra-node bus and fill overhead; calibrated so the local miss path
    /// costs exactly the 100 cycles of Table 1.
    pub node_bus: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 1,
            l2_hit: 10,
            mem: 40,
            mc: 20,
            net: 40,
            owner_access: 180,
            node_bus: 9,
        }
    }
}

impl LatencyConfig {
    /// L2-miss served from the local node's memory (home = requester).
    pub fn local_miss(&self) -> u64 {
        self.l1_hit + self.l2_hit + 2 * self.mc + self.mem + self.node_bus
    }

    /// L2-miss served by a remote home whose memory holds a clean copy
    /// (two network hops: request + data reply).
    pub fn home_miss(&self) -> u64 {
        self.local_miss() + 2 * (self.net + self.mc)
    }

    /// L2-miss to a block dirty in a third node's cache (four network hops:
    /// request, forward, owner reply — and the sharing writeback travels in
    /// parallel). Path: lookup, request hop, home controller, forward hop,
    /// owner cache access + extraction, reply hop, fill controller, bus.
    pub fn remote_miss(&self) -> u64 {
        self.l1_hit
            + self.l2_hit
            + 3 * (self.net + self.mc)
            + 2 * self.mc
            + self.owner_access
            + self.node_bus
    }

    /// One hop between distinct nodes: a traversal plus the receiving
    /// controller's occupancy. Zero-cost when `from == to`.
    pub fn hop(&self, from: crate::NodeId, to: crate::NodeId) -> u64 {
        if from == to {
            0
        } else {
            self.net + self.mc
        }
    }
}

/// Memory consistency model of the simulated processors.
///
/// §4.2 evaluates a conservative **sequential consistency** implementation:
/// the processor stalls on every L2 miss, reads and writes. §6 observes
/// that "under more relaxed memory models, this reduction of write stall
/// time is probably reduced due to these models' ability to hide remote
/// latencies ... \[the\] technique however has a potential to reduce network
/// traffic under any memory model". [`Consistency::Relaxed`] models an
/// aggressive implementation with an unbounded write buffer: ownership
/// acquisitions retire immediately from the processor's point of view
/// (values and coherence actions are unchanged — the engine still applies
/// them atomically in simulated-time order), so write stall vanishes and
/// only the traffic effect of LS/AD remains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Stall on every L2 miss, read and write (the paper's model).
    Sc,
    /// Hide write latency behind an idealized write buffer.
    Relaxed,
}

/// Which coherence protocol the directory runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// DASH-like full-map write-invalidate protocol (the paper's Baseline).
    Baseline,
    /// Adaptive migratory-sharing detection (Stenström et al., ISCA '93),
    /// the paper's "AD" comparison point.
    Ad,
    /// The paper's contribution: load-store sequence detection ("LS").
    Ls,
    /// Dynamic self-invalidation (Lebeck & Wood, ISCA '95), simplified to
    /// tear-off (uncached) read grants — the §6 related-work comparison.
    /// Not part of the paper's figures ([`ProtocolKind::ALL`] stays the
    /// evaluated trio); used by the `repro_dsi` extension experiment.
    Dsi,
}

impl ProtocolKind {
    /// All three evaluated protocols, in the order the figures present them.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Baseline, ProtocolKind::Ad, ProtocolKind::Ls];

    /// Short label used in figures ("Baseline", "AD", "LS", "DSI").
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Baseline => "Baseline",
            ProtocolKind::Ad => "AD",
            ProtocolKind::Ls => "LS",
            ProtocolKind::Dsi => "DSI",
        }
    }
}

/// Tuning knobs for the LS protocol (§3.1 and the variation analysis of §5.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsConfig {
    /// §5.5: treat every block as load-store by default (LS-bit starts set),
    /// so even the first cold read returns an exclusive copy.
    pub default_tagged: bool,
    /// §5.5 de-tag heuristic: keep the current LS-bit when an ownership
    /// request arrives that was *not* preceded by a read from the same
    /// processor (instead of clearing it).
    pub keep_on_unpaired_write: bool,
    /// §5.5 hysteresis depth for tagging: the load-store pattern must be
    /// observed this many times before the LS-bit is set (1 = immediate,
    /// the paper's default; 2 = "two step deep hysteresis").
    pub tag_hysteresis: u8,
    /// §5.5 hysteresis depth for de-tagging (1 = immediate).
    pub detag_hysteresis: u8,
}

impl Default for LsConfig {
    fn default() -> Self {
        LsConfig {
            default_tagged: false,
            keep_on_unpaired_write: false,
            tag_hysteresis: 1,
            detag_hysteresis: 1,
        }
    }
}

/// Tuning knobs for the AD (adaptive migratory) protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdConfig {
    /// §5.5: treat every block as migratory by default.
    pub default_tagged: bool,
}

/// A deliberately broken protocol rule, used by the model checker's mutation
/// tests (and nothing else) to prove the checker actually detects bugs.
///
/// The enum itself is always available so tools can *name* mutations, but a
/// mutation can only be installed into a [`ProtocolConfig`] when the
/// `testing` cargo feature is enabled; release builds physically cannot run
/// a mutated protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleMutation {
    /// LS: skip the de-tag vote on an unpaired ownership acquisition, so a
    /// block wrongly keeps its LS-bit after the load-store pattern ends.
    SkipLsDetag,
    /// Drop the `NotLS` notification when a read finds an unwritten
    /// exclusive grant: the directory neither reports nor de-tags.
    DropNotLs,
    /// A write to a shared block acquires ownership without invalidating
    /// the other sharers (breaks SWMR directly).
    DropInvalidations,
    /// Keep the LR (last-reader) field across an ownership acquisition
    /// instead of invalidating it, corrupting future pairing decisions.
    KeepLrOnOwnership,
}

impl RuleMutation {
    /// Every seeded mutation, for exhaustive mutation-coverage tests.
    pub const ALL: [RuleMutation; 4] = [
        RuleMutation::SkipLsDetag,
        RuleMutation::DropNotLs,
        RuleMutation::DropInvalidations,
        RuleMutation::KeepLrOnOwnership,
    ];

    /// Stable CLI name of the mutation.
    pub fn label(self) -> &'static str {
        match self {
            RuleMutation::SkipLsDetag => "skip-ls-detag",
            RuleMutation::DropNotLs => "drop-notls",
            RuleMutation::DropInvalidations => "drop-invalidations",
            RuleMutation::KeepLrOnOwnership => "keep-lr-on-ownership",
        }
    }

    /// Parse a CLI name produced by [`RuleMutation::label`].
    pub fn parse(s: &str) -> Option<RuleMutation> {
        RuleMutation::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// A deliberately broken *transport* rule, the recovery-transport analogue
/// of [`RuleMutation`]: used by the model checker and chaos harness to
/// prove they convict transport bugs. Like rule mutations, one can only be
/// installed in `testing` builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransportMutation {
    /// The receiver skips sequence-number dedup, so a duplicated copy of a
    /// completed request is re-applied — the classic stale-ownership bug an
    /// exactly-once transport exists to prevent.
    SkipDedup,
}

impl TransportMutation {
    /// Every seeded transport mutation, for exhaustive coverage tests.
    pub const ALL: [TransportMutation; 1] = [TransportMutation::SkipDedup];

    /// Stable CLI name of the mutation.
    pub fn label(self) -> &'static str {
        match self {
            TransportMutation::SkipDedup => "skip-dedup",
        }
    }

    /// Parse a CLI name produced by [`TransportMutation::label`].
    pub fn parse(s: &str) -> Option<TransportMutation> {
        TransportMutation::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Protocol selection plus variant knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    pub kind: ProtocolKind,
    pub ls: LsConfig,
    pub ad: AdConfig,
    /// Seeded rule mutation for checker-validation tests. Only exists under
    /// the `testing` feature; construct via [`ProtocolConfig::with_rule_mutation`]
    /// and read via [`ProtocolConfig::rule_mutation`] (which is always
    /// available and returns `None` in normal builds). Deliberately absent
    /// from the canonical JSON encoding: mutated configs are never cached.
    #[cfg(feature = "testing")]
    pub mutation: Option<RuleMutation>,
}

impl ProtocolConfig {
    pub fn new(kind: ProtocolKind) -> Self {
        ProtocolConfig {
            kind,
            ls: LsConfig::default(),
            ad: AdConfig::default(),
            #[cfg(feature = "testing")]
            mutation: None,
        }
    }

    /// The seeded rule mutation, if any. Always `None` without the
    /// `testing` feature, so protocol code can consult it unconditionally.
    pub fn rule_mutation(&self) -> Option<RuleMutation> {
        #[cfg(feature = "testing")]
        let m = self.mutation;
        #[cfg(not(feature = "testing"))]
        let m = None;
        m
    }

    /// Install a seeded rule mutation (testing builds only).
    #[cfg(feature = "testing")]
    pub fn with_rule_mutation(mut self, mutation: RuleMutation) -> Self {
        self.mutation = Some(mutation);
        self
    }
}

/// Deterministic fault-injection plan for the interconnect.
///
/// Faults are adversarial but *honest*: a NACKed request really reaches the
/// receiver and is bounced back with a [`crate::MsgKind::Retry`] message, and
/// a delay spike really advances the arrival time. They therefore perturb
/// timing and add Retry traffic, but a correct protocol must produce the
/// same oracle counts and final memory contents regardless of the plan —
/// the end-to-end property the fault soak asserts.
///
/// All zero rates (the default) disable injection and leave the network's
/// random stream untouched, so fault-free runs are bit-for-bit identical to
/// builds without this feature.
///
/// The drop/dup/reorder classes exercise the recovery transport: a dropped
/// message really vanishes from the wire and must be retransmitted after a
/// timeout, a duplicated message really arrives twice and must be suppressed
/// by the receiver, and a reordered message really overtakes its successor
/// and must wait in the receiver's reorder buffer. The protocol layer above
/// the transport still observes an exactly-once, in-order stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Probability, in 1/1000 units, that a coherence *request* is NACKed
    /// by the receiver and must be retried by the sender.
    pub nack_per_mille: u16,
    /// Probability, in 1/1000 units, that any timed message suffers a
    /// delivery delay spike.
    pub delay_per_mille: u16,
    /// Probability, in 1/1000 units, that a transported message is lost on
    /// the wire and must be recovered by timeout-and-retransmit.
    pub drop_per_mille: u16,
    /// Probability, in 1/1000 units, that a transported message arrives a
    /// second time and must be suppressed by receiver-side dedup.
    pub dup_per_mille: u16,
    /// Probability, in 1/1000 units, that a transported message is detained
    /// past its successor and re-sequenced in the receiver's reorder buffer.
    pub reorder_per_mille: u16,
    /// Maximum extra cycles a delay spike adds (spikes are uniform in
    /// `1..=max_delay_cycles`). Must be positive when `delay_per_mille > 0`.
    pub max_delay_cycles: u64,
    /// Forced delivery after this many consecutive adversarial rolls
    /// (NACK streaks and drop streaks alike): the plan gives up and lets
    /// the message through, bounding worst-case latency and guaranteeing
    /// forward progress. Must be at least 1.
    pub max_consecutive_nacks: u32,
    /// Seed of the fault plan's private xoshiro256++ streams.
    pub seed: u64,
    /// Seeded transport mutation for checker-validation tests (e.g. skip
    /// receiver dedup). Only exists under the `testing` feature; construct
    /// via [`FaultConfig::with_transport_mutation`] and read via
    /// [`FaultConfig::transport_mutation`] (which is always available and
    /// returns `None` in normal builds). Deliberately absent from the
    /// canonical JSON encoding: mutated configs are never cached.
    #[cfg(feature = "testing")]
    pub mutation: Option<TransportMutation>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            nack_per_mille: 0,
            delay_per_mille: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            max_delay_cycles: 0,
            max_consecutive_nacks: 8,
            seed: 0,
            #[cfg(feature = "testing")]
            mutation: None,
        }
    }
}

impl FaultConfig {
    /// Whether any fault class is enabled.
    pub fn enabled(&self) -> bool {
        self.nack_per_mille > 0
            || self.delay_per_mille > 0
            || self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.reorder_per_mille > 0
    }

    /// Whether any transport-level class (drop/dup/reorder) is enabled,
    /// i.e. whether the recovery transport has work to do.
    pub fn transport_enabled(&self) -> bool {
        self.drop_per_mille > 0 || self.dup_per_mille > 0 || self.reorder_per_mille > 0
    }

    /// The seeded transport mutation, if any. Always `None` without the
    /// `testing` feature, so transport code can consult it unconditionally.
    pub fn transport_mutation(&self) -> Option<TransportMutation> {
        #[cfg(feature = "testing")]
        let m = self.mutation;
        #[cfg(not(feature = "testing"))]
        let m = None;
        m
    }

    /// Install a seeded transport mutation (testing builds only).
    #[cfg(feature = "testing")]
    pub fn with_transport_mutation(mut self, mutation: TransportMutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Validate rate bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.nack_per_mille > 1000 {
            return Err(format!(
                "fault NACK rate {}/1000 exceeds 1000",
                self.nack_per_mille
            ));
        }
        if self.delay_per_mille > 1000 {
            return Err(format!(
                "fault delay rate {}/1000 exceeds 1000",
                self.delay_per_mille
            ));
        }
        if self.drop_per_mille > 1000 {
            return Err(format!(
                "fault drop rate {}/1000 exceeds 1000",
                self.drop_per_mille
            ));
        }
        if self.dup_per_mille > 1000 {
            return Err(format!(
                "fault dup rate {}/1000 exceeds 1000",
                self.dup_per_mille
            ));
        }
        if self.reorder_per_mille > 1000 {
            return Err(format!(
                "fault reorder rate {}/1000 exceeds 1000",
                self.reorder_per_mille
            ));
        }
        if self.delay_per_mille > 0 && self.max_delay_cycles == 0 {
            return Err("fault delay rate set but max_delay_cycles is zero".into());
        }
        if self.max_consecutive_nacks == 0 {
            return Err("fault max_consecutive_nacks must be at least 1".into());
        }
        Ok(())
    }
}

/// Complete machine description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes (processor + cache hierarchy + memory + directory).
    pub nodes: u16,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub latency: LatencyConfig,
    pub protocol: ProtocolConfig,
    /// Physical page size; pages are distributed round-robin across node
    /// memories (§4.2).
    pub page_bytes: u64,
    /// Scheduling quantum of the conservative time-sliced execution model,
    /// in cycles. 1 = strict lowest-clock-first interleaving.
    pub schedule_quantum: u64,
    /// Seed for workload-level randomness; the simulator itself is
    /// deterministic.
    pub seed: u64,
    /// Memory consistency model (the paper evaluates [`Consistency::Sc`]).
    pub consistency: Consistency,
    /// Interconnect topology (the paper evaluates the fixed-delay
    /// point-to-point network; the 2-D mesh is an extension).
    pub topology: crate::Topology,
    /// Deterministic fault-injection plan (disabled by default).
    pub faults: FaultConfig,
}

impl MachineConfig {
    /// Baseline configuration used for all applications except OLTP (§4.2):
    /// 4 nodes, direct-mapped 4 kB L1 + 64 kB L2, 16-byte blocks.
    pub fn splash_baseline(protocol: ProtocolKind) -> Self {
        MachineConfig {
            nodes: 4,
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                assoc: 1,
                block_bytes: 16,
                access_cycles: 1,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 1,
                block_bytes: 16,
                access_cycles: 10,
            },
            latency: LatencyConfig::default(),
            protocol: ProtocolConfig::new(protocol),
            page_bytes: 4096,
            schedule_quantum: 1,
            seed: 0xCC51_u64,
            consistency: Consistency::Sc,
            topology: crate::Topology::PointToPoint,
            faults: FaultConfig::default(),
        }
    }

    /// OLTP configuration (§4.2): 64 kB 2-way L1, 512 kB direct-mapped L2,
    /// 32-byte blocks.
    pub fn oltp_baseline(protocol: ProtocolKind) -> Self {
        MachineConfig {
            nodes: 4,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 2,
                block_bytes: 32,
                access_cycles: 1,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                assoc: 1,
                block_bytes: 32,
                access_cycles: 10,
            },
            latency: LatencyConfig::default(),
            protocol: ProtocolConfig::new(protocol),
            page_bytes: 4096,
            schedule_quantum: 1,
            seed: 0xCC51_u64,
            consistency: Consistency::Sc,
            topology: crate::Topology::PointToPoint,
            faults: FaultConfig::default(),
        }
    }

    /// OLTP configuration with the cache hierarchy scaled down by the same
    /// factor as the simulated database (the paper ran a ~600 MB database
    /// against the 512 kB L2 of [`MachineConfig::oltp_baseline`], a 1200:1
    /// ratio; the tractable simulated database is ~4 MB, so an L2 of 64 kB
    /// keeps the capacity/conflict-miss behaviour §5.4 depends on within an
    /// order of magnitude). Documented as a substitution in DESIGN.md.
    pub fn oltp_scaled(protocol: ProtocolKind) -> Self {
        let mut c = Self::oltp_baseline(protocol);
        c.l1 = CacheConfig {
            size_bytes: 8 * 1024,
            assoc: 2,
            block_bytes: 32,
            access_cycles: 1,
        };
        c.l2 = CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 1,
            block_bytes: 32,
            access_cycles: 10,
        };
        c
    }

    /// Change the coherence block size on both levels.
    pub fn with_block_bytes(mut self, block_bytes: u64) -> Self {
        self.l1.block_bytes = block_bytes;
        self.l2.block_bytes = block_bytes;
        self
    }

    /// Change the node count.
    pub fn with_nodes(mut self, nodes: u16) -> Self {
        self.nodes = nodes;
        self
    }

    /// Change the protocol, keeping variant knobs.
    pub fn with_protocol(mut self, kind: ProtocolKind) -> Self {
        self.protocol.kind = kind;
        self
    }

    /// Install a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("machine needs at least one node".into());
        }
        self.l1.validate()?;
        self.l2.validate()?;
        if self.l1.block_bytes != self.l2.block_bytes {
            return Err("L1 and L2 must share one coherence block size".into());
        }
        if self.l2.size_bytes < self.l1.size_bytes {
            return Err("inclusive hierarchy requires L2 >= L1".into());
        }
        if !self.page_bytes.is_power_of_two() || self.page_bytes < self.l2.block_bytes {
            return Err("page size must be a power of two >= block size".into());
        }
        if self.schedule_quantum == 0 {
            return Err("schedule quantum must be positive".into());
        }
        if self.protocol.ls.tag_hysteresis == 0 || self.protocol.ls.detag_hysteresis == 0 {
            return Err("hysteresis depths are 1-based".into());
        }
        self.topology.validate(self.nodes)?;
        self.faults.validate()?;
        Ok(())
    }

    /// Coherence block size (identical across levels).
    pub fn block_bytes(&self) -> u64 {
        self.l2.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_derived_latencies() {
        // The derived rows of Table 1: local 100, home 220, remote 420.
        let l = LatencyConfig::default();
        assert_eq!(l.local_miss(), 100);
        assert_eq!(l.home_miss(), 220);
        assert_eq!(l.remote_miss(), 420);
    }

    #[test]
    fn hop_is_free_locally() {
        let l = LatencyConfig::default();
        assert_eq!(l.hop(crate::NodeId(1), crate::NodeId(1)), 0);
        assert_eq!(l.hop(crate::NodeId(1), crate::NodeId(2)), 60);
    }

    #[test]
    fn default_configs_validate() {
        for kind in ProtocolKind::ALL {
            MachineConfig::splash_baseline(kind).validate().unwrap();
            MachineConfig::oltp_baseline(kind).validate().unwrap();
        }
    }

    #[test]
    fn splash_baseline_matches_section_4_2() {
        let c = MachineConfig::splash_baseline(ProtocolKind::Ls);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.l1.size_bytes, 4 * 1024);
        assert_eq!(c.l1.assoc, 1);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.block_bytes(), 16);
    }

    #[test]
    fn oltp_baseline_matches_section_4_2() {
        let c = MachineConfig::oltp_baseline(ProtocolKind::Ad);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l1.assoc, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.block_bytes(), 32);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.l1.block_bytes = 24; // not a power of two
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.l1.block_bytes = 32; // mismatch with L2
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.l2.size_bytes = 2 * 1024; // smaller than L1
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.schedule_quantum = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.protocol.ls.tag_hysteresis = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.nack_per_mille = 1001;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.delay_per_mille = 10; // rate set, but no spike magnitude
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.drop_per_mille = 1001;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.dup_per_mille = 1001;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.reorder_per_mille = 1001;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::splash_baseline(ProtocolKind::Baseline);
        c.faults.max_consecutive_nacks = 0; // forced delivery bound is 1-based
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_config_defaults_to_disabled() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert!(!f.transport_enabled());
        assert_eq!(f.max_consecutive_nacks, 8);
        f.validate().unwrap();
        let f = FaultConfig {
            nack_per_mille: 50,
            seed: 7,
            ..FaultConfig::default()
        };
        assert!(f.enabled());
        assert!(!f.transport_enabled());
        f.validate().unwrap();
        for set in [
            |f: &mut FaultConfig| f.drop_per_mille = 5,
            |f: &mut FaultConfig| f.dup_per_mille = 5,
            |f: &mut FaultConfig| f.reorder_per_mille = 5,
        ] {
            let mut f = FaultConfig::default();
            set(&mut f);
            assert!(f.enabled());
            assert!(f.transport_enabled());
            f.validate().unwrap();
        }
    }

    #[test]
    fn cache_geometry_helpers() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            block_bytes: 32,
            access_cycles: 1,
        };
        assert_eq!(c.num_blocks(), 2048);
        assert_eq!(c.num_sets(), 1024);
        c.validate().unwrap();
    }

    #[test]
    fn with_builders() {
        let c = MachineConfig::splash_baseline(ProtocolKind::Baseline)
            .with_block_bytes(64)
            .with_nodes(16)
            .with_protocol(ProtocolKind::Ls);
        assert_eq!(c.block_bytes(), 64);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.protocol.kind, ProtocolKind::Ls);
        c.validate().unwrap();
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(ProtocolKind::Baseline.label(), "Baseline");
        assert_eq!(ProtocolKind::Ad.label(), "AD");
        assert_eq!(ProtocolKind::Ls.label(), "LS");
    }
}
