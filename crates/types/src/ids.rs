//! Node, address and memory-block identifiers.

/// Size of one machine word in bytes. All simulated memory accesses are
/// word-granular; workloads address memory in bytes but read/write whole
/// 8-byte words, matching the 64-bit SPARC data accesses the original study
/// traced.
pub const WORD_BYTES: u64 = 8;

/// Identifier of a node (processor + caches + memory slice + directory).
///
/// The paper's LR ("last reader") directory field is `log2 N` bits wide;
/// a `u16` comfortably covers the 4-32 node systems evaluated.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for `Vec` lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u64);

impl Addr {
    /// The memory block this address falls into, for a given block size.
    ///
    /// `block_bytes` must be a power of two (enforced by config validation).
    #[inline]
    pub fn block(self, block_bytes: u64) -> BlockAddr {
        debug_assert!(block_bytes.is_power_of_two());
        BlockAddr(self.0 & !(block_bytes - 1))
    }

    /// Index of the word within its block.
    #[inline]
    pub fn word_in_block(self, block_bytes: u64) -> u32 {
        ((self.0 & (block_bytes - 1)) / WORD_BYTES) as u32
    }

    /// Word-aligned address containing this byte.
    #[inline]
    pub fn word_aligned(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES - 1))
    }

    /// Global word index (address / 8).
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// Byte offset addition.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The base byte address of a memory block (aligned to the block size).
///
/// A `BlockAddr` is only meaningful together with the block size it was
/// derived from; the simulator uses a single machine-wide block size
/// (Table 1), so this is unambiguous in practice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Base address of the block as a plain address.
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.0)
    }

    /// Word-granular bitmask with the bit for `addr`'s word set.
    /// Blocks are at most 256 bytes = 32 words in the evaluated systems,
    /// so a `u64` mask always suffices.
    #[inline]
    pub fn word_mask(self, addr: Addr, block_bytes: u64) -> u64 {
        debug_assert_eq!(addr.block(block_bytes), self);
        1u64 << addr.word_in_block(block_bytes)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address_masks_low_bits() {
        let a = Addr(0x1234);
        assert_eq!(a.block(16), BlockAddr(0x1230));
        assert_eq!(a.block(32), BlockAddr(0x1220));
        assert_eq!(a.block(64), BlockAddr(0x1200));
        assert_eq!(a.block(256), BlockAddr(0x1200));
    }

    #[test]
    fn word_in_block_is_word_granular() {
        // 0x1234 is byte 0x34 = 52 into its 64B block -> word 6.
        assert_eq!(Addr(0x1234).word_in_block(64), 6);
        assert_eq!(Addr(0x1200).word_in_block(64), 0);
        assert_eq!(Addr(0x1238).word_in_block(64), 7);
    }

    #[test]
    fn word_alignment() {
        assert_eq!(Addr(0x1234).word_aligned(), Addr(0x1230));
        assert_eq!(Addr(0x1230).word_aligned(), Addr(0x1230));
        assert_eq!(Addr(17).word_index(), 2);
    }

    #[test]
    fn word_mask_within_block() {
        let b = Addr(0x100).block(32);
        assert_eq!(b.word_mask(Addr(0x100), 32), 0b0001);
        assert_eq!(b.word_mask(Addr(0x108), 32), 0b0010);
        assert_eq!(b.word_mask(Addr(0x118), 32), 0b1000);
    }

    #[test]
    fn node_display_and_idx() {
        assert_eq!(NodeId(3).to_string(), "P3");
        assert_eq!(NodeId(3).idx(), 3);
    }

    #[test]
    fn addr_offset_and_display() {
        assert_eq!(Addr(0x10).offset(0x8), Addr(0x18));
        assert_eq!(Addr(0x10).to_string(), "0x10");
        assert_eq!(BlockAddr(0x40).to_string(), "B0x40");
        assert_eq!(BlockAddr(0x40).addr(), Addr(0x40));
    }
}
