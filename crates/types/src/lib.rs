//! Common vocabulary types for the `ccsim` cache-coherence simulator.
//!
//! This crate defines the identifiers (nodes, addresses, memory blocks),
//! machine configuration (cache geometry and the latency model of Table 1 /
//! Figure 2 of the paper), the coherence message taxonomy used for traffic
//! accounting, and a small deterministic RNG used by workload generators.
//!
//! Reproduction target: Nilsson & Dahlgren, *"Reducing Ownership Overhead for
//! Load-Store Sequences in Cache-Coherent Multiprocessors"*, IPPS 2000.

pub mod config;
pub mod ids;
pub mod json;
pub mod msg;
pub mod rng;
pub mod topology;

pub use config::{
    AdConfig, CacheConfig, Consistency, FaultConfig, LatencyConfig, LsConfig, MachineConfig,
    ProtocolConfig, ProtocolKind, RuleMutation, TransportMutation,
};
pub use ids::{Addr, BlockAddr, NodeId, WORD_BYTES};
pub use msg::{MsgClass, MsgKind};
pub use rng::SimRng;
pub use topology::Topology;
