//! JSON encodings for the configuration vocabulary.
//!
//! These impls define the canonical serialized form of a machine
//! description. The run cache keys entries by hashing this encoding, so the
//! field order and spelling here are part of the cache format: changing
//! them invalidates old cache entries (by design — see the format salt in
//! `ccsim-harness`), but must never make two *different* configurations
//! encode identically.

use crate::{
    AdConfig, CacheConfig, Consistency, FaultConfig, LatencyConfig, LsConfig, MachineConfig,
    ProtocolConfig, ProtocolKind, Topology,
};
use ccsim_util::{FromJson, Json, ToJson};

impl ToJson for CacheConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size_bytes", self.size_bytes.to_json()),
            ("assoc", self.assoc.to_json()),
            ("block_bytes", self.block_bytes.to_json()),
            ("access_cycles", self.access_cycles.to_json()),
        ])
    }
}

impl FromJson for CacheConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(CacheConfig {
            size_bytes: j.field("size_bytes")?,
            assoc: j.field("assoc")?,
            block_bytes: j.field("block_bytes")?,
            access_cycles: j.field("access_cycles")?,
        })
    }
}

impl ToJson for LatencyConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("l1_hit", self.l1_hit.to_json()),
            ("l2_hit", self.l2_hit.to_json()),
            ("mem", self.mem.to_json()),
            ("mc", self.mc.to_json()),
            ("net", self.net.to_json()),
            ("owner_access", self.owner_access.to_json()),
            ("node_bus", self.node_bus.to_json()),
        ])
    }
}

impl FromJson for LatencyConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(LatencyConfig {
            l1_hit: j.field("l1_hit")?,
            l2_hit: j.field("l2_hit")?,
            mem: j.field("mem")?,
            mc: j.field("mc")?,
            net: j.field("net")?,
            owner_access: j.field("owner_access")?,
            node_bus: j.field("node_bus")?,
        })
    }
}

impl ToJson for Consistency {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Consistency::Sc => "sc",
                Consistency::Relaxed => "relaxed",
            }
            .to_string(),
        )
    }
}

impl FromJson for Consistency {
    fn from_json(j: &Json) -> Result<Self, String> {
        match j.as_str()? {
            "sc" => Ok(Consistency::Sc),
            "relaxed" => Ok(Consistency::Relaxed),
            other => Err(format!("unknown consistency `{other}`")),
        }
    }
}

impl ToJson for ProtocolKind {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl FromJson for ProtocolKind {
    fn from_json(j: &Json) -> Result<Self, String> {
        match j.as_str()? {
            "Baseline" => Ok(ProtocolKind::Baseline),
            "AD" => Ok(ProtocolKind::Ad),
            "LS" => Ok(ProtocolKind::Ls),
            "DSI" => Ok(ProtocolKind::Dsi),
            other => Err(format!("unknown protocol `{other}`")),
        }
    }
}

impl ToJson for LsConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("default_tagged", self.default_tagged.to_json()),
            (
                "keep_on_unpaired_write",
                self.keep_on_unpaired_write.to_json(),
            ),
            ("tag_hysteresis", self.tag_hysteresis.to_json()),
            ("detag_hysteresis", self.detag_hysteresis.to_json()),
        ])
    }
}

impl FromJson for LsConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(LsConfig {
            default_tagged: j.field("default_tagged")?,
            keep_on_unpaired_write: j.field("keep_on_unpaired_write")?,
            tag_hysteresis: j.field("tag_hysteresis")?,
            detag_hysteresis: j.field("detag_hysteresis")?,
        })
    }
}

impl ToJson for AdConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![("default_tagged", self.default_tagged.to_json())])
    }
}

impl FromJson for AdConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(AdConfig {
            default_tagged: j.field("default_tagged")?,
        })
    }
}

impl ToJson for ProtocolConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", self.kind.to_json()),
            ("ls", self.ls.to_json()),
            ("ad", self.ad.to_json()),
        ])
    }
}

impl FromJson for ProtocolConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        // Built via `new` rather than a struct literal: the testing-only
        // mutation field is not part of the canonical encoding and always
        // decodes to `None`.
        let mut cfg = ProtocolConfig::new(j.field("kind")?);
        cfg.ls = j.field("ls")?;
        cfg.ad = j.field("ad")?;
        Ok(cfg)
    }
}

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        match self {
            Topology::PointToPoint => Json::obj(vec![("type", "point_to_point".to_json())]),
            Topology::Mesh2D { width } => Json::obj(vec![
                ("type", "mesh2d".to_json()),
                ("width", width.to_json()),
            ]),
        }
    }
}

impl FromJson for Topology {
    fn from_json(j: &Json) -> Result<Self, String> {
        match j.field::<String>("type")?.as_str() {
            "point_to_point" => Ok(Topology::PointToPoint),
            "mesh2d" => Ok(Topology::Mesh2D {
                width: j.field("width")?,
            }),
            other => Err(format!("unknown topology `{other}`")),
        }
    }
}

impl ToJson for FaultConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("nack_per_mille", self.nack_per_mille.to_json()),
            ("delay_per_mille", self.delay_per_mille.to_json()),
            ("drop_per_mille", self.drop_per_mille.to_json()),
            ("dup_per_mille", self.dup_per_mille.to_json()),
            ("reorder_per_mille", self.reorder_per_mille.to_json()),
            ("max_delay_cycles", self.max_delay_cycles.to_json()),
            (
                "max_consecutive_nacks",
                self.max_consecutive_nacks.to_json(),
            ),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for FaultConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        let cfg = FaultConfig {
            nack_per_mille: j.field("nack_per_mille")?,
            delay_per_mille: j.field("delay_per_mille")?,
            drop_per_mille: j.field("drop_per_mille")?,
            dup_per_mille: j.field("dup_per_mille")?,
            reorder_per_mille: j.field("reorder_per_mille")?,
            max_delay_cycles: j.field("max_delay_cycles")?,
            max_consecutive_nacks: j.field("max_consecutive_nacks")?,
            seed: j.field("seed")?,
            #[cfg(feature = "testing")]
            mutation: None,
        };
        // Reject out-of-range rates at the decode boundary, so a hand-edited
        // experiment file fails loudly instead of seeding a nonsense plan.
        cfg.validate().map_err(|e| format!("faults: {e}"))?;
        Ok(cfg)
    }
}

impl ToJson for MachineConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("nodes", self.nodes.to_json()),
            ("l1", self.l1.to_json()),
            ("l2", self.l2.to_json()),
            ("latency", self.latency.to_json()),
            ("protocol", self.protocol.to_json()),
            ("page_bytes", self.page_bytes.to_json()),
            ("schedule_quantum", self.schedule_quantum.to_json()),
            ("seed", self.seed.to_json()),
            ("consistency", self.consistency.to_json()),
            ("topology", self.topology.to_json()),
            ("faults", self.faults.to_json()),
        ])
    }
}

impl FromJson for MachineConfig {
    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(MachineConfig {
            nodes: j.field("nodes")?,
            l1: j.field("l1")?,
            l2: j.field("l2")?,
            latency: j.field("latency")?,
            protocol: j.field("protocol")?,
            page_bytes: j.field("page_bytes")?,
            schedule_quantum: j.field("schedule_quantum")?,
            seed: j.field("seed")?,
            consistency: j.field("consistency")?,
            topology: j.field("topology")?,
            faults: j.field("faults")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_config_round_trips() {
        for kind in [
            ProtocolKind::Baseline,
            ProtocolKind::Ad,
            ProtocolKind::Ls,
            ProtocolKind::Dsi,
        ] {
            let mut cfg = MachineConfig::splash_baseline(kind);
            cfg.consistency = Consistency::Relaxed;
            cfg.topology = Topology::Mesh2D { width: 2 };
            cfg.protocol.ls.tag_hysteresis = 2;
            cfg.faults = FaultConfig {
                nack_per_mille: 25,
                delay_per_mille: 10,
                drop_per_mille: 15,
                dup_per_mille: 12,
                reorder_per_mille: 9,
                max_delay_cycles: 80,
                max_consecutive_nacks: 6,
                seed: 0xFA17,
                ..FaultConfig::default()
            };
            let text = cfg.to_json().to_string();
            let back = MachineConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn fault_config_in_range_decodes() {
        let cfg = FaultConfig {
            nack_per_mille: 1000,
            delay_per_mille: 1000,
            drop_per_mille: 1000,
            dup_per_mille: 1000,
            reorder_per_mille: 1000,
            max_delay_cycles: 1,
            max_consecutive_nacks: 1,
            seed: 7,
            ..FaultConfig::default()
        };
        let back =
            FaultConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn fault_config_out_of_range_rates_are_rejected_at_decode() {
        let mut bad = FaultConfig {
            nack_per_mille: 1001,
            ..FaultConfig::default()
        };
        let err =
            FaultConfig::from_json(&Json::parse(&bad.to_json().to_string()).unwrap()).unwrap_err();
        assert!(err.contains("faults:"), "{err}");
        assert!(err.contains("NACK rate 1001/1000"), "{err}");

        bad = FaultConfig {
            delay_per_mille: 2000,
            max_delay_cycles: 10,
            ..FaultConfig::default()
        };
        let err =
            FaultConfig::from_json(&Json::parse(&bad.to_json().to_string()).unwrap()).unwrap_err();
        assert!(err.contains("delay rate 2000/1000"), "{err}");

        // Delay enabled but with no spike budget is equally nonsensical.
        bad = FaultConfig {
            delay_per_mille: 5,
            max_delay_cycles: 0,
            ..FaultConfig::default()
        };
        let err =
            FaultConfig::from_json(&Json::parse(&bad.to_json().to_string()).unwrap()).unwrap_err();
        assert!(err.contains("max_delay_cycles"), "{err}");

        // Each transport-fault rate is bounded at the same decode boundary.
        for (set, needle) in [
            (
                (|f: &mut FaultConfig| f.drop_per_mille = 1001) as fn(&mut FaultConfig),
                "drop rate 1001/1000",
            ),
            (
                |f: &mut FaultConfig| f.dup_per_mille = 1200,
                "dup rate 1200/1000",
            ),
            (
                |f: &mut FaultConfig| f.reorder_per_mille = 4000,
                "reorder rate 4000/1000",
            ),
        ] {
            let mut bad = FaultConfig::default();
            set(&mut bad);
            let err = FaultConfig::from_json(&Json::parse(&bad.to_json().to_string()).unwrap())
                .unwrap_err();
            assert!(err.contains("faults:"), "{err}");
            assert!(err.contains(needle), "{err}");
        }

        // A zero forced-delivery bound would let NACK/drop streaks run
        // unbounded; it is rejected with the same prefix convention.
        bad = FaultConfig {
            max_consecutive_nacks: 0,
            ..FaultConfig::default()
        };
        let err =
            FaultConfig::from_json(&Json::parse(&bad.to_json().to_string()).unwrap()).unwrap_err();
        assert!(err.contains("faults:"), "{err}");
        assert!(err.contains("max_consecutive_nacks"), "{err}");

        // The invalid rate also poisons a whole MachineConfig decode.
        let mut machine = MachineConfig::splash_baseline(ProtocolKind::Ls);
        machine.faults.nack_per_mille = 9999;
        let err = MachineConfig::from_json(&Json::parse(&machine.to_json().to_string()).unwrap())
            .unwrap_err();
        assert!(err.contains("faults:"), "{err}");

        let mut machine = MachineConfig::splash_baseline(ProtocolKind::Ls);
        machine.faults.drop_per_mille = 9999;
        let err = MachineConfig::from_json(&Json::parse(&machine.to_json().to_string()).unwrap())
            .unwrap_err();
        assert!(err.contains("faults:"), "{err}");
    }

    #[test]
    fn distinct_configs_encode_distinctly() {
        let a = MachineConfig::splash_baseline(ProtocolKind::Ls);
        let b = a.with_block_bytes(32);
        let c = MachineConfig::splash_baseline(ProtocolKind::Ad);
        assert_ne!(a.to_json().to_string(), b.to_json().to_string());
        assert_ne!(a.to_json().to_string(), c.to_json().to_string());
    }

    #[test]
    fn encoding_is_stable() {
        let cfg = MachineConfig::splash_baseline(ProtocolKind::Ls);
        assert_eq!(cfg.to_json().to_string(), cfg.to_json().to_string());
        // Spot-check the canonical spelling the cache key depends on.
        let j = cfg.to_json();
        assert_eq!(j.field::<u16>("nodes").unwrap(), 4);
        assert_eq!(
            j.req("protocol")
                .unwrap()
                .field::<ProtocolKind>("kind")
                .unwrap()
                .label(),
            "LS"
        );
    }
}
