//! Interconnect topologies.
//!
//! The paper's machine uses a point-to-point network with a fixed traversal
//! delay (§4.2) — [`Topology::PointToPoint`]. As an extension, the
//! simulator also offers a 2-D mesh with dimension-ordered (X-then-Y)
//! routing, where distance costs hops and every traversed link is a
//! contention point; this lets the harness ask how the LS/AD traffic
//! reductions translate when link bandwidth, not just latency, is scarce.

use crate::NodeId;
/// Shape of the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Fully connected, fixed one-traversal delay (the paper's network).
    PointToPoint,
    /// `width × ceil(nodes/width)` mesh, dimension-ordered routing, one
    /// `net` delay per hop.
    Mesh2D { width: u16 },
}

impl Topology {
    /// (x, y) position of a node in the mesh.
    fn coords(self, n: NodeId) -> (u16, u16) {
        match self {
            Topology::PointToPoint => (n.0, 0),
            Topology::Mesh2D { width } => (n.0 % width, n.0 / width),
        }
    }

    /// Number of link traversals between two nodes.
    pub fn hops(self, from: NodeId, to: NodeId) -> u64 {
        if from == to {
            return 0;
        }
        match self {
            Topology::PointToPoint => 1,
            Topology::Mesh2D { .. } => {
                let (fx, fy) = self.coords(from);
                let (tx, ty) = self.coords(to);
                (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
            }
        }
    }

    /// The sequence of directed links (as node pairs) a message traverses
    /// under dimension-ordered routing. Empty for a local transfer.
    pub fn route(self, from: NodeId, to: NodeId) -> Vec<(NodeId, NodeId)> {
        if from == to {
            return Vec::new();
        }
        match self {
            Topology::PointToPoint => vec![(from, to)],
            Topology::Mesh2D { width } => {
                let mut links = Vec::new();
                let (mut x, mut y) = self.coords(from);
                let (tx, ty) = self.coords(to);
                let mut cur = from;
                while x != tx {
                    x = if x < tx { x + 1 } else { x - 1 };
                    let next = NodeId(y * width + x);
                    links.push((cur, next));
                    cur = next;
                }
                while y != ty {
                    y = if y < ty { y + 1 } else { y - 1 };
                    let next = NodeId(y * width + x);
                    links.push((cur, next));
                    cur = next;
                }
                links
            }
        }
    }

    /// Validate against a node count.
    pub fn validate(self, nodes: u16) -> Result<(), String> {
        match self {
            Topology::PointToPoint => Ok(()),
            Topology::Mesh2D { width } => {
                if width == 0 {
                    Err("mesh width must be positive".into())
                } else if !nodes.is_multiple_of(width) {
                    Err(format!("{nodes} nodes do not fill a width-{width} mesh"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_is_always_one_hop() {
        let t = Topology::PointToPoint;
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(t.hops(NodeId(2), NodeId(2)), 0);
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![(NodeId(0), NodeId(3))]);
    }

    #[test]
    fn mesh_manhattan_distance() {
        // 4x2 mesh: node ids 0..8; node n at (n%4, n/4).
        let t = Topology::Mesh2D { width: 4 };
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 4);
        assert_eq!(t.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(t.hops(NodeId(1), NodeId(6)), 2);
    }

    #[test]
    fn mesh_routing_is_x_then_y() {
        let t = Topology::Mesh2D { width: 4 };
        let r = t.route(NodeId(0), NodeId(6));
        // (0,0) -> (1,0) -> (2,0) -> (2,1).
        assert_eq!(
            r,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(6))
            ]
        );
        // Route length always equals hop count.
        for a in 0..8u16 {
            for b in 0..8u16 {
                assert_eq!(
                    t.route(NodeId(a), NodeId(b)).len() as u64,
                    t.hops(NodeId(a), NodeId(b))
                );
            }
        }
    }

    #[test]
    fn mesh_route_links_are_adjacent() {
        let t = Topology::Mesh2D { width: 4 };
        for a in 0..8u16 {
            for b in 0..8u16 {
                let mut cur = NodeId(a);
                for (f, to) in t.route(NodeId(a), NodeId(b)) {
                    assert_eq!(f, cur, "route must be contiguous");
                    assert_eq!(t.hops(f, to), 1, "each link is one hop");
                    cur = to;
                }
                if a != b {
                    assert_eq!(cur, NodeId(b), "route must end at the destination");
                }
            }
        }
    }

    #[test]
    fn validation() {
        assert!(Topology::PointToPoint.validate(7).is_ok());
        assert!(Topology::Mesh2D { width: 4 }.validate(8).is_ok());
        assert!(Topology::Mesh2D { width: 4 }.validate(6).is_err());
        assert!(Topology::Mesh2D { width: 0 }.validate(4).is_err());
    }
}
