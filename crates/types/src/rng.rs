//! Deterministic pseudo-random number generation for workload construction.
//!
//! The simulator itself is fully deterministic; randomness only enters via
//! workload inputs (particle positions, transaction streams, matrix
//! structure). `SimRng` wraps `ccsim_util`'s xoshiro256++ generator behind
//! a small, stable interface so every workload draws from one seeded
//! source with a stream that is fixed across platforms and builds.

use ccsim_util::Xoshiro256pp;

/// Seeded RNG with the handful of draw shapes the workloads need.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for a sub-component (e.g. one per
    /// simulated processor) from this RNG's seed space.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.below(bound)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.inner.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.range(5, 15);
            assert!((5..15).contains(&x));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + f64::EPSILON)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle should move something");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut base1 = SimRng::seed_from_u64(5);
        let mut base2 = SimRng::seed_from_u64(5);
        let mut f1 = base1.fork(1);
        let mut f2 = base2.fork(1);
        for _ in 0..32 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut g1 = base1.fork(2);
        let diff = (0..16).filter(|_| f1.next_u64() != g1.next_u64()).count();
        assert!(diff > 0);
    }
}
