//! Trace capture and trace-driven replay.
//!
//! The engine normally runs *program-driven* (workload closures execute on
//! live threads, §4's methodology). This module adds the classical
//! *trace-driven* mode: capture the global memory-access stream of one run,
//! then replay it — cheaply, with no threads — through fresh machines with
//! different protocols, cache geometries or networks.
//!
//! Replaying under the **same** configuration reproduces the original run
//! exactly (asserted in tests): the captured order *is* the simulated-time
//! order, and all latencies are deterministic functions of machine state.
//! Replaying under a **different** configuration carries the standard
//! trace-driven caveat: the interleaving stays as captured instead of
//! adapting to the new timing — fine for coherence/miss studies, biased for
//! fine-grained synchronization races.
//!
//! Traces serialize to a compact, versioned binary format (`to_bytes` /
//! `from_bytes`) so they can be stored and shared.

use ccsim_types::{Addr, MachineConfig, NodeId};

use crate::invariants::{InvariantMode, InvariantReport};
use crate::machine::Machine;
use crate::oracle::Component;
use crate::stats::{ProcTimes, RunStats};

/// One captured operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Load(Addr),
    /// Plain store (also the write half of a captured RMW; the stored value
    /// reproduces the original computation).
    Store(Addr, u64),
    /// Load with the static exclusive hint.
    LoadExclusive(Addr),
    Busy(u64),
    SetComponent(Component),
}

/// One event: which processor did what (in global simulated-time order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub proc: u16,
    pub op: TraceOp,
}

/// A captured access stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    pub(crate) events: Vec<TraceEvent>,
    /// Number of processors that contributed.
    pub(crate) procs: u16,
}

const MAGIC: u32 = 0xCC51_7ACE;
const VERSION: u32 = 1;

/// Why a byte stream failed to decode as a [`Trace`]. Every malformed input
/// maps to one of these — decoding never panics and never over-allocates,
/// no matter how garbled the bytes are (same policy as the PR 2 run-cache
/// quarantine: corrupt artifacts are reported and skipped, not trusted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The stream ended inside a header or an event.
    Truncated,
    /// The first word is not the trace magic.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// The header's processor count exceeds `u16` (the event encoding).
    TooManyProcs(u32),
    /// The declared event count cannot fit in the remaining bytes (each
    /// event needs at least 3), so the header is lying.
    EventCountOverflow { declared: u64, max_possible: u64 },
    /// Unknown operation tag in an event.
    BadOpTag(u8),
    /// Unknown component tag in a `SetComponent` event.
    BadComponentTag(u8),
    /// An event names a processor outside the header's range.
    ProcOutOfRange { index: usize, proc: u16, procs: u16 },
    /// Decoding succeeded but bytes remain past the declared events.
    TrailingBytes(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadMagic(m) => write!(f, "not a ccsim trace (magic {m:#010x})"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::TooManyProcs(n) => write!(f, "processor count {n} exceeds u16"),
            TraceError::EventCountOverflow {
                declared,
                max_possible,
            } => write!(
                f,
                "header declares {declared} events but at most {max_possible} fit in the stream"
            ),
            TraceError::BadOpTag(t) => write!(f, "bad op tag {t}"),
            TraceError::BadComponentTag(t) => write!(f, "bad component tag {t}"),
            TraceError::ProcOutOfRange { index, proc, procs } => write!(
                f,
                "event {index} names processor {proc}, but the trace declares {procs}"
            ),
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after the last event"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Build a trace from explicit events, validating processor ranges
    /// (the same checks [`Trace::from_bytes`] applies).
    pub fn from_events(procs: u16, events: Vec<TraceEvent>) -> Result<Trace, TraceError> {
        for (index, e) in events.iter().enumerate() {
            if e.proc >= procs {
                return Err(TraceError::ProcOutOfRange {
                    index,
                    proc: e.proc,
                    procs,
                });
            }
        }
        Ok(Trace { events, procs })
    }
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn procs(&self) -> u16 {
        self.procs
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 20);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.procs as u32).to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.proc.to_le_bytes());
            match e.op {
                TraceOp::Load(a) => {
                    out.push(0);
                    out.extend_from_slice(&a.0.to_le_bytes());
                }
                TraceOp::Store(a, v) => {
                    out.push(1);
                    out.extend_from_slice(&a.0.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                TraceOp::LoadExclusive(a) => {
                    out.push(2);
                    out.extend_from_slice(&a.0.to_le_bytes());
                }
                TraceOp::Busy(c) => {
                    out.push(3);
                    out.extend_from_slice(&c.to_le_bytes());
                }
                TraceOp::SetComponent(c) => {
                    out.push(4);
                    out.push(match c {
                        Component::App => 0,
                        Component::Lib => 1,
                        Component::Os => 2,
                    });
                }
            }
        }
        out
    }

    /// Deserialize from [`Trace::to_bytes`] output.
    ///
    /// Total: validates the header, every event, and that nothing trails the
    /// last declared event. Allocation is bounded by the input length, not
    /// the (untrusted) declared event count.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        struct R<'a>(&'a [u8], usize);
        impl R<'_> {
            fn take<const N: usize>(&mut self) -> Result<[u8; N], TraceError> {
                let end = self.1 + N;
                if end > self.0.len() {
                    return Err(TraceError::Truncated);
                }
                let mut a = [0u8; N];
                a.copy_from_slice(&self.0[self.1..end]);
                self.1 = end;
                Ok(a)
            }
            fn u8(&mut self) -> Result<u8, TraceError> {
                Ok(self.take::<1>()?[0])
            }
            fn u16(&mut self) -> Result<u16, TraceError> {
                Ok(u16::from_le_bytes(self.take()?))
            }
            fn u32(&mut self) -> Result<u32, TraceError> {
                Ok(u32::from_le_bytes(self.take()?))
            }
            fn u64(&mut self) -> Result<u64, TraceError> {
                Ok(u64::from_le_bytes(self.take()?))
            }
            fn remaining(&self) -> usize {
                self.0.len() - self.1
            }
        }
        let mut r = R(bytes, 0);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let procs_raw = r.u32()?;
        let procs = u16::try_from(procs_raw).map_err(|_| TraceError::TooManyProcs(procs_raw))?;
        let declared = r.u64()?;
        // Every event carries at least proc (u16) + op tag (u8) = 3 bytes,
        // so a declared count beyond remaining/3 cannot be honest. This also
        // bounds the Vec pre-allocation by the input length rather than the
        // untrusted count.
        let max_possible = (r.remaining() / 3) as u64;
        if declared > max_possible {
            return Err(TraceError::EventCountOverflow {
                declared,
                max_possible,
            });
        }
        let n = declared as usize;
        let mut events = Vec::with_capacity(n);
        for index in 0..n {
            let proc = r.u16()?;
            if proc >= procs {
                return Err(TraceError::ProcOutOfRange { index, proc, procs });
            }
            let op = match r.u8()? {
                0 => TraceOp::Load(Addr(r.u64()?)),
                1 => TraceOp::Store(Addr(r.u64()?), r.u64()?),
                2 => TraceOp::LoadExclusive(Addr(r.u64()?)),
                3 => TraceOp::Busy(r.u64()?),
                4 => TraceOp::SetComponent(match r.u8()? {
                    0 => Component::App,
                    1 => Component::Lib,
                    2 => Component::Os,
                    x => return Err(TraceError::BadComponentTag(x)),
                }),
                x => return Err(TraceError::BadOpTag(x)),
            };
            events.push(TraceEvent { proc, op });
        }
        if r.remaining() != 0 {
            return Err(TraceError::TrailingBytes(r.remaining()));
        }
        Ok(Trace { events, procs })
    }
}

/// Replay a captured trace through a fresh machine.
///
/// `cfg.nodes` must cover every processor in the trace. Initial memory is
/// zero; seed values with `init` pairs if the captured run used `init`.
/// Invariant checking follows `CCSIM_INVARIANTS` (the machine default); use
/// [`replay_checked`] to force a mode and read back the report.
///
/// Honours `CCSIM_SIM_THREADS`: at 2 or more, footprint planning fans out
/// over the sharded sweep in [`crate::parallel`]. Results are bit-identical
/// to the single-threaded path by construction (commits stay in capture
/// order), which the parallel-determinism suite pins.
pub fn replay(cfg: MachineConfig, trace: &Trace, init: &[(Addr, u64)]) -> RunStats {
    let threads = crate::parallel::sim_threads_from_env();
    if threads > 1 {
        return crate::parallel::replay_with_threads(cfg, trace, init, threads);
    }
    replay_inner(cfg, trace, init, None, false).0
}

/// Replay with an explicit invariant-checking mode, returning what the
/// checker observed alongside the stats. This is how model-checker
/// counterexamples are validated against the concrete engine: convert to a
/// trace, replay under [`InvariantMode::Check`] (or `Strict` to panic at the
/// first violation), and inspect the report.
pub fn replay_checked(
    cfg: MachineConfig,
    trace: &Trace,
    init: &[(Addr, u64)],
    mode: InvariantMode,
) -> (RunStats, InvariantReport) {
    let (stats, report, _) = replay_inner(cfg, trace, init, Some(mode), false);
    (stats, report)
}

/// Replay while capturing the coherence event log (see [`crate::events`])
/// for SC-conformance analysis — the trace-file path of `ccsim race`.
/// Honours `CCSIM_SIM_THREADS` like [`replay`].
pub fn replay_events(
    cfg: MachineConfig,
    trace: &Trace,
    init: &[(Addr, u64)],
) -> (RunStats, crate::events::EventLog) {
    let threads = crate::parallel::sim_threads_from_env();
    if threads > 1 {
        return crate::parallel::replay_events_with_threads(cfg, trace, init, threads);
    }
    let (stats, _, log) = replay_inner(cfg, trace, init, None, true);
    // ccsim-lint: allow(unwrap): capture was requested, so the log exists
    (stats, log.expect("event capture was enabled"))
}

/// The serial commit engine behind every replay flavour: a fresh machine
/// plus the per-processor clocks, time-attribution buckets, and component
/// state, advanced one captured event at a time. The parallel sweep in
/// [`crate::parallel`] drives this *same* state frame by frame, in capture
/// order — which is why its results are bit-identical to serial replay.
pub(crate) struct ReplayState {
    machine: Machine,
    cfg: MachineConfig,
    clocks: Vec<u64>,
    times: Vec<ProcTimes>,
    comp: Vec<Component>,
}

impl ReplayState {
    pub(crate) fn new(
        cfg: MachineConfig,
        trace: &Trace,
        init: &[(Addr, u64)],
        mode: Option<InvariantMode>,
        capture_events: bool,
    ) -> ReplayState {
        assert!(
            cfg.nodes >= trace.procs,
            "trace uses {} processors, machine has {}",
            trace.procs,
            cfg.nodes
        );
        let mut machine = Machine::new(cfg);
        if let Some(m) = mode {
            machine.set_invariant_mode(m);
        }
        if capture_events {
            machine.capture_events();
        }
        for &(a, v) in init {
            machine.poke(a, v);
        }
        let n = trace.procs as usize;
        ReplayState {
            machine,
            cfg,
            clocks: vec![0u64; n],
            times: vec![ProcTimes::default(); n],
            comp: vec![Component::App; n],
        }
    }

    /// Commit one captured event.
    // ccsim-lint: allow(panic-path): replay ops index per-proc tables sized from the trace header at load time
    pub(crate) fn apply(&mut self, e: &TraceEvent) {
        let p = e.proc as usize;
        let id = NodeId(e.proc);
        let t0 = self.clocks[p];
        match e.op {
            TraceOp::Load(a) => {
                let (_, t1, stall) = self.machine.load(id, a, t0);
                attribute(&mut self.times[p], t0, t1, stall);
                self.clocks[p] = t1;
            }
            TraceOp::Store(a, v) => {
                let (t1, stall) = self.machine.write(id, a, v, t0, self.comp[p]);
                attribute(&mut self.times[p], t0, t1, stall);
                self.clocks[p] = t1;
            }
            TraceOp::LoadExclusive(a) => {
                let (_, t1, stall) = self.machine.load_exclusive(id, a, t0);
                attribute(&mut self.times[p], t0, t1, stall);
                self.clocks[p] = t1;
            }
            TraceOp::Busy(c) => {
                self.times[p].busy += c;
                self.clocks[p] += c;
            }
            TraceOp::SetComponent(c) => self.comp[p] = c,
        }
    }

    pub(crate) fn finish(mut self) -> (RunStats, InvariantReport, Option<crate::events::EventLog>) {
        let report = self.machine.invariant_report().clone();
        let log = self.machine.take_event_log();
        let stats = RunStats {
            protocol: self.cfg.protocol.kind,
            config: self.cfg,
            exec_cycles: self.clocks.iter().copied().max().unwrap_or(0),
            per_proc: self.times,
            traffic: self.machine.traffic().clone(),
            dir: self.machine.dir_stats(),
            machine: self.machine.counters(),
            oracle: *self.machine.oracle_stats(),
            false_sharing: *self.machine.false_sharing_stats(),
        };
        (stats, report, log)
    }
}

fn replay_inner(
    cfg: MachineConfig,
    trace: &Trace,
    init: &[(Addr, u64)],
    mode: Option<InvariantMode>,
    capture_events: bool,
) -> (RunStats, InvariantReport, Option<crate::events::EventLog>) {
    let mut st = ReplayState::new(cfg, trace, init, mode, capture_events);
    for e in &trace.events {
        st.apply(e);
    }
    st.finish()
}

fn attribute(t: &mut ProcTimes, t0: u64, t1: u64, stall: crate::machine::StallKind) {
    let dt = t1 - t0;
    match stall {
        crate::machine::StallKind::None => t.busy += dt,
        crate::machine::StallKind::Read => t.read_stall += dt,
        crate::machine::StallKind::Write => t.write_stall += dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::SimBuilder;
    use ccsim_types::ProtocolKind;

    fn capture_counter_run(kind: ProtocolKind) -> (RunStats, Trace) {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(kind));
        b.capture_trace();
        let a = b.alloc().alloc_padded(8, 64);
        for _ in 0..4 {
            b.spawn(move |p| {
                for _ in 0..50 {
                    p.fetch_add(a, 1);
                    p.busy(23);
                }
            });
        }
        let mut done = b.run_full();
        let trace = done.take_trace().expect("capture was enabled");
        (done.stats, trace)
    }

    #[test]
    fn replay_same_config_reproduces_run_exactly() {
        for kind in ProtocolKind::ALL {
            let (orig, trace) = capture_counter_run(kind);
            let replayed = replay(MachineConfig::splash_baseline(kind), &trace, &[]);
            assert_eq!(replayed.exec_cycles, orig.exec_cycles, "{kind:?}");
            assert_eq!(
                replayed.traffic.total_bytes(),
                orig.traffic.total_bytes(),
                "{kind:?}"
            );
            assert_eq!(replayed.dir.global_reads, orig.dir.global_reads);
            assert_eq!(replayed.machine.silent_stores, orig.machine.silent_stores);
            assert_eq!(
                replayed.oracle.total().global_writes,
                orig.oracle.total().global_writes
            );
            for (a, b) in replayed.per_proc.iter().zip(&orig.per_proc) {
                assert_eq!(a, b, "{kind:?}: per-proc times diverged");
            }
        }
    }

    #[test]
    fn replay_under_different_protocol() {
        let (base, trace) = capture_counter_run(ProtocolKind::Baseline);
        let ls = replay(
            MachineConfig::splash_baseline(ProtocolKind::Ls),
            &trace,
            &[],
        );
        assert!(
            ls.machine.silent_stores > 0,
            "LS replay should fire the optimization"
        );
        assert!(ls.write_stall() < base.write_stall());
        assert!(ls.traffic.total_bytes() < base.traffic.total_bytes());
    }

    #[test]
    fn binary_round_trip() {
        let (_, trace) = capture_counter_run(ProtocolKind::Baseline);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Trace::from_bytes(b"not a trace").is_err());
        assert!(Trace::from_bytes(&[]).is_err());
        // Valid header, truncated body.
        let (_, trace) = capture_counter_run(ProtocolKind::Baseline);
        let bytes = trace.to_bytes();
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn capture_records_components_and_hints() {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
        b.capture_trace();
        let a = b.alloc().alloc_words(1);
        b.spawn(move |p| {
            p.set_component(Component::Os);
            p.load_exclusive(a);
            p.store(a, 7);
        });
        let mut done = b.run_full();
        let trace = done.take_trace().unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.op, TraceOp::SetComponent(Component::Os))));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.op, TraceOp::LoadExclusive(_))));
        // Replay preserves the component attribution.
        let r = replay(
            MachineConfig::splash_baseline(ProtocolKind::Baseline),
            &trace,
            &[],
        );
        assert_eq!(r.oracle.component(Component::Os).global_writes, 1);
    }

    #[test]
    fn replay_with_seeded_memory() {
        let mut b = SimBuilder::new(MachineConfig::splash_baseline(ProtocolKind::Baseline));
        b.capture_trace();
        let a = b.alloc().alloc_words(1);
        b.init(a, 41);
        b.spawn(move |p| {
            let v = p.load(a);
            p.store(a, v + 1);
        });
        let mut done = b.run_full();
        let trace = done.take_trace().unwrap();
        // Replay applies the captured store value: memory must end at 42
        // regardless of seeding — the trace carries the computed value.
        let r = replay(
            MachineConfig::splash_baseline(ProtocolKind::Ls),
            &trace,
            &[(a, 41)],
        );
        assert_eq!(r.dir.global_reads, 1);
    }
}
