//! Block → shard partitioning and deterministic cross-worker merging for
//! the planning-parallel replay sweep (see [`crate::parallel`]).
//!
//! A *shard* is a disjoint slice of directory state: every block belongs to
//! exactly one shard, chosen by a stable hash of its block index, so two
//! operations on different shards touch disjoint per-block state by
//! construction. The sweep uses this to decide which captured operations
//! may share a frame, and — when workers plan concurrently — to tag each
//! per-worker buffer entry with a total order key so merging is a stable
//! sort, independent of which worker produced what.

use ccsim_types::BlockAddr;
use ccsim_util::fnv1a64;

/// The block → shard partition: a pure function of the block address, the
/// block size, and the shard count.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    shards: usize,
    block_bytes: u64,
}

impl ShardMap {
    pub fn new(shards: usize, block_bytes: u64) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(block_bytes.is_power_of_two() && block_bytes > 0);
        ShardMap {
            shards,
            block_bytes,
        }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `block`. Hashed (not `index % shards`) so strided
    /// access patterns — the common case in the paper's workloads — spread
    /// across shards instead of aliasing onto a few. FNV-1a alone keeps
    /// stride structure in its low bits, so a splitmix64 finalizer scrambles
    /// them before the modulo.
    #[inline]
    pub fn shard_of(&self, block: BlockAddr) -> usize {
        let mut x = fnv1a64(&(block.0 / self.block_bytes).to_le_bytes());
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.shards as u64) as usize
    }
}

/// Total-order key of one planned record: produced inside frame `quantum`,
/// for processor `node`, as that worker's `seq`-th record. Keys are unique
/// across a sweep (a processor contributes at most one operation per frame,
/// and `seq` disambiguates multi-record plans), which is what makes the
/// merge below canonical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    pub quantum: u64,
    pub node: u16,
    pub seq: u32,
}

/// Merge per-worker plan buffers into one canonical sequence: concatenate,
/// then stable-sort by `(quantum, node, seq)`. Because keys are unique, the
/// result is independent of the number of workers, of how records were
/// distributed across buffers, and of buffer order — the property the
/// sweep's determinism rests on (asserted in debug builds).
pub fn merge_plans<T>(buffers: Vec<Vec<(PlanKey, T)>>) -> Vec<(PlanKey, T)> {
    let mut all: Vec<(PlanKey, T)> = buffers.into_iter().flatten().collect();
    all.sort_by_key(|(k, _)| *k);
    debug_assert!(
        all.windows(2).all(|w| w[0].0 < w[1].0),
        "plan keys must be unique for the merge to be canonical"
    );
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_types::Addr;
    use ccsim_util::check::cases;

    #[test]
    fn every_block_lands_in_exactly_one_shard_in_range() {
        cases(64, |g| {
            let shards = g.urange(1, 33);
            let block_bytes = 1u64 << g.range(4, 9); // 16..=256
            let map = ShardMap::new(shards, block_bytes);
            for _ in 0..64 {
                let block = Addr(g.u64() >> 12).block(block_bytes);
                let s = map.shard_of(block);
                assert!(s < shards, "shard {s} out of {shards}");
                // The partition is a function: same block, same shard.
                assert_eq!(map.shard_of(block), s);
            }
        });
    }

    #[test]
    fn sharding_distributes_strided_blocks() {
        // A power-of-two stride must not collapse onto one shard (the
        // reason the partition hashes instead of taking `index % shards`).
        let map = ShardMap::new(8, 32);
        let mut seen = [false; 8];
        for i in 0..64u64 {
            seen[map.shard_of(Addr(i * 32 * 8).block(32))] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 4, "{seen:?}");
    }

    #[test]
    fn merge_is_invariant_under_worker_distribution() {
        cases(128, |g| {
            // A random set of unique keys with payloads...
            let n = g.urange(1, 40);
            let mut records: Vec<(PlanKey, u64)> = (0..n)
                .map(|i| {
                    (
                        PlanKey {
                            quantum: g.below(6),
                            node: g.below(4) as u16,
                            seq: i as u32, // uniquifier
                        },
                        g.u64(),
                    )
                })
                .collect();
            let mut canonical = merge_plans(vec![records.clone()]);
            // ...shuffled and dealt across a random number of worker
            // buffers must merge to the same canonical order.
            for _ in 0..records.len() {
                let a = g.urange(0, records.len());
                let b = g.urange(0, records.len());
                records.swap(a, b);
            }
            let workers = g.urange(1, 9);
            let mut buffers: Vec<Vec<(PlanKey, u64)>> = (0..workers).map(|_| Vec::new()).collect();
            for r in records {
                let w = g.urange(0, workers);
                buffers[w].push(r);
            }
            let merged = merge_plans(buffers);
            assert_eq!(merged, canonical);
            // Idempotent: merging the merged sequence changes nothing.
            canonical = merge_plans(vec![canonical]);
            assert_eq!(merged, canonical);
        });
    }
}
