//! Aggregated results of one simulation run.

use ccsim_core::DirStats;
use ccsim_network::Traffic;
use ccsim_types::{MachineConfig, ProtocolKind};

use crate::machine::MachineCounters;
use crate::oracle::{FalseSharingStats, OracleStats};

/// Execution-time breakdown for one processor, in cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcTimes {
    /// Compute cycles plus cache-hit time.
    pub busy: u64,
    /// Cycles stalled on global reads.
    pub read_stall: u64,
    /// Cycles stalled on ownership acquisitions (SC write stall).
    pub write_stall: u64,
}

impl ProcTimes {
    pub fn total(&self) -> u64 {
        self.busy + self.read_stall + self.write_stall
    }

    pub fn add(&mut self, o: &ProcTimes) {
        self.busy += o.busy;
        self.read_stall += o.read_stall;
        self.write_stall += o.write_stall;
    }
}

/// Everything a paper figure or table needs from one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStats {
    pub protocol: ProtocolKind,
    pub config: MachineConfig,
    /// Wall-clock of the parallel execution: the largest processor clock.
    pub exec_cycles: u64,
    pub per_proc: Vec<ProcTimes>,
    pub traffic: Traffic,
    pub dir: DirStats,
    pub machine: MachineCounters,
    pub oracle: OracleStats,
    pub false_sharing: FalseSharingStats,
}

impl RunStats {
    /// Summed execution-time breakdown over all processors (the figures
    /// normalize this sum, which weights every processor's cycles equally).
    pub fn times(&self) -> ProcTimes {
        let mut t = ProcTimes::default();
        for p in &self.per_proc {
            t.add(p);
        }
        t
    }

    pub fn busy(&self) -> u64 {
        self.times().busy
    }

    pub fn read_stall(&self) -> u64 {
        self.times().read_stall
    }

    pub fn write_stall(&self) -> u64 {
        self.times().write_stall
    }

    /// Aggregate cycles (busy + stalls over all processors).
    pub fn total_cycles(&self) -> u64 {
        self.times().total()
    }

    /// Average invalidations per ownership acquisition.
    pub fn invalidations_per_write(&self) -> f64 {
        let w = self.dir.ownership_acquisitions();
        if w == 0 {
            0.0
        } else {
            self.dir.invalidations_requested as f64 / w as f64
        }
    }

    /// Average invalidations per write *to a shared block* — the paper's
    /// "about 1.4 invalidations on average per write to a shared block"
    /// metric for OLTP (§5.4).
    pub fn invalidations_per_shared_write(&self) -> f64 {
        if self.dir.writes_to_shared == 0 {
            0.0
        } else {
            self.dir.invals_on_shared_writes as f64 / self.dir.writes_to_shared as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_times_sum() {
        let a = ProcTimes {
            busy: 10,
            read_stall: 5,
            write_stall: 3,
        };
        assert_eq!(a.total(), 18);
        let mut b = ProcTimes::default();
        b.add(&a);
        b.add(&a);
        assert_eq!(b.total(), 36);
        assert_eq!(b.busy, 20);
    }
}
