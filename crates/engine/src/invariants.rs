//! Runtime coherence invariant checking.
//!
//! A directory bug would not crash the simulator — it would silently skew
//! every figure the repo reproduces. This module re-derives the protocol's
//! safety conditions from first principles after every protocol action and
//! reports divergence as structured [`InvariantViolation`]s:
//!
//! * **SWMR** — single-writer/multiple-reader: at most one cache holds a
//!   writable (non-`Shared`) copy, and no sharer coexists with such an
//!   owner. `LStemp` (cache state `Excl`, the LS protocol's speculative
//!   exclusive-clean grant) counts as a writable copy.
//! * **State agreement** — the home directory's view (home state + exact
//!   sharer set, the LR pointer, and the LS/migratory tag bit) matches the
//!   actual cache states across the machine.
//! * **Data value** — every load returns the value of the most recent store
//!   to that address, tracked in a golden flat memory maintained
//!   independently of the simulator's store.
//!
//! Cost and strictness are controlled by [`InvariantMode`], selected in
//! code or via `CCSIM_INVARIANTS=off|check|strict`:
//!
//! * `off` (default) — no checking, no overhead beyond one branch.
//! * `check` — violations are collected into an [`InvariantReport`] the
//!   caller can inspect after the run; the simulation continues.
//! * `strict` — the first violation panics with full context (used by the
//!   CI fault soak, where any violation must fail the build).

use ccsim_cache::LineState;
use ccsim_core::rules::copy_violations;
use ccsim_core::{CopyState, DirEntry};
use ccsim_types::{Addr, BlockAddr, NodeId, ProtocolKind};
use ccsim_util::FxHashMap;

/// The safety-rule vocabulary is shared with the bounded model checker —
/// `ccsim_core::rules::SafetyRule` re-exported under the engine's
/// historical name.
pub use ccsim_core::SafetyRule as InvariantRule;

/// How much invariant checking to do, and what to do on a violation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InvariantMode {
    /// No checking (production default).
    #[default]
    Off,
    /// Check and collect violations; never panic.
    Check,
    /// Check and panic on the first violation.
    Strict,
}

impl InvariantMode {
    /// Parse `CCSIM_INVARIANTS`. Unset means [`InvariantMode::Off`]; an
    /// unknown value warns once on stderr and errs on the side of checking.
    pub fn from_env() -> Self {
        match std::env::var("CCSIM_INVARIANTS") {
            Ok(v) => Self::parse(&v),
            Err(_) => InvariantMode::Off,
        }
    }

    /// Parse one mode name (the `CCSIM_INVARIANTS` vocabulary).
    pub fn parse(v: &str) -> Self {
        match v {
            "" | "off" => InvariantMode::Off,
            "check" => InvariantMode::Check,
            "strict" => InvariantMode::Strict,
            other => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    // ccsim-lint: allow(debug-residue): deliberate Once-gated operator warning for a misspelled env var, off the hot path
                    eprintln!(
                        "ccsim: unknown CCSIM_INVARIANTS value `{other}` \
                         (accepted: off, check, strict); assuming `check`"
                    );
                });
                InvariantMode::Check
            }
        }
    }
}

/// One observed violation, with enough context to reproduce it.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    pub rule: InvariantRule,
    pub block: BlockAddr,
    pub cycle: u64,
    /// The node whose access triggered the check.
    pub node: NodeId,
    pub protocol: ProtocolKind,
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at cycle {} via {} ({}): {}",
            self.rule.label(),
            self.block,
            self.cycle,
            self.node,
            self.protocol.label(),
            self.detail
        )
    }
}

/// Cap on stored violations; past it only the count grows (a broken run
/// would otherwise collect one violation per access).
const MAX_RECORDED: usize = 64;

/// Aggregated outcome of a checked run.
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    violations: Vec<InvariantViolation>,
    dropped: u64,
    checks: u64,
}

impl InvariantReport {
    /// Violations recorded (capped at an internal bound; see
    /// [`InvariantReport::total_violations`] for the true count).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Total violations observed, including any dropped past the cap.
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }

    /// Number of invariant checks executed (proof the checker actually ran).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }
}

impl std::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} invariant check(s), {} violation(s)",
            self.checks,
            self.total_violations()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "  ... and {} more (capped)", self.dropped)?;
        }
        Ok(())
    }
}

/// Map a concrete cache line state to the shared rules vocabulary.
pub fn copy_state(s: LineState) -> CopyState {
    match s {
        LineState::Shared => CopyState::Shared,
        LineState::Excl => CopyState::Excl,
        LineState::ExclDirty => CopyState::ExclDirty,
        LineState::Modified => CopyState::Modified,
    }
}

/// Map an abstract copy state back to the concrete cache vocabulary.
pub fn line_state(s: CopyState) -> LineState {
    match s {
        CopyState::Shared => LineState::Shared,
        CopyState::Excl => LineState::Excl,
        CopyState::ExclDirty => LineState::ExclDirty,
        CopyState::Modified => LineState::Modified,
    }
}

/// Compute the invariant violations visible for one block, given the home's
/// directory entry and the actual cache holders `(node, state)`.
///
/// Delegates to [`ccsim_core::rules::copy_violations`] — the *same* checks
/// the bounded model checker applies to every abstract state — after
/// translating the concrete [`LineState`]s.
pub fn block_violations(
    protocol: ProtocolKind,
    block: BlockAddr,
    entry: Option<&DirEntry>,
    holders: &[(NodeId, LineState)],
) -> Vec<(InvariantRule, String)> {
    let abstract_holders: Vec<(NodeId, CopyState)> =
        holders.iter().map(|&(n, s)| (n, copy_state(s))).collect();
    copy_violations(protocol, block, entry, &abstract_holders)
}

/// The per-machine checker: mode, golden memory, and the report.
pub struct InvariantChecker {
    mode: InvariantMode,
    /// Golden flat memory: address -> last stored value. Populated lazily
    /// (first load of an untracked address adopts the observed value), so
    /// the mode can be switched on at any point of a run.
    golden: FxHashMap<Addr, u64>,
    report: InvariantReport,
}

impl InvariantChecker {
    pub fn new(mode: InvariantMode) -> Self {
        InvariantChecker {
            mode,
            golden: FxHashMap::default(),
            report: InvariantReport::default(),
        }
    }

    pub fn mode(&self) -> InvariantMode {
        self.mode
    }

    pub fn set_mode(&mut self, mode: InvariantMode) {
        self.mode = mode;
    }

    pub fn report(&self) -> &InvariantReport {
        &self.report
    }

    /// Track a store (or pre-run poke) in the golden memory.
    pub fn record_golden(&mut self, addr: Addr, value: u64) {
        if self.mode != InvariantMode::Off {
            self.golden.insert(addr, value);
        }
    }

    /// Data-value check for one load.
    pub fn check_value(
        &mut self,
        addr: Addr,
        value: u64,
        block: BlockAddr,
        node: NodeId,
        cycle: u64,
        protocol: ProtocolKind,
    ) {
        if self.mode == InvariantMode::Off {
            return;
        }
        self.report.checks += 1;
        match self.golden.get(&addr) {
            Some(&expect) if expect != value => {
                self.record(InvariantViolation {
                    rule: InvariantRule::DataValue,
                    block,
                    cycle,
                    node,
                    protocol,
                    detail: format!("load of {addr} returned {value:#x}, expected {expect:#x}"),
                });
            }
            Some(_) => {}
            None => {
                self.golden.insert(addr, value);
            }
        }
    }

    /// Run the block-level suite (SWMR, state agreement, entry checks).
    pub fn check_block(
        &mut self,
        protocol: ProtocolKind,
        block: BlockAddr,
        entry: Option<&DirEntry>,
        holders: &[(NodeId, LineState)],
        node: NodeId,
        cycle: u64,
    ) {
        if self.mode == InvariantMode::Off {
            return;
        }
        self.report.checks += 1;
        for (rule, detail) in block_violations(protocol, block, entry, holders) {
            self.record(InvariantViolation {
                rule,
                block,
                cycle,
                node,
                protocol,
                detail,
            });
        }
    }

    /// Record transition-postcondition failures (the `check_*` functions of
    /// `ccsim_core::rules`) as [`InvariantRule::ProtocolRule`] violations.
    pub fn check_rules(
        &mut self,
        violations: Vec<String>,
        block: BlockAddr,
        node: NodeId,
        cycle: u64,
        protocol: ProtocolKind,
    ) {
        if self.mode == InvariantMode::Off {
            return;
        }
        self.report.checks += 1;
        for detail in violations {
            self.record(InvariantViolation {
                rule: InvariantRule::ProtocolRule,
                block,
                cycle,
                node,
                protocol,
                detail,
            });
        }
    }

    // ccsim-lint: allow(panic-path): a coherence invariant violation is fatal by design; committing further frames would corrupt the replay
    fn record(&mut self, v: InvariantViolation) {
        if self.mode == InvariantMode::Strict {
            panic!("coherence invariant violated: {v}");
        }
        if self.report.violations.len() < MAX_RECORDED {
            self.report.violations.push(v);
        } else {
            self.report.dropped += 1;
        }
    }

    /// Test-only: desynchronize the golden memory from the simulated store
    /// so the data-value rule demonstrably fires. Only compiled with the
    /// `testing` feature.
    #[cfg(feature = "testing")]
    #[doc(hidden)]
    pub fn corrupt_golden_for_test(&mut self, addr: Addr) {
        let v = self.golden.get(&addr).copied().unwrap_or(0);
        self.golden.insert(addr, v ^ 0xDEAD_BEEF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::{HomeState, SharerSet};

    const B: BlockAddr = BlockAddr(0x40);

    fn entry(state: HomeState, sharers: &[u16]) -> DirEntry {
        let mut e = DirEntry::new(false);
        e.state = state;
        for &n in sharers {
            e.sharers.insert(NodeId(n));
        }
        e
    }

    #[test]
    fn clean_states_produce_no_violations() {
        let e = entry(HomeState::Shared, &[0, 2]);
        let holders = [
            (NodeId(0), LineState::Shared),
            (NodeId(2), LineState::Shared),
        ];
        assert!(block_violations(ProtocolKind::Ls, B, Some(&e), &holders).is_empty());
        let e = entry(HomeState::Owned(NodeId(1)), &[1]);
        let holders = [(NodeId(1), LineState::Modified)];
        assert!(block_violations(ProtocolKind::Ls, B, Some(&e), &holders).is_empty());
        assert!(block_violations(ProtocolKind::Ls, B, None, &[]).is_empty());
    }

    #[test]
    fn swmr_catches_writer_plus_sharer() {
        // LStemp (Excl) coexisting with a sharer is an SWMR violation even
        // though neither copy is dirty.
        let holders = [(NodeId(0), LineState::Excl), (NodeId(1), LineState::Shared)];
        let got = block_violations(ProtocolKind::Ls, B, None, &holders);
        assert!(got.iter().any(|(r, _)| *r == InvariantRule::Swmr));
    }

    #[test]
    fn agreement_catches_phantom_and_missing_sharers() {
        let e = entry(HomeState::Shared, &[0, 3]);
        // Node 3 is claimed but holds nothing; node 1 holds but is unclaimed.
        let holders = [
            (NodeId(0), LineState::Shared),
            (NodeId(1), LineState::Shared),
        ];
        let got = block_violations(ProtocolKind::Baseline, B, Some(&e), &holders);
        let agreement: Vec<_> = got
            .iter()
            .filter(|(r, _)| *r == InvariantRule::StateAgreement)
            .collect();
        assert_eq!(agreement.len(), 2);
    }

    #[test]
    fn entry_internal_inconsistency_is_reported() {
        let mut e = entry(HomeState::Owned(NodeId(2)), &[2]);
        e.sharers = SharerSet::single(NodeId(0));
        let holders = [(NodeId(2), LineState::Modified)];
        let got = block_violations(ProtocolKind::Ad, B, Some(&e), &holders);
        assert!(got.iter().any(|(r, _)| *r == InvariantRule::DirectoryEntry));
    }

    #[test]
    fn baseline_must_not_tag() {
        let mut e = entry(HomeState::Shared, &[0]);
        e.tagged = true;
        let holders = [(NodeId(0), LineState::Shared)];
        let got = block_violations(ProtocolKind::Baseline, B, Some(&e), &holders);
        assert!(got.iter().any(|(r, _)| *r == InvariantRule::DirectoryEntry));
        // The same entry is legal under LS.
        let got = block_violations(ProtocolKind::Ls, B, Some(&e), &holders);
        assert!(got.is_empty());
    }

    #[test]
    fn checker_collects_and_caps() {
        let mut c = InvariantChecker::new(InvariantMode::Check);
        let holders = [
            (NodeId(0), LineState::Modified),
            (NodeId(1), LineState::Shared),
        ];
        for i in 0..(MAX_RECORDED as u64 + 10) {
            c.check_block(ProtocolKind::Ls, B, None, &holders, NodeId(0), i);
        }
        let r = c.report();
        assert!(!r.is_clean());
        assert_eq!(r.violations().len(), MAX_RECORDED);
        assert!(r.total_violations() > MAX_RECORDED as u64);
        assert_eq!(r.checks(), MAX_RECORDED as u64 + 10);
        // Off mode does nothing.
        let mut c = InvariantChecker::new(InvariantMode::Off);
        c.check_block(ProtocolKind::Ls, B, None, &holders, NodeId(0), 0);
        assert!(c.report().is_clean());
        assert_eq!(c.report().checks(), 0);
    }

    #[test]
    #[should_panic(expected = "coherence invariant violated")]
    fn strict_mode_panics() {
        let mut c = InvariantChecker::new(InvariantMode::Strict);
        let holders = [
            (NodeId(0), LineState::Modified),
            (NodeId(1), LineState::Shared),
        ];
        c.check_block(ProtocolKind::Ls, B, None, &holders, NodeId(0), 0);
    }

    #[test]
    fn golden_memory_checks_values() {
        let mut c = InvariantChecker::new(InvariantMode::Check);
        c.record_golden(Addr(0x8), 7);
        c.check_value(Addr(0x8), 7, B, NodeId(0), 10, ProtocolKind::Ls);
        assert!(c.report().is_clean());
        c.check_value(Addr(0x8), 8, B, NodeId(0), 11, ProtocolKind::Ls);
        assert_eq!(c.report().total_violations(), 1);
        assert_eq!(c.report().violations()[0].rule, InvariantRule::DataValue);
        // Untracked addresses adopt the observed value.
        let mut c = InvariantChecker::new(InvariantMode::Check);
        c.check_value(Addr(0x10), 42, B, NodeId(1), 0, ProtocolKind::Ad);
        c.check_value(Addr(0x10), 42, B, NodeId(1), 1, ProtocolKind::Ad);
        assert!(c.report().is_clean());
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(InvariantMode::parse("off"), InvariantMode::Off);
        assert_eq!(InvariantMode::parse(""), InvariantMode::Off);
        assert_eq!(InvariantMode::parse("check"), InvariantMode::Check);
        assert_eq!(InvariantMode::parse("strict"), InvariantMode::Strict);
        // Unknown values err on the side of checking.
        assert_eq!(InvariantMode::parse("bogus"), InvariantMode::Check);
    }

    #[test]
    fn violation_display_names_everything() {
        let v = InvariantViolation {
            rule: InvariantRule::Swmr,
            block: B,
            cycle: 123,
            node: NodeId(2),
            protocol: ProtocolKind::Ls,
            detail: "two writers".into(),
        };
        let s = v.to_string();
        assert!(s.contains("SWMR"));
        assert!(s.contains("123"));
        assert!(s.contains("LS"));
        assert!(s.contains("two writers"));
    }
}
